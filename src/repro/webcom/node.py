"""WebCom masters and clients.

The master coordinates condensed-graph execution: fireable nodes are
scheduled to clients over the simulated network; clients execute the
operation (a local function or a middleware component invocation) and return
the result.  Authorisation hooks — the Figure 3 handshake — are injected by
:mod:`repro.webcom.secure`; the base classes here run unsecured.

Scheduling is robust against a lossy fabric:

- every request carries a **deadline** on the simulated clock and is
  **retried with exponential backoff** under the *same* request id;
- both sides **deduplicate** by request id — a client replays its cached
  reply instead of double-running a (possibly non-idempotent) operation,
  and the master rejects duplicate or late replies for requests it no
  longer has pending;
- clients marked dead are **re-probed with heartbeats** and rejoin the
  pool when they answer, instead of staying ``alive=False`` forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import AuthorisationError, SchedulingError
from repro.util.events import AuditLog
from repro.webcom.engine import EvaluationMode, GraphEngine
from repro.webcom.graph import CondensedGraph, GraphNode
from repro.webcom.network import Message, SimulatedNetwork

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: client-side operation implementation
Operation = Callable[..., Any]


@dataclass
class ClientInfo:
    """What the master knows about a registered client."""

    client_id: str
    key_name: str
    operations: frozenset[str]
    user: str
    alive: bool = True
    executed: int = 0


class WebComClient:
    """A WebCom client: executes operations scheduled to it.

    :param client_id: network peer id.
    :param network: the fabric to attach to.
    :param operations: op name -> implementation.
    :param key_name: the client's public-key name (used by Secure WebCom).
    :param user: the principal client-side executions run as.
    :param authoriser: optional hook ``(master_key, op, context) ->
        verdict`` where the verdict is truthy to allow — a plain bool, or a
        :class:`~repro.webcom.stack.StackDecision` whose ``stale`` flag is
        disclosed in the reply; refusing makes the client reply ``denied``
        (the client-side TM check of Figure 3).
    """

    def __init__(self, client_id: str, network: SimulatedNetwork,
                 operations: Mapping[str, Operation],
                 key_name: str = "", user: str = "",
                 authoriser: "Callable[[str, str, Mapping], bool] | None" = None,
                 audit: AuditLog | None = None,
                 obs: "Observability | None" = None) -> None:
        self.client_id = client_id
        self.network = network
        self.operations = dict(operations)
        self.key_name = key_name or f"K{client_id}"
        self.user = user or client_id
        self.authoriser = authoriser
        self.audit = audit
        self.obs = obs
        self.executed: list[str] = []
        #: request id -> the reply payload already sent (dedup cache)
        self._reply_cache: dict[str, dict[str, Any]] = {}
        self.duplicates_served = 0
        network.attach(client_id, self._handle)

    def register_with(self, master_id: str) -> None:
        """Announce this client (and its capabilities) to a master."""
        self.network.send(self.client_id, master_id, "register", {
            "key_name": self.key_name,
            "operations": sorted(self.operations),
            "user": self.user,
        })

    def _handle(self, message: Message) -> None:
        if message.kind == "ping":
            # Liveness probe: answer so the master can revive us.
            self.network.send(self.client_id, message.sender, "pong", {
                "key_name": self.key_name,
                "operations": sorted(self.operations),
                "user": self.user,
            })
            return
        if message.kind == "execute_batch":
            self._handle_execute_batch(message)
            return
        if message.kind != "execute":
            return
        if self.obs is not None:
            # The execute payload carries the master's trace context, so the
            # client-side span (and everything it nests — the stack
            # mediation, the TM query) joins the master's correlation.
            with self.obs.tracer.span(
                    "client.execute",
                    correlation_id=message.payload.get("correlation_id"),
                    parent_id=message.payload.get("span_id"),
                    client=self.client_id,
                    op=message.payload.get("op", ""),
                    request_id=message.payload["request_id"]) as span:
                body = self._execute_payload(message.payload, span)
        else:
            body = self._execute_payload(message.payload, None)
        self.network.send(self.client_id, message.sender, "result", body)

    def _handle_execute_batch(self, message: Message) -> None:
        """Run a whole wavefront batch and answer with one ``result_batch``.

        Every sub-request keeps its own request id, reply-cache entry and
        authorisation check — a retried batch replays cached sub-replies
        exactly like retried singles.
        """
        requests = message.payload["requests"]
        if self.obs is not None:
            with self.obs.tracer.span(
                    "client.execute_batch",
                    correlation_id=message.payload.get("correlation_id"),
                    parent_id=message.payload.get("span_id"),
                    client=self.client_id, size=len(requests)) as span:
                bodies = [self._execute_payload(request, None)
                          for request in requests]
                span.set(statuses=",".join(b["status"] for b in bodies))
        else:
            bodies = [self._execute_payload(request, None)
                      for request in requests]
        reply: dict[str, Any] = {"results": bodies}
        if self.obs is not None:
            span = self.obs.tracer.current()
            if span is not None:
                reply["correlation_id"] = span.correlation_id
                reply["span_id"] = span.span_id
        self.network.send(self.client_id, message.sender, "result_batch",
                          reply)

    def _execute_payload(self, payload: Mapping[str, Any],
                         span) -> dict[str, Any]:
        """Execute one request payload and return (and cache) its reply
        body; shared by the single and batched paths."""
        request_id = payload["request_id"]
        cached = self._reply_cache.get(request_id)
        if cached is not None:
            # Duplicate (retried or network-duplicated) request: replay the
            # recorded reply; never re-run a possibly non-idempotent op.
            self.duplicates_served += 1
            if span is not None:
                span.set(cached=True)
                span.status = cached.get("status", "ok")
            return cached
        op = payload["op"]
        args = tuple(payload["args"])
        context = payload.get("context", {})
        master_key = payload.get("master_key", "")
        stale = False
        if self.authoriser is not None:
            verdict = self.authoriser(master_key, op, context)
            if not verdict:
                self._audit("webcom.client.check", op, "deny")
                if span is not None:
                    span.status = "denied"
                return self._build_reply(request_id, status="denied")
            # Stack authorisers return the full StackDecision (truthy on
            # allow); a fail-static layer may have served it stale, which
            # the reply must disclose to the master.
            stale = bool(getattr(verdict, "stale", False))
            self._audit("webcom.client.check", op,
                        "allow-stale" if stale else "allow")
        else:
            self._audit("webcom.client.check", op, "allow")
        fn = self.operations.get(op)
        if fn is None:
            if span is not None:
                span.status = "unknown-op"
            return self._build_reply(request_id, status="unknown-op")
        try:
            value = fn(*args)
        except Exception as exc:  # deliberate: remote errors must not kill
            if span is not None:
                span.status = "error"
            return self._build_reply(request_id, status="error",
                                     error=repr(exc))
        self.executed.append(op)
        if span is not None and stale:
            span.set(stale=True)
        if stale:
            return self._build_reply(request_id, status="ok", value=value,
                                     stale=True)
        return self._build_reply(request_id, status="ok", value=value)

    def _build_reply(self, request_id: str, **payload: Any) -> dict[str, Any]:
        body = {"request_id": request_id, **payload}
        if self.obs is not None:
            span = self.obs.tracer.current()
            if span is not None:
                # Carry the trace context back so the reply's network flight
                # parents onto this client's execute span.
                body.setdefault("correlation_id", span.correlation_id)
                body.setdefault("span_id", span.span_id)
        self._reply_cache[request_id] = body
        return body

    def _audit(self, category: str, op: str, outcome: str) -> None:
        if self.audit is not None:
            self.audit.record(self.network.clock.now(), category,
                              subject=self.client_id, outcome=outcome, op=op)


class WebComMaster:
    """A WebCom master: schedules graph nodes to registered clients.

    :param scheduler_filter: optional hook
        ``(node, context, candidates) -> candidates`` applied before
        selection — Secure WebCom's master-side TM check plugs in here.
    :param max_attempts: distinct client placements tried per node.
    :param request_timeout: clock seconds to wait for the first reply.
    :param max_retries: resends (same request id) per placement after the
        first send; each waits ``backoff`` times longer than the last.
    :param heartbeat_interval: how often dead clients are re-probed.
    :param heartbeat_timeout: how long to wait for heartbeat answers.

    ``request_timeout``, ``heartbeat_interval`` and ``heartbeat_timeout``
    default to ``None``, which resolves them from the network clock's
    :meth:`~repro.util.clock.Clock.scheduling_defaults` — the historical
    constants on a :class:`~repro.util.clock.SimulatedClock`, real-time
    values on a :class:`~repro.util.clock.WallClock`.  Hardcoding the
    simulated-scale constants here would make a wall-clock deployment wait
    tens of real seconds per probe.
    """

    #: placement orders: try candidates in sorted id order, spread load to
    #: the least-busy client first, or rotate round-robin.
    SELECTION_POLICIES = ("first", "least-loaded", "round-robin")

    def __init__(self, master_id: str, network: SimulatedNetwork,
                 key_name: str = "",
                 scheduler_filter: "Callable[[GraphNode, Mapping, list[ClientInfo]], list[ClientInfo]] | None" = None,
                 audit: AuditLog | None = None,
                 max_attempts: int = 3,
                 selection_policy: str = "first",
                 request_timeout: "float | None" = None,
                 max_retries: int = 2,
                 backoff: float = 2.0,
                 heartbeat_interval: "float | None" = None,
                 heartbeat_timeout: "float | None" = None,
                 obs: "Observability | None" = None) -> None:
        if selection_policy not in self.SELECTION_POLICIES:
            raise SchedulingError(
                f"unknown selection policy {selection_policy!r}; "
                f"choose from {self.SELECTION_POLICIES}")
        defaults = network.clock.scheduling_defaults()
        if request_timeout is None:
            request_timeout = defaults["request_timeout"]
        if heartbeat_interval is None:
            heartbeat_interval = defaults["heartbeat_interval"]
        if heartbeat_timeout is None:
            heartbeat_timeout = defaults["heartbeat_timeout"]
        if request_timeout <= 0 or heartbeat_timeout <= 0:
            raise SchedulingError("timeouts must be positive")
        if backoff < 1.0:
            raise SchedulingError("backoff factor must be >= 1")
        self.master_id = master_id
        self.network = network
        self.key_name = key_name or f"K{master_id}"
        self.scheduler_filter = scheduler_filter
        self.audit = audit
        self.max_attempts = max_attempts
        self.selection_policy = selection_policy
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.obs = obs
        #: correlation id of the most recent :meth:`run_graph` trace
        self.last_correlation_id: str | None = None
        self.clients: dict[str, ClientInfo] = {}
        self._results: dict[str, dict[str, Any]] = {}
        self._pending: set[str] = set()
        self._abandoned: set[str] = set()
        self._request_seq = 0
        self._rr_counter = 0
        self._next_probe_at = 0.0
        self.stale_rejected = 0
        #: completed placements whose client-side verdict was served stale
        #: by a fail-static mediation layer (degraded but disclosed)
        self.stale_accepted = 0
        self.schedule_log: list[tuple[str, str]] = []  # (node_id, client_id)
        #: trace of the most recent :meth:`run_graph` (fired vs restored)
        self.last_trace = None
        network.attach(master_id, self._handle)

    # -- message handling ------------------------------------------------------

    def _handle(self, message: Message) -> None:
        if message.kind == "register":
            payload = message.payload
            self.clients[message.sender] = ClientInfo(
                client_id=message.sender,
                key_name=payload["key_name"],
                operations=frozenset(payload["operations"]),
                user=payload["user"])
        elif message.kind == "result":
            self._accept_result(message.payload)
        elif message.kind == "result_batch":
            for body in message.payload["results"]:
                self._accept_result(body)
        elif message.kind == "pong":
            info = self.clients.get(message.sender)
            if info is not None and not info.alive:
                info.alive = True
                self._audit("webcom.heartbeat", message.sender, "revived")

    def _accept_result(self, body: Mapping[str, Any]) -> None:
        request_id = body["request_id"]
        if request_id in self._pending:
            self._pending.discard(request_id)
            self._results[request_id] = dict(body)
        else:
            # Duplicate of a consumed reply, or a reply that limped in
            # after its request was abandoned: reject, don't store.
            self.stale_rejected += 1

    # -- liveness ------------------------------------------------------------------

    def heartbeat(self) -> list[str]:
        """Probe every dead client; returns the ids that answered (revived).

        Pongs flip ``alive`` back to True so the client rejoins the pool.
        """
        dead = [info for _cid, info in sorted(self.clients.items())
                if not info.alive]
        if not dead:
            return []
        for info in dead:
            self.network.send(self.master_id, info.client_id, "ping", {})
        self.network.run_until(
            self.network.clock.now() + self.heartbeat_timeout,
            stop=lambda: all(info.alive for info in dead))
        return [info.client_id for info in dead if info.alive]

    def _maybe_probe(self) -> None:
        """Periodic re-probe of dead clients, rate-limited on the sim
        clock."""
        if self.network.clock.now() < self._next_probe_at:
            return
        if all(info.alive for info in self.clients.values()):
            return
        self._next_probe_at = (self.network.clock.now()
                               + self.heartbeat_interval)
        self.heartbeat()

    # -- scheduling ------------------------------------------------------------------

    def eligible_clients(self, op: str) -> list[ClientInfo]:
        """Alive clients advertising ``op``, deterministic order."""
        return [info for _cid, info in sorted(self.clients.items())
                if info.alive and op in info.operations]

    def _next_request_id(self) -> str:
        self._request_seq += 1
        return f"{self.master_id}-req-{self._request_seq}"

    def execute_remote(self, node: GraphNode, args: tuple,
                       context: Mapping[str, Any] | None = None) -> Any:
        """Schedule one operation, with fault-tolerant rescheduling.

        Tries eligible clients in order up to ``max_attempts`` placements;
        each placement is retried (same request id, exponential backoff)
        before the client is declared dead and the next one is tried.

        :raises SchedulingError: when no client can run the operation.
        :raises AuthorisationError: when a client refuses the request.
        """
        if self.obs is not None:
            with self.obs.tracer.span("master.schedule", node=node.node_id,
                                      op=node.operator_name) as span:
                with self.obs.metrics.time("master.schedule_latency"):
                    value = self._execute_remote(node, args, context)
                span.set(outcome="ok")
                return value
        return self._execute_remote(node, args, context)

    def _execute_remote(self, node: GraphNode, args: tuple,
                        context: Mapping[str, Any] | None = None) -> Any:
        op = node.operator_name
        context = dict(context or {})
        self._maybe_probe()
        candidates = self._candidates(node, op, context)
        if not candidates and self.heartbeat():
            # Every known provider was marked dead; a forced probe revived
            # at least one, so rebuild the candidate list.
            candidates = self._candidates(node, op, context)
        if not candidates:
            self._audit("webcom.schedule", node.node_id, "no-candidate", op=op)
            self._count("master.schedule.no_candidate")
            raise SchedulingError(
                f"no authorised client for operation {op!r} "
                f"(node {node.node_id!r})")
        attempts = 0
        last_denied = False
        for info in candidates:
            if attempts >= self.max_attempts:
                break
            attempts += 1
            result = self._attempt(info, op, args, context)
            if result is None:
                # Deadline blown on every retry: mark dead (heartbeats may
                # revive it later), try the next candidate.
                info.alive = False
                self._audit("webcom.schedule", node.node_id, "lost",
                            client=info.client_id, op=op)
                self._count("master.schedule.lost")
                continue
            if result["status"] == "denied":
                last_denied = True
                self._audit("webcom.schedule", node.node_id, "denied",
                            client=info.client_id, op=op)
                self._count("master.schedule.denied")
                continue
            if result["status"] != "ok":
                self._audit("webcom.schedule", node.node_id, "error",
                            client=info.client_id, op=op,
                            error=result.get("error", result["status"]))
                self._count("master.schedule.error")
                continue
            info.executed += 1
            self.schedule_log.append((node.node_id, info.client_id))
            stale = bool(result.get("stale"))
            if stale:
                self.stale_accepted += 1
                self._count("master.schedule.stale")
            self._audit("webcom.schedule", node.node_id, "ok",
                        client=info.client_id, op=op, stale=stale)
            self._count("master.schedule.ok")
            return result["value"]
        if last_denied:
            raise AuthorisationError(
                f"every candidate client refused operation {op!r}")
        raise SchedulingError(
            f"operation {op!r} failed on all candidate clients")

    def _candidates(self, node: GraphNode, op: str,
                    context: Mapping[str, Any]) -> list[ClientInfo]:
        candidates = self.eligible_clients(op)
        if self.scheduler_filter is not None:
            candidates = self.scheduler_filter(node, context, candidates)
        return self._order_candidates(candidates)

    def _attempt(self, info: ClientInfo, op: str, args: tuple,
                 context: Mapping[str, Any]) -> "dict[str, Any] | None":
        """One placement: send, wait out the deadline, retry with backoff.

        Returns the reply payload, or None when the request was abandoned.
        """
        request_id = self._next_request_id()
        self._pending.add(request_id)
        payload = {
            "request_id": request_id,
            "op": op,
            "args": list(args),
            "context": dict(context),
            "master_key": self.key_name,
        }
        if self.obs is not None:
            span = self.obs.tracer.current()
            if span is not None:
                # Trace context rides in the payload; retried sends reuse
                # the same payload, so every copy (and the client-side work
                # it triggers) stays in this correlation.
                payload["correlation_id"] = span.correlation_id
                payload["span_id"] = span.span_id
        timeout = self.request_timeout
        for attempt in range(self.max_retries + 1):
            if attempt and self.obs is not None:
                self.obs.metrics.counter("master.retries").inc()
            self.network.send(self.master_id, info.client_id, "execute",
                              payload)
            self.network.run_until(
                self.network.clock.now() + timeout,
                stop=lambda: request_id in self._results)
            result = self._results.pop(request_id, None)
            if result is not None:
                return result
            timeout *= self.backoff
        self._pending.discard(request_id)
        self._abandoned.add(request_id)
        return None

    # -- batched scheduling ---------------------------------------------------

    def execute_batch(self, items: "list[tuple[GraphNode, tuple]]",
                      ) -> list[Any]:
        """Schedule a whole wavefront of nodes in batched flights.

        Nodes are grouped by their selected client; each group travels as
        one ``execute_batch`` message (answered by one ``result_batch``),
        so a wavefront costs O(clients) flights instead of O(nodes).  Every
        sub-request keeps its own request id: dedup, retry (the unresolved
        subset is resent under the same ids) and stale-reply rejection work
        exactly as on the single-node path.  Sub-requests that fail, are
        denied, or whose client dies fall back to
        :meth:`execute_remote`'s full placement/retry ladder.

        :raises SchedulingError: when a node has no candidate client.
        :raises AuthorisationError: when every candidate refuses a node.
        """
        if self.obs is not None:
            with self.obs.tracer.span("master.schedule_batch",
                                      size=len(items)) as span:
                with self.obs.metrics.time("master.schedule_latency"):
                    results = self._execute_batch(items)
                span.set(outcome="ok")
                return results
        return self._execute_batch(items)

    def _execute_batch(self, items: "list[tuple[GraphNode, tuple]]",
                       ) -> list[Any]:
        self._maybe_probe()
        results: list[Any] = [None] * len(items)
        resolved = [False] * len(items)
        fallback: list[int] = []
        #: client id -> list of item indices routed to it
        assignments: dict[str, list[int]] = {}
        contexts: dict[int, dict[str, Any]] = {}
        infos: dict[str, ClientInfo] = {}
        for index, (node, args) in enumerate(items):
            context: dict[str, Any] = {"args": args}
            if node.placement is not None:
                context["placement"] = node.placement
            contexts[index] = context
            candidates = self._candidates(node, node.operator_name, context)
            if not candidates:
                # No live authorised provider right now; the fallback path
                # re-probes and raises if that does not help.
                fallback.append(index)
                continue
            chosen = candidates[0]
            assignments.setdefault(chosen.client_id, []).append(index)
            infos[chosen.client_id] = chosen
        for client_id in sorted(assignments):
            indices = assignments[client_id]
            info = infos[client_id]
            replies = self._attempt_batch(
                info, [items[i] for i in indices],
                [contexts[i] for i in indices])
            if all(reply is None for reply in replies):
                # The whole batch blew its deadline on every retry: same
                # verdict as a lost single placement — mark the client dead
                # (heartbeats may revive it) and reschedule elsewhere.
                info.alive = False
                self._audit("webcom.schedule.batch", client_id, "lost",
                            nodes=[items[i][0].node_id for i in indices])
                self._count("master.schedule.lost")
            for position, index in enumerate(indices):
                reply = replies[position]
                node = items[index][0]
                if reply is None or reply["status"] != "ok":
                    if reply is not None:
                        outcome = ("denied" if reply["status"] == "denied"
                                   else "error")
                        self._audit("webcom.schedule", node.node_id, outcome,
                                    client=client_id, op=node.operator_name,
                                    batched=True)
                        self._count(f"master.schedule.{outcome}")
                    self._count("master.batch.fallback")
                    fallback.append(index)
                    continue
                info.executed += 1
                self.schedule_log.append((node.node_id, client_id))
                stale = bool(reply.get("stale"))
                if stale:
                    self.stale_accepted += 1
                    self._count("master.schedule.stale")
                self._audit("webcom.schedule", node.node_id, "ok",
                            client=client_id, op=node.operator_name,
                            batched=True, stale=stale)
                self._count("master.schedule.ok")
                results[index] = reply["value"]
                resolved[index] = True
        # Unresolved nodes go through the robust single-node ladder (fresh
        # request ids, full placement retries); it raises when a node truly
        # cannot run, preserving the unbatched error semantics.
        for index in sorted(fallback):
            node, args = items[index]
            results[index] = self._execute_remote(node, args,
                                                  contexts[index])
            resolved[index] = True
        assert all(resolved)
        return results

    def _attempt_batch(self, info: ClientInfo,
                       node_args: "list[tuple[GraphNode, tuple]]",
                       contexts: "list[dict[str, Any]]",
                       ) -> "list[dict[str, Any] | None]":
        """One batched placement: send the group, wait, resend the
        unresolved subset (same request ids) with backoff.

        Returns one reply payload (or None for abandoned) per item, in
        order.
        """
        requests = []
        ids: list[str] = []
        for (node, args), context in zip(node_args, contexts):
            request_id = self._next_request_id()
            ids.append(request_id)
            self._pending.add(request_id)
            requests.append({
                "request_id": request_id,
                "op": node.operator_name,
                "args": list(args),
                "context": dict(context),
                "master_key": self.key_name,
            })
        trace_context: dict[str, Any] = {}
        if self.obs is not None:
            span = self.obs.tracer.current()
            if span is not None:
                trace_context = {"correlation_id": span.correlation_id,
                                 "span_id": span.span_id}
            self.obs.metrics.histogram("master.batch.size").observe(
                len(requests))
        collected: dict[str, dict[str, Any]] = {}
        outstanding = list(ids)
        timeout = self.request_timeout
        for attempt in range(self.max_retries + 1):
            if attempt and self.obs is not None:
                self.obs.metrics.counter("master.retries").inc()
            send_ids = set(outstanding)
            self._count("master.batch.flights")
            self.network.send(self.master_id, info.client_id, "execute_batch",
                              {"requests": [r for r in requests
                                            if r["request_id"] in send_ids],
                               **trace_context})
            self.network.run_until(
                self.network.clock.now() + timeout,
                stop=lambda: all(rid in self._results for rid in outstanding))
            for rid in list(outstanding):
                reply = self._results.pop(rid, None)
                if reply is not None:
                    collected[rid] = reply
                    outstanding.remove(rid)
            if not outstanding:
                break
            timeout *= self.backoff
        for rid in outstanding:
            self._pending.discard(rid)
            self._abandoned.add(rid)
        return [collected.get(rid) for rid in ids]

    def run_graph(self, graph: CondensedGraph, inputs: Mapping[str, Any],
                  mode: EvaluationMode = EvaluationMode.AVAILABILITY,
                  checkpoint=None, batch: bool = False) -> Any:
        """Execute a condensed graph across the client pool.

        :param checkpoint: optional
            :class:`~repro.webcom.failover.GraphCheckpoint`; completed nodes
            are recorded as they fire, and a non-empty checkpoint resumes
            the graph from its last completed frontier instead of the
            inputs.  A secured master (one with a ``scheduler_filter``)
            re-checks authorisation for every restored node first.
        :param batch: schedule whole wavefronts through
            :meth:`execute_batch` (one flight per destination client)
            instead of one :meth:`execute_remote` round-trip per node.
        """

        def executor(node: GraphNode, args: tuple) -> Any:
            context = {"args": args}
            if node.placement is not None:
                context["placement"] = node.placement
            return self.execute_remote(node, args, context)

        resume = None
        if checkpoint is not None and checkpoint.completed:
            resume = self._authorised_resume(graph, checkpoint)
        engine = GraphEngine(graph, executor, mode, obs=self.obs,
                             batch_executor=self.execute_batch if batch
                             else None)
        on_fired = checkpoint.mark if checkpoint is not None else None
        if self.obs is not None:
            # One fresh correlation per run: every schedule decision,
            # network flight, client check and retry below shares it.
            with self.obs.tracer.span("master.run_graph",
                                      graph=graph.name, master=self.master_id,
                                      mode=mode.value) as span:
                self.last_correlation_id = span.correlation_id
                result = engine.run(inputs, resume_from=resume,
                                    on_node_fired=on_fired)
        else:
            result = engine.run(inputs, resume_from=resume,
                                on_node_fired=on_fired)
        self.last_trace = engine.trace
        return result

    def _authorised_resume(self, graph: CondensedGraph,
                           checkpoint) -> dict[str, Any]:
        """Checkpointed results this master may reuse.

        The secure variant re-runs the master-side TM check for every
        restored node; a node whose authorisation no longer holds is
        dropped from the resume set and re-fires through the normal
        (mediated) scheduling path.
        """
        completed = {node_id: value
                     for node_id, value in checkpoint.completed.items()
                     if node_id in graph.nodes}
        if self.scheduler_filter is None:
            return completed
        resumable: dict[str, Any] = {}
        for node_id in sorted(completed):
            node = graph.node(node_id)
            if node.is_condensed:
                # Subgraph results: every inner node passed mediation when
                # it originally fired.
                resumable[node_id] = completed[node_id]
                continue
            context: dict[str, Any] = {"resume": True}
            if node.placement is not None:
                context["placement"] = node.placement
            authorised = self.scheduler_filter(
                node, context, self.eligible_clients(node.operator_name))
            if authorised:
                self._audit("webcom.resume", node_id, "allow",
                            op=node.operator_name)
                resumable[node_id] = completed[node_id]
            else:
                self._audit("webcom.resume", node_id, "deny",
                            op=node.operator_name)
        return resumable

    def _order_candidates(self,
                          candidates: list[ClientInfo]) -> list[ClientInfo]:
        """Apply the configured selection policy to the surviving
        candidates."""
        if self.selection_policy == "least-loaded":
            return sorted(candidates,
                          key=lambda info: (info.executed, info.client_id))
        if self.selection_policy == "round-robin" and candidates:
            self._rr_counter += 1
            offset = self._rr_counter % len(candidates)
            return candidates[offset:] + candidates[:offset]
        return candidates  # "first": already in sorted id order

    def _audit(self, category: str, subject: str, outcome: str,
               **detail: Any) -> None:
        if self.audit is not None:
            self.audit.record(self.network.clock.now(), category, subject,
                              outcome, **detail)

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc()

"""WebCom masters and clients.

The master coordinates condensed-graph execution: fireable nodes are
scheduled to clients over the simulated network; clients execute the
operation (a local function or a middleware component invocation) and return
the result.  Authorisation hooks — the Figure 3 handshake — are injected by
:mod:`repro.webcom.secure`; the base classes here run unsecured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import AuthorisationError, SchedulingError
from repro.util.events import AuditLog
from repro.webcom.engine import EvaluationMode, GraphEngine
from repro.webcom.graph import CondensedGraph, GraphNode
from repro.webcom.network import Message, SimulatedNetwork

#: client-side operation implementation
Operation = Callable[..., Any]


@dataclass
class ClientInfo:
    """What the master knows about a registered client."""

    client_id: str
    key_name: str
    operations: frozenset[str]
    user: str
    alive: bool = True
    executed: int = 0


class WebComClient:
    """A WebCom client: executes operations scheduled to it.

    :param client_id: network peer id.
    :param network: the fabric to attach to.
    :param operations: op name -> implementation.
    :param key_name: the client's public-key name (used by Secure WebCom).
    :param user: the principal client-side executions run as.
    :param authoriser: optional hook ``(master_key, op, context) -> bool``;
        refusing makes the client reply ``denied`` (the client-side TM check
        of Figure 3).
    """

    def __init__(self, client_id: str, network: SimulatedNetwork,
                 operations: Mapping[str, Operation],
                 key_name: str = "", user: str = "",
                 authoriser: "Callable[[str, str, Mapping], bool] | None" = None,
                 audit: AuditLog | None = None) -> None:
        self.client_id = client_id
        self.network = network
        self.operations = dict(operations)
        self.key_name = key_name or f"K{client_id}"
        self.user = user or client_id
        self.authoriser = authoriser
        self.audit = audit
        self.executed: list[str] = []
        network.attach(client_id, self._handle)

    def register_with(self, master_id: str) -> None:
        """Announce this client (and its capabilities) to a master."""
        self.network.send(self.client_id, master_id, "register", {
            "key_name": self.key_name,
            "operations": sorted(self.operations),
            "user": self.user,
        })

    def _handle(self, message: Message) -> None:
        if message.kind != "execute":
            return
        request_id = message.payload["request_id"]
        op = message.payload["op"]
        args = tuple(message.payload["args"])
        context = message.payload.get("context", {})
        master_key = message.payload.get("master_key", "")
        if self.authoriser is not None and not self.authoriser(
                master_key, op, context):
            self._audit("webcom.client.check", op, "deny")
            self._reply(message.sender, request_id, status="denied")
            return
        self._audit("webcom.client.check", op, "allow")
        fn = self.operations.get(op)
        if fn is None:
            self._reply(message.sender, request_id, status="unknown-op")
            return
        try:
            value = fn(*args)
        except Exception as exc:  # deliberate: remote errors must not kill
            self._reply(message.sender, request_id, status="error",
                        error=repr(exc))
            return
        self.executed.append(op)
        self._reply(message.sender, request_id, status="ok", value=value)

    def _reply(self, master_id: str, request_id: str, **payload: Any) -> None:
        self.network.send(self.client_id, master_id, "result",
                          {"request_id": request_id, **payload})

    def _audit(self, category: str, op: str, outcome: str) -> None:
        if self.audit is not None:
            self.audit.record(self.network.clock.now(), category,
                              subject=self.client_id, outcome=outcome, op=op)


class WebComMaster:
    """A WebCom master: schedules graph nodes to registered clients.

    :param scheduler_filter: optional hook
        ``(node, context, candidates) -> candidates`` applied before
        selection — Secure WebCom's master-side TM check plugs in here.
    """

    #: placement orders: try candidates in sorted id order, spread load to
    #: the least-busy client first, or rotate round-robin.
    SELECTION_POLICIES = ("first", "least-loaded", "round-robin")

    def __init__(self, master_id: str, network: SimulatedNetwork,
                 key_name: str = "",
                 scheduler_filter: "Callable[[GraphNode, Mapping, list[ClientInfo]], list[ClientInfo]] | None" = None,
                 audit: AuditLog | None = None,
                 max_attempts: int = 3,
                 selection_policy: str = "first") -> None:
        if selection_policy not in self.SELECTION_POLICIES:
            raise SchedulingError(
                f"unknown selection policy {selection_policy!r}; "
                f"choose from {self.SELECTION_POLICIES}")
        self.master_id = master_id
        self.network = network
        self.key_name = key_name or f"K{master_id}"
        self.scheduler_filter = scheduler_filter
        self.audit = audit
        self.max_attempts = max_attempts
        self.selection_policy = selection_policy
        self.clients: dict[str, ClientInfo] = {}
        self._results: dict[str, dict[str, Any]] = {}
        self._request_seq = 0
        self._rr_counter = 0
        self.schedule_log: list[tuple[str, str]] = []  # (node_id, client_id)
        network.attach(master_id, self._handle)

    # -- message handling ------------------------------------------------------

    def _handle(self, message: Message) -> None:
        if message.kind == "register":
            payload = message.payload
            self.clients[message.sender] = ClientInfo(
                client_id=message.sender,
                key_name=payload["key_name"],
                operations=frozenset(payload["operations"]),
                user=payload["user"])
        elif message.kind == "result":
            self._results[message.payload["request_id"]] = dict(message.payload)

    # -- scheduling ------------------------------------------------------------------

    def eligible_clients(self, op: str) -> list[ClientInfo]:
        """Alive clients advertising ``op``, deterministic order."""
        return [info for _cid, info in sorted(self.clients.items())
                if info.alive and op in info.operations]

    def _next_request_id(self) -> str:
        self._request_seq += 1
        return f"{self.master_id}-req-{self._request_seq}"

    def execute_remote(self, node: GraphNode, args: tuple,
                       context: Mapping[str, Any] | None = None) -> Any:
        """Schedule one operation, with fault-tolerant rescheduling.

        Tries eligible clients in order (skipping ones that fail or are
        partitioned) up to ``max_attempts`` placements.

        :raises SchedulingError: when no client can run the operation.
        :raises AuthorisationError: when a client refuses the request.
        """
        op = node.operator_name
        context = dict(context or {})
        candidates = self.eligible_clients(op)
        if self.scheduler_filter is not None:
            candidates = self.scheduler_filter(node, context, candidates)
        candidates = self._order_candidates(candidates)
        if not candidates:
            self._audit("webcom.schedule", node.node_id, "no-candidate", op=op)
            raise SchedulingError(
                f"no authorised client for operation {op!r} "
                f"(node {node.node_id!r})")
        attempts = 0
        last_denied = False
        for info in candidates:
            if attempts >= self.max_attempts:
                break
            attempts += 1
            request_id = self._next_request_id()
            self.network.send(self.master_id, info.client_id, "execute", {
                "request_id": request_id,
                "op": op,
                "args": list(args),
                "context": context,
                "master_key": self.key_name,
            })
            self.network.run_until_quiet()
            result = self._results.pop(request_id, None)
            if result is None:
                # Lost to a crash or partition: mark dead, try the next.
                info.alive = False
                self._audit("webcom.schedule", node.node_id, "lost",
                            client=info.client_id, op=op)
                continue
            if result["status"] == "denied":
                last_denied = True
                self._audit("webcom.schedule", node.node_id, "denied",
                            client=info.client_id, op=op)
                continue
            if result["status"] != "ok":
                self._audit("webcom.schedule", node.node_id, "error",
                            client=info.client_id, op=op,
                            error=result.get("error", result["status"]))
                continue
            info.executed += 1
            self.schedule_log.append((node.node_id, info.client_id))
            self._audit("webcom.schedule", node.node_id, "ok",
                        client=info.client_id, op=op)
            return result["value"]
        if last_denied:
            raise AuthorisationError(
                f"every candidate client refused operation {op!r}")
        raise SchedulingError(
            f"operation {op!r} failed on all candidate clients")

    def run_graph(self, graph: CondensedGraph, inputs: Mapping[str, Any],
                  mode: EvaluationMode = EvaluationMode.AVAILABILITY) -> Any:
        """Execute a condensed graph across the client pool."""

        def executor(node: GraphNode, args: tuple) -> Any:
            context = {"args": args}
            if node.placement is not None:
                context["placement"] = node.placement
            return self.execute_remote(node, args, context)

        return GraphEngine(graph, executor, mode).run(inputs)

    def _order_candidates(self,
                          candidates: list[ClientInfo]) -> list[ClientInfo]:
        """Apply the configured selection policy to the surviving
        candidates."""
        if self.selection_policy == "least-loaded":
            return sorted(candidates,
                          key=lambda info: (info.executed, info.client_id))
        if self.selection_policy == "round-robin" and candidates:
            self._rr_counter += 1
            offset = self._rr_counter % len(candidates)
            return candidates[offset:] + candidates[:offset]
        return candidates  # "first": already in sorted id order

    def _audit(self, category: str, subject: str, outcome: str,
               **detail: Any) -> None:
        if self.audit is not None:
            self.audit.record(self.network.clock.now(), category, subject,
                              outcome, **detail)

"""Stacked authorisation (Section 5, Figure 10).

The WebCom security architecture is a stack of pluggable mediation layers::

    L3  Application security   (workflow rules encoded in the graph)
    L2  Trust management       (KeyNote / SPKI)
    L1  Middleware security    (CORBA / EJB / COM+)
    L0  OS security            (Unix / Windows)

"These stacked layers of secure WebCom are 'pluggable' ...; for example, in
the absence of CORBASec support for a particular ORB, a WebCom environment
could be configured so that authorisation is based only on a combination of
KeyNote (trust management) and underlying operating system policy."

A request is authorised when **every configured layer** allows it; absent
layers are skipped.  Each layer sees the request through its own lens (OS
object access, middleware invocation, TM query, application predicate).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.errors import AuthorisationError
from repro.keynote.api import KeyNoteSession
from repro.middleware.base import Invocation, Middleware
from repro.os_sec.base import OperatingSystemSecurity
from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog
from repro.webcom.health import BreakerState, CircuitBreaker, DegradedMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.webcom.faults import LayerFaultInjector


class Layer(enum.IntEnum):
    """The four layers of Figure 10."""

    OS = 0
    MIDDLEWARE = 1
    TRUST_MANAGEMENT = 2
    APPLICATION = 3


class FrozenAttributes(Mapping[str, str]):
    """An immutable, hashable attribute mapping.

    :class:`MediationRequest` is a frozen dataclass; a plain dict default
    would make instances unhashable and let callers mutate a request after
    mediation (invalidating its recorded decision).  The pairs are copied
    at construction, so later mutation of the source mapping cannot leak
    in either.
    """

    __slots__ = ("_items",)

    def __init__(self, source: "Mapping[str, str] | None" = None) -> None:
        items = dict(source or {})
        object.__setattr__(self, "_items",
                           tuple(sorted(items.items())))

    def __getitem__(self, key: str) -> str:
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _value in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FrozenAttributes is immutable")

    def __repr__(self) -> str:
        return f"FrozenAttributes({dict(self._items)!r})"


@dataclass(frozen=True)
class MediationRequest:
    """One request as seen by the whole stack.

    Instances are deeply immutable and hashable: ``attributes`` is frozen
    into a :class:`FrozenAttributes` at construction, whatever mapping was
    passed in.

    :param user: OS/middleware-level principal.
    :param user_key: trust-management principal (public key name).
    :param object_type: middleware object type / RBAC object type.
    :param operation: operation / permission requested.
    :param os_object: the OS-level object the operation touches (optional;
        defaults to the object type).
    :param os_access: the OS access kind implied (default "read").
    :param attributes: extra TM action attributes.
    """

    user: str
    user_key: str
    object_type: str
    operation: str
    os_object: str = ""
    os_access: str = "read"
    attributes: Mapping[str, str] = field(default_factory=FrozenAttributes)

    def __post_init__(self) -> None:
        if not isinstance(self.attributes, FrozenAttributes):
            object.__setattr__(self, "attributes",
                               FrozenAttributes(self.attributes))


@dataclass(frozen=True)
class LayerDecision:
    """One layer's verdict.

    ``error`` marks a verdict the layer never actually produced: its check
    raised or timed out (or its breaker was open) and the stack resolved
    the layer through its configured
    :class:`~repro.webcom.health.DegradedMode` instead.
    """

    layer: Layer
    allowed: bool
    detail: str = ""
    error: bool = False


@dataclass(frozen=True)
class StackDecision:
    """The stack's combined verdict with the per-layer trace.

    ``stale`` marks a decision served from the last-known-good store by a
    fail-static layer during an outage — it was once fully mediated, but
    not at this simulated instant.  ``degraded`` lists the layers that
    could not be consulted live (whatever their degraded mode resolved to).
    """

    allowed: bool
    decisions: tuple[LayerDecision, ...]
    stale: bool = False
    degraded: tuple[Layer, ...] = ()

    def __bool__(self) -> bool:
        return self.allowed

    def layer(self, layer: Layer) -> LayerDecision | None:
        """The verdict of one layer, or None if it was not configured."""
        for decision in self.decisions:
            if decision.layer == layer:
                return decision
        return None

    def deciding_layer(self) -> Layer | None:
        """The first layer that denied (None when allowed)."""
        for decision in self.decisions:
            if not decision.allowed:
                return decision.layer
        return None

    def is_degraded(self) -> bool:
        """True when any layer was resolved without a live check."""
        return self.stale or bool(self.degraded) \
            or any(d.error for d in self.decisions)


#: application-layer predicate (L3): request -> allowed
AppPredicate = Callable[[MediationRequest], bool]


class AuthorisationStack:
    """A configurable stack of mediation layers.

    Layers are plugged with :meth:`plug_os`, :meth:`plug_middleware`,
    :meth:`plug_trust_management` and :meth:`plug_application`; any subset
    may be present.  Mediation is top-down (L3 → L0), matching the paper's
    stack diagram: higher layers can veto before lower layers are consulted,
    and the decision trace records the order.

    With ``cache_ttl`` set, identical requests (``MediationRequest`` is
    deeply immutable and hashable) are served from a mediation cache for
    that many simulated seconds.  Entries are dropped when the TTL lapses,
    when a layer is (re)plugged, when the *decision they depend on*
    changes, or explicitly via :meth:`invalidate_cache`; layers with
    non-idempotent checks opt out via :meth:`mark_uncacheable`.  Entry
    invalidation is scoped per decision, not per assertion set: each entry
    whose trace consulted trust management carries the TM decision key and
    value it observed (:meth:`~repro.keynote.api.KeyNoteSession.
    decision_fingerprint`), and a hit revalidates only that one decision
    against the checker's dependency-indexed cache — so a revocation
    invalidates exactly the mediation entries whose TM decision it
    evicted, and unrelated warm entries survive churn (counted as
    ``stack.cache.survived_churn``).  An entry that could not capture its
    TM decision at store time — e.g. a revocation landed mid-mediation and
    the checker's epoch guard refused the decision — is never cached, so a
    stale-fresh decision cannot be resurrected.  Traffic shows up as
    ``stack.cache.hit`` / ``stack.cache.miss`` metrics and a ``cached``
    span attribute; churn-driven drops as ``stack.cache.invalidated``.

    Health (degraded-mode mediation): a layer whose check raises or times
    out never aborts mediation with a raw traceback — it is recorded as an
    ERROR :class:`LayerDecision` and resolved through the layer's
    :class:`~repro.webcom.health.DegradedMode` (:meth:`set_degraded_mode`;
    the default is fail-closed).  A per-layer
    :class:`~repro.webcom.health.CircuitBreaker` trips OPEN after
    ``breaker_threshold`` consecutive failures; while open the layer is not
    called at all, and after ``breaker_cooldown`` simulated seconds one
    half-open probe decides recovery.  Fail-static layers serve the
    last-known-good decision for the identical request, marked
    ``stale=True`` — and no degraded decision is ever stored in the fresh
    mediation cache.  ``layer_faults`` accepts a
    :class:`~repro.webcom.faults.LayerFaultInjector` so chaos schedules can
    time out layers deterministically.
    """

    def __init__(self, audit: AuditLog | None = None,
                 require_some_layer: bool = True,
                 clock: SimulatedClock | None = None,
                 obs: "Observability | None" = None,
                 cache_ttl: float | None = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 layer_faults: "LayerFaultInjector | None" = None) -> None:
        self.audit = audit
        self.require_some_layer = require_some_layer
        self.clock = clock or (obs.clock if obs is not None else None)
        self.obs = obs
        self._os: OperatingSystemSecurity | None = None
        self._middleware: Middleware | None = None
        self._tm: KeyNoteSession | None = None
        self._app: AppPredicate | None = None
        #: mediation cache: None disables; otherwise decisions are served
        #: for identical requests for ``cache_ttl`` simulated seconds
        self.cache_ttl = cache_ttl
        #: request -> (expires, decision-scoped fingerprint, TM state
        #: snapshot at store time, decision)
        self._cache: dict[MediationRequest,
                          tuple[float, object, object, StackDecision]] = {}
        #: serialises mediation-cache / last-known-good mutation against
        #: concurrent serve handlers (and threaded harnesses); without it a
        #: mediation racing a revocation could re-cache a stale decision
        self._cache_lock = threading.RLock()
        self._uncacheable: set[Layer] = set()
        self.cache_hits = 0
        self.cache_misses = 0
        #: entries dropped because their TM decision changed underneath them
        self.cache_invalidated = 0
        #: fresh hits served although the TM state changed since the entry
        #: was stored — each one is a hit generation-flush would have missed
        self.cache_survived_churn = 0
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.layer_faults = layer_faults
        self._breakers: dict[Layer, CircuitBreaker] = {}
        self._degraded_modes: dict[Layer, DegradedMode] = {}
        #: request -> the last fully mediated (non-degraded) decision;
        #: the store fail-static layers serve from during an outage
        self._last_good: dict[MediationRequest, StackDecision] = {}
        self.stale_served = 0

    def _now(self) -> float:
        """Current simulated time (0.0 when no clock is configured)."""
        return self.clock.now() if self.clock is not None else 0.0

    # -- plugging -------------------------------------------------------------

    def plug_os(self, os_security: OperatingSystemSecurity) -> "AuthorisationStack":
        """Configure L0."""
        self._os = os_security
        self.invalidate_cache()
        return self

    def plug_middleware(self, middleware: Middleware) -> "AuthorisationStack":
        """Configure L1."""
        self._middleware = middleware
        self.invalidate_cache()
        return self

    def plug_trust_management(self, session: KeyNoteSession,
                              ) -> "AuthorisationStack":
        """Configure L2."""
        self._tm = session
        self.invalidate_cache()
        return self

    def plug_application(self, predicate: AppPredicate) -> "AuthorisationStack":
        """Configure L3."""
        self._app = predicate
        self.invalidate_cache()
        return self

    # -- health ---------------------------------------------------------------

    def set_degraded_mode(self, layer: Layer,
                          mode: DegradedMode) -> "AuthorisationStack":
        """Choose how ``layer`` resolves while its backend is unavailable.

        Unset layers fail closed — the paper's Section-5 stance for trust
        management: a request that cannot be *proven* authorised is denied.
        """
        self._degraded_modes[layer] = DegradedMode(mode)
        return self

    def degraded_mode(self, layer: Layer) -> DegradedMode:
        """The effective degraded mode of one layer."""
        return self._degraded_modes.get(layer, DegradedMode.FAIL_CLOSED)

    def breaker(self, layer: Layer) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one layer."""
        breaker = self._breakers.get(layer)
        if breaker is None:
            breaker = CircuitBreaker(
                f"stack.{layer.name}", clock=self.clock,
                failure_threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown, obs=self.obs,
                audit=self.audit)
            self._breakers[layer] = breaker
        return breaker

    def health_snapshot(self) -> dict[str, object]:
        """Serialisable health state for the ``repro health`` report."""
        return {
            "breakers": {layer.name: breaker.snapshot()
                         for layer, breaker in sorted(self._breakers.items())},
            "degraded_modes": {layer.name: mode.value
                               for layer, mode
                               in sorted(self._degraded_modes.items())},
            "stale_served": self.stale_served,
            "last_good_entries": len(self._last_good),
        }

    # -- mediation cache ------------------------------------------------------

    def mark_uncacheable(self, layer: Layer) -> "AuthorisationStack":
        """Opt a layer out of mediation caching.

        Decisions whose trace consulted this layer are never cached — use
        for layers whose checks are not idempotent (rate limiters, one-time
        tokens, predicates with side effects).  A denial short-circuited
        *above* the layer never consulted it, so it may still be cached:
        replaying it reproduces the same short-circuit.
        """
        self._uncacheable.add(layer)
        self.invalidate_cache()
        return self

    def invalidate_cache(self) -> None:
        """Drop every cached mediation decision."""
        with self._cache_lock:
            self._cache.clear()

    def cache_info(self) -> dict[str, int]:
        """Mediation-cache statistics."""
        with self._cache_lock:
            return {"entries": len(self._cache), "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "invalidated": self.cache_invalidated,
                    "survived_churn": self.cache_survived_churn}

    def _config_fingerprint(self) -> object:
        """Changes when a plugged layer's decision inputs may have changed
        (currently: the TM session's assertion set).  No longer used to
        invalidate entries — only to *detect* that churn happened between
        store and hit, for the ``survived_churn`` accounting."""
        return (self._tm.state_fingerprint()
                if self._tm is not None else None)

    def _entry_fingerprint(self, request: MediationRequest,
                           decision: StackDecision) -> object:
        """The decision-scoped fingerprint of one cache entry.

        A decision whose trace consulted trust management is pinned to the
        (TM decision key, value) it observed; one that never consulted TM
        (denied above L2, or no TM plugged) gets a static sentinel — no
        assertion churn can change what it never read.  Returns None when
        the checker holds no cached value for the key: the decision cannot
        be fingerprinted right now, so the caller must not cache (store)
        or must drop (lookup).  That absence is exactly the mid-mediation
        revocation signature — the checker's epoch guard refused the
        in-flight decision — so a stale-fresh entry can never be stored.
        """
        tm_decision = decision.layer(Layer.TRUST_MANAGEMENT)
        if self._tm is None or tm_decision is None:
            return ("tm-not-consulted",)
        attributes = dict(request.attributes)
        attributes.setdefault("op", request.operation)
        key, value = self._tm.decision_fingerprint(attributes,
                                                   [request.user_key])
        if value is None or tm_decision.detail != f"compliance={value}":
            # No cached checker value for this key, or the checker's
            # current value differs from what this decision's trace
            # actually observed (a concurrent mutation recomputed it
            # mid-flight) — either way the decision cannot be vouched for.
            return None
        return ("tm-decision", key, value)

    def _cache_lookup(self, request: MediationRequest) -> StackDecision | None:
        with self._cache_lock:
            entry = self._cache.get(request)
            if entry is None:
                return None
            expires, fingerprint, state, decision = entry
            if self._now() > expires:
                self._cache.pop(request, None)
                return None
            if fingerprint != self._entry_fingerprint(request, decision):
                # The one decision this entry depends on changed (or was
                # evicted and not recomputed): drop just this entry.
                self._cache.pop(request, None)
                self.cache_invalidated += 1
                if self.obs is not None:
                    self.obs.metrics.counter("stack.cache.invalidated").inc()
                return None
            if state != self._config_fingerprint():
                # The assertion set churned since this entry was stored,
                # but its own decision is untouched: a hit the old
                # generation-flush scheme would have missed.
                self.cache_survived_churn += 1
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "stack.cache.survived_churn").inc()
            return decision

    def _cache_store(self, request: MediationRequest,
                     decision: StackDecision) -> None:
        """Store a fresh decision under its decision-scoped fingerprint,
        captured *after* mediation ran — when the TM decision it depends
        on is absent from the checker cache (a concurrent mutation's epoch
        guard refused it), the decision is not cached at all."""
        if decision.is_degraded():
            # A degraded decision is never cached as fresh: the next
            # request must re-probe the layers (or be re-marked stale).
            return
        if any(d.layer in self._uncacheable for d in decision.decisions):
            return
        with self._cache_lock:
            fingerprint = self._entry_fingerprint(request, decision)
            if fingerprint is None:
                return
            self._cache[request] = (self._now() + self.cache_ttl,
                                    fingerprint,
                                    self._config_fingerprint(), decision)

    def serve_stale(self, request: MediationRequest,
                    stale_ttl: float) -> StackDecision | None:
        """Brownout lookup: a cached decision within ``stale_ttl`` past its
        freshness bound is served marked ``stale=True``.

        This is the fail-static discipline applied to *overload* instead of
        backend outage: the decision was once fully mediated, the plane is
        too pressed to re-derive it, and the ``stale`` mark keeps the
        disclosure in every response and audit record.  A still-fresh entry
        is returned as-is (a normal hit); an entry expired or
        fingerprint-invalidated longer than ``stale_ttl`` ago is dropped
        and None means the caller must mediate for real.  The stale copy is
        never re-cached as fresh (:meth:`_cache_store` refuses degraded
        decisions).
        """
        if self.cache_ttl is None:
            return None
        now = self._now()
        with self._cache_lock:
            entry = self._cache.get(request)
            if entry is None:
                return None
            expires, fingerprint, state, decision = entry
            if now > expires + stale_ttl:
                self._cache.pop(request, None)
                return None
            if (now <= expires
                    and fingerprint == self._entry_fingerprint(request,
                                                               decision)):
                self.cache_hits += 1
                if self.obs is not None:
                    self.obs.metrics.counter("stack.cache.hit").inc()
                if state != self._config_fingerprint():
                    self.cache_survived_churn += 1
                    if self.obs is not None:
                        self.obs.metrics.counter(
                            "stack.cache.survived_churn").inc()
                return decision
        self.stale_served += 1
        if self.obs is not None:
            self.obs.metrics.counter("stack.cache.stale_served").inc()
        if self.audit is not None:
            self.audit.record(now, "stack.stale_served",
                              subject=request.user,
                              outcome="allow" if decision.allowed
                              else "deny", operation=request.operation)
        return replace(decision, stale=True)

    def configured_layers(self) -> tuple[Layer, ...]:
        """Which layers are present, lowest first."""
        layers = []
        if self._os is not None:
            layers.append(Layer.OS)
        if self._middleware is not None:
            layers.append(Layer.MIDDLEWARE)
        if self._tm is not None:
            layers.append(Layer.TRUST_MANAGEMENT)
        if self._app is not None:
            layers.append(Layer.APPLICATION)
        return tuple(layers)

    # -- mediation -----------------------------------------------------------------

    def _layer_checks(self, request: MediationRequest):
        """Yield ``(layer, thunk)`` pairs top-down (L3 → L0) for the
        configured layers; each thunk returns ``(allowed, detail)``."""
        if self._app is not None:
            app = self._app
            yield Layer.APPLICATION, lambda: (bool(app(request)),
                                              "application predicate")
        if self._tm is not None:
            tm = self._tm

            def check_tm() -> tuple[bool, str]:
                attributes = dict(request.attributes)
                attributes.setdefault("op", request.operation)
                result = tm.query(attributes, [request.user_key])
                return bool(result), f"compliance={result.compliance_value}"

            yield Layer.TRUST_MANAGEMENT, check_tm
        if self._middleware is not None:
            middleware = self._middleware

            def check_middleware() -> tuple[bool, str]:
                ok = middleware.check_invocation(Invocation(
                    user=request.user, object_type=request.object_type,
                    operation=request.operation))
                return ok, f"middleware={middleware.name}"

            yield Layer.MIDDLEWARE, check_middleware
        if self._os is not None:
            os_security = self._os

            def check_os() -> tuple[bool, str]:
                os_object = request.os_object or request.object_type
                ok = os_security.check(request.user, os_object,
                                       request.os_access)
                return ok, f"os={os_security.platform}"

            yield Layer.OS, check_os

    def mediate(self, request: MediationRequest,
                correlation_id: str | None = None) -> StackDecision:
        """Run the request down the stack.

        When observability is configured, the whole mediation is one
        ``stack.mediate`` span with a timed ``stack.layer.<NAME>`` child
        per consulted layer; ``correlation_id`` ties the trace to the
        remote scheduling decision that triggered this check (it defaults
        to whatever trace context is already open).

        :raises AuthorisationError: if no layer is configured and
            ``require_some_layer`` is set (an empty stack silently allowing
            everything is almost certainly a misconfiguration).
        """
        if self.require_some_layer and not self.configured_layers():
            raise AuthorisationError("no mediation layer is configured")
        cached = None
        if self.cache_ttl is not None:
            cached = self._cache_lookup(request)
            if self.obs is not None:
                hit_or_miss = "hit" if cached is not None else "miss"
                self.obs.metrics.counter(f"stack.cache.{hit_or_miss}").inc()
            if cached is not None:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is not None:
            with tracer.span("stack.mediate", correlation_id=correlation_id,
                             user=request.user, op=request.operation,
                             cached=cached is not None) as span:
                decision = cached if cached is not None \
                    else self._run_layers(request, tracer)
                span.status = "allow" if decision.allowed else "deny"
                denied_by = decision.deciding_layer()
                if denied_by is not None:
                    span.set(denied_by=denied_by.name)
                if decision.stale:
                    span.set(stale=True)
                if decision.degraded:
                    span.set(degraded=",".join(layer.name for layer
                                               in decision.degraded))
        elif cached is not None:
            decision = cached
        else:
            decision = self._run_layers(request, None)
        if cached is None and not decision.is_degraded():
            # Only a fully, freshly mediated decision may seed the
            # last-known-good store fail-static layers serve from.
            with self._cache_lock:
                self._last_good[request] = decision
        if cached is None and self.cache_ttl is not None:
            # The decision-scoped fingerprint is captured *after* mediation:
            # if a revocation landed mid-mediation, the checker's epoch
            # guard refused the in-flight TM decision, the fingerprint
            # comes back None, and this decision is simply never cached.
            self._cache_store(request, decision)
        if self.obs is not None:
            outcome = "allow" if decision.allowed else "deny"
            self.obs.metrics.counter(f"stack.mediate.{outcome}").inc()
        if self.audit is not None:
            denied = decision.deciding_layer()
            self.audit.record(
                self._now(), "stack.mediate", subject=request.user,
                outcome="allow" if decision.allowed else "deny",
                operation=request.operation,
                layers=[d.layer.name for d in decision.decisions],
                denied_by=denied.name if denied is not None else None,
                cached=cached is not None, stale=decision.stale,
                degraded=[layer.name for layer in decision.degraded])
        return decision

    def _run_layers(self, request: MediationRequest, tracer) -> StackDecision:
        decisions: list[LayerDecision] = []
        degraded: list[Layer] = []
        allowed = True
        for layer, check in self._layer_checks(request):
            if not allowed:
                break
            breaker = self.breaker(layer)
            if not breaker.allow():
                # Breaker OPEN and still cooling down: resolve through the
                # degraded mode without touching the backend at all.
                static = self._degrade(layer, request, "breaker open",
                                       decisions, degraded)
                if static is not None:
                    return static
                allowed = decisions[-1].allowed
                continue
            probing = breaker.state is BreakerState.HALF_OPEN
            try:
                if tracer is not None:
                    with tracer.span(f"stack.layer.{layer.name}",
                                     probe=probing) as span:
                        allowed, detail = self._checked(layer, check)
                        span.status = "allow" if allowed else "deny"
                        span.set(detail=detail)
                else:
                    allowed, detail = self._checked(layer, check)
            except Exception as exc:  # deliberate: a flaky backend must
                # degrade explicitly, never abort mediation mid-stack
                breaker.record_failure()
                if self.obs is not None:
                    self.obs.metrics.counter(
                        f"health.layer.{layer.name}.error").inc()
                static = self._degrade(layer, request, repr(exc),
                                       decisions, degraded)
                if static is not None:
                    return static
                allowed = decisions[-1].allowed
                continue
            breaker.record_success()
            if self.obs is not None:
                verdict = "allow" if allowed else "deny"
                self.obs.metrics.counter(
                    f"stack.layer.{layer.name}.{verdict}").inc()
            decisions.append(LayerDecision(layer, allowed, detail))
        return StackDecision(allowed=allowed, decisions=tuple(decisions),
                             degraded=tuple(degraded))

    def _checked(self, layer: Layer, check) -> tuple[bool, str]:
        """Run one layer check, injecting planned backend timeouts first."""
        if self.layer_faults is not None:
            self.layer_faults.check(layer.name, self._now())
        return check()

    def _degrade(self, layer: Layer, request: MediationRequest, reason: str,
                 decisions: list[LayerDecision],
                 degraded: list[Layer]) -> StackDecision | None:
        """Resolve an unavailable layer through its degraded mode.

        Appends an ERROR :class:`LayerDecision` (fail-closed / fail-open)
        and returns None, or returns the whole stale last-known-good
        :class:`StackDecision` (fail-static).  A fail-static layer with no
        last-known-good decision for this request falls back to
        fail-closed — degradation must never *widen* authorisation.
        """
        mode = self.degraded_mode(layer)
        degraded.append(layer)
        if self.obs is not None:
            self.obs.metrics.counter(
                f"health.degraded.{layer.name}.{mode.value}").inc()
        if mode is DegradedMode.FAIL_STATIC:
            with self._cache_lock:
                last_good = self._last_good.get(request)
            if last_good is not None:
                self.stale_served += 1
                if self.obs is not None:
                    self.obs.metrics.counter("health.stale_served").inc()
                    now = self._now()
                    self.obs.tracer.record(
                        "health.stale_served", now, now, layer=layer.name,
                        user=request.user, op=request.operation)
                return replace(last_good, stale=True,
                               degraded=tuple(degraded))
            mode = DegradedMode.FAIL_CLOSED
        decisions.append(LayerDecision(
            layer, allowed=mode is DegradedMode.FAIL_OPEN,
            detail=f"degraded[{mode.value}]: {reason}", error=True))
        return None

    def check(self, request: MediationRequest) -> bool:
        """Boolean convenience over :meth:`mediate`."""
        return self.mediate(request).allowed

"""Stacked authorisation (Section 5, Figure 10).

The WebCom security architecture is a stack of pluggable mediation layers::

    L3  Application security   (workflow rules encoded in the graph)
    L2  Trust management       (KeyNote / SPKI)
    L1  Middleware security    (CORBA / EJB / COM+)
    L0  OS security            (Unix / Windows)

"These stacked layers of secure WebCom are 'pluggable' ...; for example, in
the absence of CORBASec support for a particular ORB, a WebCom environment
could be configured so that authorisation is based only on a combination of
KeyNote (trust management) and underlying operating system policy."

A request is authorised when **every configured layer** allows it; absent
layers are skipped.  Each layer sees the request through its own lens (OS
object access, middleware invocation, TM query, application predicate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import AuthorisationError
from repro.keynote.api import KeyNoteSession
from repro.middleware.base import Invocation, Middleware
from repro.os_sec.base import OperatingSystemSecurity
from repro.util.events import AuditLog


class Layer(enum.IntEnum):
    """The four layers of Figure 10."""

    OS = 0
    MIDDLEWARE = 1
    TRUST_MANAGEMENT = 2
    APPLICATION = 3


@dataclass(frozen=True)
class MediationRequest:
    """One request as seen by the whole stack.

    :param user: OS/middleware-level principal.
    :param user_key: trust-management principal (public key name).
    :param object_type: middleware object type / RBAC object type.
    :param operation: operation / permission requested.
    :param os_object: the OS-level object the operation touches (optional;
        defaults to the object type).
    :param os_access: the OS access kind implied (default "read").
    :param attributes: extra TM action attributes.
    """

    user: str
    user_key: str
    object_type: str
    operation: str
    os_object: str = ""
    os_access: str = "read"
    attributes: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class LayerDecision:
    """One layer's verdict."""

    layer: Layer
    allowed: bool
    detail: str = ""


@dataclass(frozen=True)
class StackDecision:
    """The stack's combined verdict with the per-layer trace."""

    allowed: bool
    decisions: tuple[LayerDecision, ...]

    def layer(self, layer: Layer) -> LayerDecision | None:
        """The verdict of one layer, or None if it was not configured."""
        for decision in self.decisions:
            if decision.layer == layer:
                return decision
        return None

    def deciding_layer(self) -> Layer | None:
        """The first layer that denied (None when allowed)."""
        for decision in self.decisions:
            if not decision.allowed:
                return decision.layer
        return None


#: application-layer predicate (L3): request -> allowed
AppPredicate = Callable[[MediationRequest], bool]


class AuthorisationStack:
    """A configurable stack of mediation layers.

    Layers are plugged with :meth:`plug_os`, :meth:`plug_middleware`,
    :meth:`plug_trust_management` and :meth:`plug_application`; any subset
    may be present.  Mediation is top-down (L3 → L0), matching the paper's
    stack diagram: higher layers can veto before lower layers are consulted,
    and the decision trace records the order.
    """

    def __init__(self, audit: AuditLog | None = None,
                 require_some_layer: bool = True) -> None:
        self.audit = audit
        self.require_some_layer = require_some_layer
        self._os: OperatingSystemSecurity | None = None
        self._middleware: Middleware | None = None
        self._tm: KeyNoteSession | None = None
        self._app: AppPredicate | None = None

    # -- plugging -------------------------------------------------------------

    def plug_os(self, os_security: OperatingSystemSecurity) -> "AuthorisationStack":
        """Configure L0."""
        self._os = os_security
        return self

    def plug_middleware(self, middleware: Middleware) -> "AuthorisationStack":
        """Configure L1."""
        self._middleware = middleware
        return self

    def plug_trust_management(self, session: KeyNoteSession,
                              ) -> "AuthorisationStack":
        """Configure L2."""
        self._tm = session
        return self

    def plug_application(self, predicate: AppPredicate) -> "AuthorisationStack":
        """Configure L3."""
        self._app = predicate
        return self

    def configured_layers(self) -> tuple[Layer, ...]:
        """Which layers are present, lowest first."""
        layers = []
        if self._os is not None:
            layers.append(Layer.OS)
        if self._middleware is not None:
            layers.append(Layer.MIDDLEWARE)
        if self._tm is not None:
            layers.append(Layer.TRUST_MANAGEMENT)
        if self._app is not None:
            layers.append(Layer.APPLICATION)
        return tuple(layers)

    # -- mediation -----------------------------------------------------------------

    def mediate(self, request: MediationRequest) -> StackDecision:
        """Run the request down the stack.

        :raises AuthorisationError: if no layer is configured and
            ``require_some_layer`` is set (an empty stack silently allowing
            everything is almost certainly a misconfiguration).
        """
        if self.require_some_layer and not self.configured_layers():
            raise AuthorisationError("no mediation layer is configured")
        decisions: list[LayerDecision] = []
        allowed = True

        def note(layer: Layer, ok: bool, detail: str) -> bool:
            decisions.append(LayerDecision(layer, ok, detail))
            return ok

        if self._app is not None:
            allowed = note(Layer.APPLICATION, self._app(request),
                           "application predicate")
        if allowed and self._tm is not None:
            attributes = dict(request.attributes)
            attributes.setdefault("op", request.operation)
            result = self._tm.query(attributes, [request.user_key])
            allowed = note(Layer.TRUST_MANAGEMENT, bool(result),
                           f"compliance={result.compliance_value}")
        if allowed and self._middleware is not None:
            ok = self._middleware.check_invocation(Invocation(
                user=request.user, object_type=request.object_type,
                operation=request.operation))
            allowed = note(Layer.MIDDLEWARE, ok,
                           f"middleware={self._middleware.name}")
        if allowed and self._os is not None:
            os_object = request.os_object or request.object_type
            ok = self._os.check(request.user, os_object, request.os_access)
            allowed = note(Layer.OS, ok, f"os={self._os.platform}")

        decision = StackDecision(allowed=allowed, decisions=tuple(decisions))
        if self.audit is not None:
            self.audit.record(
                0.0, "stack.mediate", subject=request.user,
                outcome="allow" if allowed else "deny",
                operation=request.operation,
                layers=[d.layer.name for d in decisions],
                denied_by=(decision.deciding_layer().name
                           if decision.deciding_layer() is not None else None))
        return decision

    def check(self, request: MediationRequest) -> bool:
        """Boolean convenience over :meth:`mediate`."""
        return self.mediate(request).allowed

"""Condensed graphs [21]: the application model WebCom executes.

A condensed graph is a dataflow graph.  Each node has:

- an *operator*: either a named operation (ultimately a middleware
  component invocation) or a whole sub-graph — a **condensed node**, the
  model's namesake, which expands ("evaporates") when fired;
- *operand ports* ``0..arity-1`` that collect input tokens;
- *destinations*: (node, port) addresses its result token flows to.

A graph has named *entry ports* (where initial tokens enter) and a single
*exit node* whose result is the graph's value.  Morrison's model unifies
availability-driven (eager dataflow), coercion-driven (lazy, demand from the
exit) and control-driven (explicit sequencing) computation; the engine in
:mod:`repro.webcom.engine` implements all three over this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import networkx as nx

from repro.errors import GraphError

Operator = Union[str, "CondensedGraph"]


@dataclass(frozen=True)
class PortRef:
    """A destination address: operand port ``port`` of node ``node_id``."""

    node_id: str
    port: int


@dataclass
class GraphNode:
    """One node of a condensed graph."""

    node_id: str
    operator: Operator
    arity: int
    destinations: list[PortRef] = field(default_factory=list)
    #: optional placement constraint (see webcom.ide.PlacementSpec)
    placement: "object | None" = None

    @property
    def is_condensed(self) -> bool:
        """True if the operator is itself a graph."""
        return not isinstance(self.operator, str)

    @property
    def operator_name(self) -> str:
        """Display name of the operator."""
        if isinstance(self.operator, str):
            return self.operator
        return f"<{self.operator.name}>"


class CondensedGraph:
    """A condensed graph under construction or execution.

    >>> g = CondensedGraph("double-add")
    >>> _ = g.add_node("a", operator="add", arity=2)
    >>> _ = g.add_node("b", operator="double", arity=1)
    >>> g.connect("a", "b", 0)
    >>> g.entry("x", "a", 0)
    >>> g.entry("y", "a", 1)
    >>> g.set_exit("b")
    >>> g.validate()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: dict[str, GraphNode] = {}
        #: entry name -> ports initial tokens flow to
        self._entries: dict[str, list[PortRef]] = {}
        self._exit: str | None = None

    # -- construction ---------------------------------------------------------

    def add_node(self, node_id: str, operator: Operator, arity: int,
                 placement: "object | None" = None) -> GraphNode:
        """Add a node.

        :raises GraphError: for duplicate ids or negative arity.
        """
        if node_id in self._nodes:
            raise GraphError(f"duplicate node id {node_id!r}")
        if arity < 0:
            raise GraphError(f"node {node_id!r} has negative arity")
        node = GraphNode(node_id=node_id, operator=operator, arity=arity,
                         placement=placement)
        self._nodes[node_id] = node
        return node

    def connect(self, source: str, target: str, port: int) -> None:
        """Wire ``source``'s result into operand ``port`` of ``target``.

        :raises GraphError: for unknown nodes or out-of-range ports.
        """
        if source not in self._nodes:
            raise GraphError(f"unknown source node {source!r}")
        target_node = self.node(target)
        if not 0 <= port < target_node.arity:
            raise GraphError(
                f"port {port} out of range for node {target!r} "
                f"(arity {target_node.arity})")
        self._nodes[source].destinations.append(PortRef(target, port))

    def entry(self, name: str, target: str, port: int) -> None:
        """Declare a graph input flowing to ``target``'s operand ``port``."""
        target_node = self.node(target)
        if not 0 <= port < target_node.arity:
            raise GraphError(
                f"port {port} out of range for node {target!r}")
        self._entries.setdefault(name, []).append(PortRef(target, port))

    def set_exit(self, node_id: str) -> None:
        """Declare the exit node (the graph's result)."""
        self.node(node_id)
        self._exit = node_id

    # -- access -------------------------------------------------------------------

    def node(self, node_id: str) -> GraphNode:
        """Look up a node.

        :raises GraphError: if absent.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    @property
    def nodes(self) -> dict[str, GraphNode]:
        """All nodes by id (live view; don't mutate)."""
        return self._nodes

    @property
    def entries(self) -> dict[str, list[PortRef]]:
        """Entry name -> destinations."""
        return self._entries

    @property
    def exit_node(self) -> str:
        """The exit node id.

        :raises GraphError: if none was declared.
        """
        if self._exit is None:
            raise GraphError(f"graph {self.name!r} has no exit node")
        return self._exit

    # -- analysis -----------------------------------------------------------------------

    def to_networkx(self) -> "nx.DiGraph":
        """The node-level dependency digraph (for analysis and display)."""
        digraph = nx.DiGraph()
        digraph.add_nodes_from(self._nodes)
        for node in self._nodes.values():
            for dest in node.destinations:
                digraph.add_edge(node.node_id, dest.node_id)
        return digraph

    def validate(self) -> None:
        """Check structural sanity.

        :raises GraphError: for unfillable ports, dangling destinations,
            cycles, a missing exit, or an exit unreachable from the entries.
        """
        exit_id = self.exit_node
        filled: dict[str, set[int]] = {nid: set() for nid in self._nodes}
        for node in self._nodes.values():
            for dest in node.destinations:
                if dest.node_id not in self._nodes:
                    raise GraphError(
                        f"node {node.node_id!r} targets unknown node "
                        f"{dest.node_id!r}")
                filled[dest.node_id].add(dest.port)
        for refs in self._entries.values():
            for ref in refs:
                filled[ref.node_id].add(ref.port)
        for node in self._nodes.values():
            missing = set(range(node.arity)) - filled[node.node_id]
            if missing:
                raise GraphError(
                    f"node {node.node_id!r} has unfillable ports {sorted(missing)}")
        digraph = self.to_networkx()
        if not nx.is_directed_acyclic_graph(digraph):
            cycle = nx.find_cycle(digraph)
            raise GraphError(f"graph has a cycle: {cycle}")
        entry_nodes = {ref.node_id for refs in self._entries.values()
                       for ref in refs}
        if entry_nodes:
            reachable = set(entry_nodes)
            for start in entry_nodes:
                reachable |= nx.descendants(digraph, start)
            if exit_id not in reachable:
                raise GraphError(
                    f"exit node {exit_id!r} is unreachable from the entries")
        for node in self._nodes.values():
            if node.is_condensed:
                node.operator.validate()

    def needed_for_exit(self) -> set[str]:
        """Node ids the exit transitively depends on (coercion-driven set)."""
        digraph = self.to_networkx().reverse()
        exit_id = self.exit_node
        return {exit_id} | nx.descendants(digraph, exit_id)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"CondensedGraph({self.name!r}, nodes={len(self._nodes)})"


def condense(name: str, subgraph: CondensedGraph, host_graph: CondensedGraph,
             node_id: str, arity: int) -> GraphNode:
    """Add ``subgraph`` to ``host_graph`` as a condensed node.

    The subgraph must have exactly ``arity`` entries; entry order is the
    sorted entry-name order.

    :raises GraphError: on arity mismatch.
    """
    if len(subgraph.entries) != arity:
        raise GraphError(
            f"condensed node {node_id!r} has arity {arity} but the subgraph "
            f"declares {len(subgraph.entries)} entries")
    return host_graph.add_node(node_id, operator=subgraph, arity=arity)

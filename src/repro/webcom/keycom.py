"""The KeyCOM administration service (Figure 8).

"On each WebCom environment a secure automated administration service accepts
KeyNote credentials and updates the local middleware security policy
configuration to reflect the authorisations granted by the credentials. ...
The KeyCOM service of WebCom accepts a policy update request (plus KeyNote
credentials) and if valid it updates the security policy in the COM Catalogue
with the equivalent authorisation.  KeyCOM acts, in effect, as an automated
Windows/COM administrator."

The service holds the local trust root (the WebCom administration key's
POLICY assertion).  A request asks to install a (user, domain, role)
membership; the presented credentials must *prove* the membership — i.e. the
compliance checker must authorise the user's key for the role's attributes —
before the middleware store is touched.  This is how a user registered only
in Domain B (Figure 8) gets integrated into Domain A's COM+ policy without a
human administrator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import KeyComError
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.middleware.base import Middleware
from repro.rbac.model import Assignment
from repro.translate.common import membership_attributes
from repro.util.events import AuditLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.durable import DurableStore


@dataclass(frozen=True)
class PolicyUpdateRequest:
    """A decentralised policy update: install ``user`` into (domain, role).

    :param user: the middleware-level user name to install.
    :param user_key: the public key (name or encoded) proving the request.
    :param domain: target RBAC domain (an NT domain for COM+).
    :param role: target role.
    :param credentials: the KeyNote credentials presented as proof.
    :param request_id: client-chosen id making the request idempotent: the
        service applies each id at most once, so a duplicate delivered by a
        flaky network (or a client retry) cannot double-apply.  Empty means
        "not idempotent" (legacy callers).
    :param version: optional monotone version for anti-entropy replay; 0
        means unversioned.
    """

    user: str
    user_key: str
    domain: str
    role: str
    credentials: tuple[Credential, ...]
    request_id: str = ""
    version: int = 0

    def validate(self) -> None:
        """Structural validation, before any credential is evaluated.

        :raises KeyComError: for empty/blank principal, domain or role
            fields, a non-tuple credential payload, or a negative version —
            a malformed request must be rejected before it can touch any
            state.
        """
        for name in ("user", "user_key", "domain", "role"):
            value = getattr(self, name)
            if not isinstance(value, str) or not value.strip():
                raise KeyComError(
                    f"malformed update request: {name} must be a non-empty "
                    f"string, got {value!r}")
        if not isinstance(self.credentials, tuple) or not all(
                isinstance(c, Credential) for c in self.credentials):
            raise KeyComError(
                "malformed update request: credentials must be a tuple of "
                "Credential instances")
        if not isinstance(self.request_id, str):
            raise KeyComError(
                f"malformed update request: request_id must be a string, "
                f"got {self.request_id!r}")
        if not isinstance(self.version, int) or self.version < 0:
            raise KeyComError(
                f"malformed update request: version must be a non-negative "
                f"integer, got {self.version!r}")


class KeyComService:
    """Accepts credential-backed policy update requests for one middleware.

    :param middleware: the local store to administer (COM+ in the paper; any
        :class:`~repro.middleware.base.Middleware` here).
    :param session: the trust-management session holding the local POLICY
        assertions (the root of what this environment accepts).
    """

    def __init__(self, middleware: Middleware, session: KeyNoteSession,
                 audit: AuditLog | None = None,
                 store: "DurableStore | None" = None) -> None:
        self.middleware = middleware
        self.session = session
        self.audit = audit
        #: optional durable store: each *authorised* install is written
        #: ahead as a ``keycom.apply`` record (user, domain, role,
        #: request_id) before the middleware is touched, so recovery
        #: replays exactly the acknowledged installs — and the request-id
        #: dedup below holds across restarts because replay rebuilds
        #: :attr:`applied_ids` from the same records
        self.store = store
        self.processed: list[tuple[PolicyUpdateRequest, bool]] = []
        #: request ids already applied successfully — re-delivery of the
        #: same id is acknowledged without touching the middleware again
        self.applied_ids: set[str] = set()
        self.duplicates = 0

    def submit(self, request: PolicyUpdateRequest) -> bool:
        """Validate and apply one update request.

        Returns True if the middleware policy was updated (or the request id
        was already applied — duplicate delivery is acknowledged, not
        re-applied).

        :raises KeyComError: if the request is structurally malformed or the
            credentials do not authorise the requested membership (invalid
            requests are *rejected*, not silently dropped — the caller is a
            remote client).  A malformed request is rejected before any
            query or middleware state change.
        """
        request.validate()
        if request.request_id and request.request_id in self.applied_ids:
            self.duplicates += 1
            if self.audit is not None:
                self.audit.record(
                    self.session.clock.now(), "keycom.update",
                    subject=request.user_key, outcome="duplicate",
                    user=request.user, domain=request.domain,
                    role=request.role, request_id=request.request_id)
            return True
        attributes = membership_attributes(request.domain, request.role)
        result = self.session.query(attributes, [request.user_key],
                                    extra_credentials=list(request.credentials))
        authorised = bool(result)
        self.processed.append((request, authorised))
        if self.audit is not None:
            self.audit.record(
                self.session.clock.now(), "keycom.update",
                subject=request.user_key,
                outcome="allow" if authorised else "deny",
                user=request.user, domain=request.domain, role=request.role)
        if not authorised:
            raise KeyComError(
                f"credentials do not authorise {request.user!r} for "
                f"{request.domain}/{request.role}")
        if self.store is not None:
            self.store.append("keycom.apply", user=request.user,
                              domain=request.domain, role=request.role,
                              request_id=request.request_id)
        self.middleware.apply_assignment(Assignment(
            user=request.user, domain=request.domain, role=request.role))
        if request.request_id:
            self.applied_ids.add(request.request_id)
        return True

    def submit_quietly(self, request: PolicyUpdateRequest) -> bool:
        """Like :meth:`submit` but returning False instead of raising."""
        try:
            return self.submit(request)
        except KeyComError:
            return False

"""Bridging middleware components into WebCom client operations.

A WebCom client's operation table usually holds plain callables; this module
builds those callables from *middleware components*, so that executing a
graph node actually invokes the middleware — and the middleware's own L1
security mediation runs on the client, under the client's user identity.
A denied invocation raises :class:`~repro.errors.AccessDeniedError`, which
the client reports back to the master as a remote error (the master then
tries the next authorised client, mirroring WebCom's fault handling).

Operation names follow the IDE convention ``ObjectType.operation``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import AccessDeniedError
from repro.middleware.base import Middleware

#: implementation table: (object_type, operation) -> business logic
Implementations = Mapping[tuple[str, str], Callable[..., Any]]


def middleware_operations(middleware: Middleware, user: str,
                          implementations: Implementations,
                          ) -> dict[str, Callable[..., Any]]:
    """Build a client operation table from middleware components.

    :param middleware: the local middleware whose policy mediates calls.
    :param user: the principal client-side executions run as.
    :param implementations: business logic per (object_type, operation);
        only pairs the middleware actually serves are exported.
    :raises KeyError: if an implementation references an unknown component.
    """
    served = {(component.object_type, operation)
              for component in middleware.components()
              for operation in component.operations}
    table: dict[str, Callable[..., Any]] = {}
    for (object_type, operation), logic in implementations.items():
        if (object_type, operation) not in served:
            raise KeyError(
                f"middleware {middleware.name!r} does not serve "
                f"{object_type}.{operation}")
        table[f"{object_type}.{operation}"] = _guarded(
            middleware, user, object_type, operation, logic)
    return table


def _guarded(middleware: Middleware, user: str, object_type: str,
             operation: str, logic: Callable[..., Any]) -> Callable[..., Any]:
    def call(*args: Any) -> Any:
        if not middleware.invoke(user, object_type, operation):
            raise AccessDeniedError(
                f"{middleware.name}: {user!r} may not {operation} "
                f"on {object_type}")
        return logic(*args)

    call.__name__ = f"{object_type}.{operation}"
    return call

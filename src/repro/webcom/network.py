"""A deterministic simulated network.

WebCom masters and clients exchange messages through this fabric.  Messages
carry a simulated latency; delivery is in (arrival time, sequence) order, so
runs are fully reproducible.  Faults: peers can crash (drop all traffic) and
links can be partitioned.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import NetworkError
from repro.util.clock import SimulatedClock


@dataclass(frozen=True)
class Message:
    """A network message."""

    sender: str
    recipient: str
    kind: str
    payload: Mapping[str, Any]
    sent_at: float
    arrives_at: float
    seq: int

    def __lt__(self, other: "Message") -> bool:
        return (self.arrives_at, self.seq) < (other.arrives_at, other.seq)


Handler = Callable[[Message], None]


class SimulatedNetwork:
    """Message fabric with latency, crashes and partitions."""

    def __init__(self, clock: SimulatedClock | None = None,
                 default_latency: float = 1.0) -> None:
        self.clock = clock or SimulatedClock()
        self.default_latency = default_latency
        self._handlers: dict[str, Handler] = {}
        self._queue: list[Message] = []
        self._seq = 0
        self._crashed: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self._link_latency: dict[frozenset[str], float] = {}
        self.delivered: list[Message] = []
        self.dropped: list[Message] = []

    # -- membership ---------------------------------------------------------

    def attach(self, peer_id: str, handler: Handler) -> None:
        """Register a peer and its message handler.

        :raises NetworkError: for duplicate ids.
        """
        if peer_id in self._handlers:
            raise NetworkError(f"peer {peer_id!r} already attached")
        self._handlers[peer_id] = handler

    def peers(self) -> frozenset[str]:
        """Attached peer ids."""
        return frozenset(self._handlers)

    # -- faults -----------------------------------------------------------------

    def crash(self, peer_id: str) -> None:
        """Crash a peer: queued and future traffic to/from it is dropped."""
        self._crashed.add(peer_id)

    def recover(self, peer_id: str) -> None:
        """Recover a crashed peer."""
        self._crashed.discard(peer_id)

    def is_crashed(self, peer_id: str) -> bool:
        """True if the peer is currently down."""
        return peer_id in self._crashed

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two peers (both directions)."""
        self._partitions.add(frozenset({a, b}))

    def heal(self, a: str, b: str) -> None:
        """Restore a cut link."""
        self._partitions.discard(frozenset({a, b}))

    def _link_down(self, a: str, b: str) -> bool:
        return frozenset({a, b}) in self._partitions

    def set_link_latency(self, a: str, b: str, latency: float) -> None:
        """Override the latency of one (bidirectional) link.

        :raises NetworkError: for negative latencies.
        """
        if latency < 0:
            raise NetworkError("latency cannot be negative")
        self._link_latency[frozenset({a, b})] = latency

    def latency_between(self, a: str, b: str) -> float:
        """The effective latency of a link."""
        return self._link_latency.get(frozenset({a, b}),
                                      self.default_latency)

    # -- traffic ------------------------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str,
             payload: Mapping[str, Any] | None = None,
             latency: float | None = None) -> Message:
        """Enqueue a message (it is delivered by :meth:`step` /
        :meth:`run_until_quiet`).

        :raises NetworkError: for unknown peers.
        """
        if sender not in self._handlers:
            raise NetworkError(f"unknown sender {sender!r}")
        if recipient not in self._handlers:
            raise NetworkError(f"unknown recipient {recipient!r}")
        self._seq += 1
        lat = (self.latency_between(sender, recipient)
               if latency is None else latency)
        message = Message(
            sender=sender, recipient=recipient, kind=kind,
            payload=dict(payload or {}),
            sent_at=self.clock.now(),
            arrives_at=self.clock.now() + lat,
            seq=self._seq)
        heapq.heappush(self._queue, message)
        return message

    def pending(self) -> int:
        """Messages still in flight."""
        return len(self._queue)

    def step(self) -> Message | None:
        """Deliver the next message (advancing the clock to its arrival).

        Returns the delivered message, or None if the queue is empty.
        Messages to/from crashed peers or across partitions are dropped
        (recorded in :attr:`dropped`).
        """
        while self._queue:
            message = heapq.heappop(self._queue)
            self.clock.advance_to(message.arrives_at)
            if (message.sender in self._crashed
                    or message.recipient in self._crashed
                    or self._link_down(message.sender, message.recipient)):
                self.dropped.append(message)
                continue
            self.delivered.append(message)
            self._handlers[message.recipient](message)
            return message
        return None

    def run_until_quiet(self, max_messages: int = 100_000) -> int:
        """Deliver until the queue drains; returns messages delivered.

        :raises NetworkError: if ``max_messages`` is exceeded (runaway
            protocol loop).
        """
        count = 0
        while self._queue:
            if self.step() is not None:
                count += 1
            if count > max_messages:
                raise NetworkError("message budget exceeded; protocol loop?")
        return count

"""A deterministic simulated network.

WebCom masters and clients exchange messages through this fabric.  Messages
carry a simulated latency; delivery is in (arrival time, sequence) order, so
runs are fully reproducible.  Faults: peers can crash (for an interval — all
traffic whose flight overlaps the downtime is dropped, even if delivery
would fall after recovery), links can be partitioned, and a
:class:`~repro.webcom.faults.FaultInjector` can drop, duplicate, reorder and
jitter individual messages from a seeded plan.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import NetworkError
from repro.util.clock import SimulatedClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


@dataclass(frozen=True)
class Message:
    """A network message."""

    sender: str
    recipient: str
    kind: str
    payload: Mapping[str, Any]
    sent_at: float
    arrives_at: float
    seq: int

    def __lt__(self, other: "Message") -> bool:
        return (self.arrives_at, self.seq) < (other.arrives_at, other.seq)


Handler = Callable[[Message], None]


class SimulatedNetwork:
    """Message fabric with latency, crashes, partitions and fault injection.

    :ivar fault_injector: optional
        :class:`~repro.webcom.faults.FaultInjector` consulted on every send
        (install via :meth:`FaultInjector.install`).
    """

    def __init__(self, clock: SimulatedClock | None = None,
                 default_latency: float = 1.0,
                 obs: "Observability | None" = None) -> None:
        self.clock = clock or (obs.clock if obs is not None
                               else SimulatedClock())
        self.default_latency = default_latency
        self.obs = obs
        self._handlers: dict[str, Handler] = {}
        self._queue: list[Message] = []
        self._seq = 0
        #: peer -> downtime intervals [start, end); end == inf while open
        self._crash_intervals: dict[str, list[list[float]]] = {}
        self._partitions: set[frozenset[str]] = set()
        self._link_latency: dict[frozenset[str], float] = {}
        self.fault_injector = None
        self.delivered: list[Message] = []
        self.dropped: list[Message] = []

    # -- membership ---------------------------------------------------------

    def attach(self, peer_id: str, handler: Handler) -> None:
        """Register a peer and its message handler.

        :raises NetworkError: for duplicate ids.
        """
        if peer_id in self._handlers:
            raise NetworkError(f"peer {peer_id!r} already attached")
        self._handlers[peer_id] = handler

    def peers(self) -> frozenset[str]:
        """Attached peer ids."""
        return frozenset(self._handlers)

    # -- faults -----------------------------------------------------------------

    def crash(self, peer_id: str) -> None:
        """Crash a peer now: traffic overlapping its downtime is dropped."""
        if not self.is_crashed(peer_id):
            self._crash_intervals.setdefault(peer_id, []).append(
                [self.clock.now(), math.inf])

    def recover(self, peer_id: str) -> None:
        """Recover a crashed peer (closes its open downtime interval)."""
        now = self.clock.now()
        for interval in self._crash_intervals.get(peer_id, []):
            if interval[0] <= now < interval[1]:
                interval[1] = now

    def schedule_crash(self, peer_id: str, start: float,
                       end: float = math.inf) -> None:
        """Schedule a downtime window ``[start, end)`` for a peer.

        :raises NetworkError: if the window is inverted.
        """
        if end < start:
            raise NetworkError(
                f"crash window for {peer_id!r} ends before it starts")
        self._crash_intervals.setdefault(peer_id, []).append([start, end])

    def is_crashed(self, peer_id: str) -> bool:
        """True if the peer is down at the current simulated time."""
        now = self.clock.now()
        return any(start <= now < end
                   for start, end in self._crash_intervals.get(peer_id, []))

    def crashed_during(self, peer_id: str, t0: float, t1: float) -> bool:
        """True if the peer is down at any instant of ``[t0, t1]``.

        This is the drop test for in-flight messages: a message sent while
        the peer is down (or that would arrive during, or after a downtime
        that started mid-flight) never reaches its handler.
        """
        return any(start <= t1 and t0 < end
                   for start, end in self._crash_intervals.get(peer_id, []))

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two peers (both directions)."""
        self._partitions.add(frozenset({a, b}))

    def heal(self, a: str, b: str) -> None:
        """Restore a cut link."""
        self._partitions.discard(frozenset({a, b}))

    def _link_down(self, a: str, b: str) -> bool:
        return frozenset({a, b}) in self._partitions

    def set_link_latency(self, a: str, b: str, latency: float) -> None:
        """Override the latency of one (bidirectional) link.

        :raises NetworkError: for negative latencies.
        """
        if latency < 0:
            raise NetworkError("latency cannot be negative")
        self._link_latency[frozenset({a, b})] = latency

    def latency_between(self, a: str, b: str) -> float:
        """The effective latency of a link."""
        return self._link_latency.get(frozenset({a, b}),
                                      self.default_latency)

    # -- traffic ------------------------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str,
             payload: Mapping[str, Any] | None = None,
             latency: float | None = None) -> Message:
        """Enqueue a message (it is delivered by :meth:`step` /
        :meth:`run_until` / :meth:`run_until_quiet`).

        When a fault injector is installed it may drop the message outright
        (recorded in :attr:`dropped`), duplicate it, or stretch its latency.
        Returns the first enqueued copy (or the dropped message).

        :raises NetworkError: for unknown peers.
        """
        if sender not in self._handlers:
            raise NetworkError(f"unknown sender {sender!r}")
        if recipient not in self._handlers:
            raise NetworkError(f"unknown recipient {recipient!r}")
        lat = (self.latency_between(sender, recipient)
               if latency is None else latency)
        latencies = [lat]
        if self.fault_injector is not None:
            latencies = self.fault_injector.plan_delivery(
                sender, recipient, kind, lat)
        now = self.clock.now()
        body = dict(payload or {})
        if not latencies:
            self._seq += 1
            lost = Message(sender=sender, recipient=recipient, kind=kind,
                           payload=body, sent_at=now, arrives_at=now + lat,
                           seq=self._seq)
            self.dropped.append(lost)
            self._observe(lost, delivered=False)
            return lost
        first: Message | None = None
        for effective in latencies:
            self._seq += 1
            message = Message(
                sender=sender, recipient=recipient, kind=kind,
                payload=body, sent_at=now, arrives_at=now + effective,
                seq=self._seq)
            heapq.heappush(self._queue, message)
            if first is None:
                first = message
        return first

    def pending(self) -> int:
        """Messages still in flight."""
        return len(self._queue)

    def _pop_and_dispatch(self) -> Message | None:
        """Pop the earliest message, advance the clock, deliver or drop it.

        Returns the message if it was delivered, None if it was dropped.
        """
        message = heapq.heappop(self._queue)
        self.clock.advance_to(message.arrives_at)
        if (self.crashed_during(message.sender, message.sent_at,
                                message.arrives_at)
                or self.crashed_during(message.recipient, message.sent_at,
                                       message.arrives_at)
                or self._link_down(message.sender, message.recipient)):
            self.dropped.append(message)
            self._observe(message, delivered=False)
            return None
        self.delivered.append(message)
        self._observe(message, delivered=True)
        self._handlers[message.recipient](message)
        return message

    def _observe(self, message: Message, delivered: bool) -> None:
        """Record the message's flight as a trace span + metrics.

        A span is only recorded for correlated traffic (payloads carrying a
        ``correlation_id``); housekeeping messages (register/ping/pong)
        still count in the metrics.
        """
        if self.obs is None:
            return
        outcome = "delivered" if delivered else "dropped"
        self.obs.metrics.counter(f"net.{outcome}").inc()
        self.obs.metrics.counter(f"net.{outcome}.{message.kind}").inc()
        if delivered:
            self.obs.metrics.histogram("net.latency").observe(
                message.arrives_at - message.sent_at)
        correlation_id = message.payload.get("correlation_id")
        if correlation_id is None:
            return
        self.obs.tracer.record(
            f"net.{message.kind}", message.sent_at, message.arrives_at,
            correlation_id=correlation_id,
            parent_id=message.payload.get("span_id"),
            status="ok" if delivered else "dropped",
            sender=message.sender, recipient=message.recipient)

    def step(self) -> Message | None:
        """Deliver the next message (advancing the clock to its arrival).

        Returns the delivered message, or None if the queue is empty.
        Messages whose flight overlaps a peer's downtime, or that cross a
        partition, are dropped (recorded in :attr:`dropped`).
        """
        while self._queue:
            message = self._pop_and_dispatch()
            if message is not None:
                return message
        return None

    def run_until(self, deadline: float,
                  stop: Callable[[], bool] | None = None,
                  max_messages: int = 100_000) -> int:
        """Deliver every message due by ``deadline``; returns deliveries.

        When ``stop`` is given, delivery halts as soon as it returns True
        (the clock stays at the triggering arrival).  Otherwise the clock is
        advanced to ``deadline`` — this is how schedulers wait out a
        per-request timeout on the simulated clock.

        :raises NetworkError: if ``max_messages`` is exceeded.
        """
        count = 0
        processed = 0
        while self._queue and self._queue[0].arrives_at <= deadline:
            if stop is not None and stop():
                return count
            processed += 1
            if processed > max_messages:
                raise NetworkError("message budget exceeded; protocol loop?")
            if self._pop_and_dispatch() is not None:
                count += 1
        if stop is None or not stop():
            self.clock.advance_to(deadline)
        return count

    def run_until_quiet(self, max_messages: int = 100_000) -> int:
        """Deliver until the queue drains; returns messages delivered.

        :raises NetworkError: if ``max_messages`` is exceeded (runaway
            protocol loop).
        """
        count = 0
        while self._queue:
            if self.step() is not None:
                count += 1
            if count > max_messages:
                raise NetworkError("message budget exceeded; protocol loop?")
        return count

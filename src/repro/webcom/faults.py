"""Seeded fault injection for the simulated network.

A :class:`FaultPlan` is a declarative description of everything that may go
wrong on the wire: per-link / per-kind message **drop**, **duplication**,
**reordering** and latency **jitter**, plus scheduled **crash windows**
during which a peer is down.  A :class:`FaultInjector` executes the plan
against a :class:`~repro.webcom.network.SimulatedNetwork` using a seeded RNG,
so every chaos schedule is fully reproducible: the same plan against the same
protocol produces the same interleaving, byte for byte.

This is the substrate the chaos harness (``tests/webcom/test_chaos.py``)
uses to assert that Secure WebCom's scheduling protocol converges — same
results, same allow/deny audit outcomes — under dozens of adversarial
network schedules.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import (FaultPlanError, LayerTimeoutError,
                          SimulatedCrashError)


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], "
                             f"got {value}")


@dataclass(frozen=True)
class FaultRule:
    """One fault clause: which traffic it matches and what it does to it.

    :param link: restrict to one (bidirectional) link, or None for any.
    :param kind: restrict to one message kind (``"execute"``, ``"result"``,
        ``"ping"``...), or None for any.
    :param drop: probability the message is lost.
    :param duplicate: probability a second copy is delivered.
    :param reorder: probability the message is held back so that later
        traffic overtakes it.
    :param jitter: maximum extra latency (uniformly drawn in ``[0, jitter]``).
    """

    link: tuple[str, str] | None = None
    kind: str | None = None
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("drop", self.drop)
        _check_probability("duplicate", self.duplicate)
        _check_probability("reorder", self.reorder)
        if self.jitter < 0:
            raise FaultPlanError(f"jitter cannot be negative, "
                                 f"got {self.jitter}")

    def matches(self, sender: str, recipient: str, kind: str) -> bool:
        """True if this rule applies to a message."""
        if self.link is not None and frozenset(self.link) != frozenset(
                {sender, recipient}):
            return False
        if self.kind is not None and self.kind != kind:
            return False
        return True


@dataclass(frozen=True)
class CrashWindow:
    """A scheduled downtime interval ``[start, end)`` for one peer.

    Messages whose flight overlaps the window are dropped — including
    messages *enqueued* while the peer is down whose delivery time falls
    after recovery.
    """

    peer: str
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultPlanError("crash window cannot start before epoch zero")
        if self.end < self.start:
            raise FaultPlanError(
                f"crash window for {self.peer!r} ends ({self.end}) before "
                f"it starts ({self.start})")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded chaos schedule.

    :param seed: RNG seed; two injectors built from equal plans make
        identical decisions.
    :param rules: fault clauses, all applied to each matching message.
    :param crash_windows: scheduled peer downtimes.
    :param reorder_hold: how long a reordered message is held back,
        as a multiple of its base latency.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    crash_windows: tuple[CrashWindow, ...] = ()
    reorder_hold: float = 2.5

    def __post_init__(self) -> None:
        if self.reorder_hold < 0:
            raise FaultPlanError("reorder_hold cannot be negative")
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "crash_windows", tuple(self.crash_windows))

    @classmethod
    def chaos(cls, seed: int, *, crash_peers: tuple[str, ...] = (),
              max_drop: float = 0.15, max_duplicate: float = 0.25,
              max_reorder: float = 0.2, max_jitter: float = 2.0,
              ) -> "FaultPlan":
        """Derive a mixed drop/dup/reorder/jitter/crash-window plan from one
        seed — the generator the chaos harness sweeps.

        Roughly every third seed also opens a bounded crash window on one of
        ``crash_peers`` so recovery paths (heartbeat re-probe, rescheduling)
        are exercised.
        """
        rng = random.Random(seed)
        rules = (FaultRule(
            drop=rng.uniform(0.0, max_drop),
            duplicate=rng.uniform(0.0, max_duplicate),
            reorder=rng.uniform(0.0, max_reorder),
            jitter=rng.uniform(0.0, max_jitter)),)
        windows: tuple[CrashWindow, ...] = ()
        if crash_peers and seed % 3 == 0:
            peer = crash_peers[seed % len(crash_peers)]
            start = rng.uniform(1.0, 6.0)
            windows = (CrashWindow(peer, start,
                                   start + rng.uniform(5.0, 20.0)),)
        return cls(seed=seed, rules=rules, crash_windows=windows)


class FaultInjector:
    """Executes a :class:`FaultPlan` against a simulated network.

    Install with :meth:`install`; the network then consults
    :meth:`plan_delivery` for every ``send``.  Decisions are drawn from a
    private ``random.Random(plan.seed)`` so a schedule replays exactly.

    :ivar counts: how many of each fault actually fired
        (``drop`` / ``duplicate`` / ``reorder`` / ``jitter``).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.counts: dict[str, int] = {
            "drop": 0, "duplicate": 0, "reorder": 0, "jitter": 0}

    def install(self, network) -> "FaultInjector":
        """Wire this injector into a network and schedule the plan's crash
        windows; returns self for chaining."""
        for window in self.plan.crash_windows:
            network.schedule_crash(window.peer, window.start, window.end)
        network.fault_injector = self
        return self

    def plan_delivery(self, sender: str, recipient: str, kind: str,
                      latency: float) -> list[float]:
        """Decide the fate of one message.

        Returns the list of effective latencies to deliver copies at —
        empty when the message is dropped, two entries when duplicated.
        """
        effective = latency
        duplicated = False
        for rule in self.plan.rules:
            if not rule.matches(sender, recipient, kind):
                continue
            if rule.drop and self._rng.random() < rule.drop:
                self.counts["drop"] += 1
                return []
            if rule.duplicate and self._rng.random() < rule.duplicate:
                self.counts["duplicate"] += 1
                duplicated = True
            if rule.reorder and self._rng.random() < rule.reorder:
                self.counts["reorder"] += 1
                effective += latency * self.plan.reorder_hold
            if rule.jitter:
                extra = self._rng.uniform(0.0, rule.jitter)
                if extra:
                    self.counts["jitter"] += 1
                    effective += extra
        deliveries = [effective]
        if duplicated:
            # The copy takes its own (slightly lagged) path.
            deliveries.append(effective + 0.5 + self._rng.uniform(0.0, 1.0))
        return deliveries


@dataclass(frozen=True)
class LayerFaultRule:
    """One policy-plane fault clause: a mediation layer's backend times out.

    Where :class:`FaultRule` attacks messages on the wire, this attacks the
    *in-process* calls the authorisation stack makes into its layer
    backends (the OS check, the middleware catalogue, the trust-management
    checker) — the failure mode circuit breakers exist for.

    :param layer: restrict to one layer by name (``"TRUST_MANAGEMENT"``,
        ``"APPLICATION"``...), or None for any.
    :param fail: probability a consulted check times out.
    :param start: simulated time the fault window opens.
    :param end: simulated time it closes (default: never).
    """

    layer: str | None = None
    fail: float = 0.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_probability("fail", self.fail)
        if self.start < 0:
            raise FaultPlanError("layer fault window cannot start before "
                                 "epoch zero")
        if self.end < self.start:
            raise FaultPlanError(
                f"layer fault window ends ({self.end}) before it starts "
                f"({self.start})")

    def matches(self, layer: str, now: float) -> bool:
        """True if this rule applies to a check of ``layer`` at ``now``."""
        if self.layer is not None and self.layer != layer:
            return False
        return self.start <= now < self.end


@dataclass(frozen=True)
class LayerFaultPlan:
    """A seeded schedule of mediation-layer backend failures.

    :param seed: RNG seed; equal plans replay identical failures.
    :param rules: fault clauses, first match per check decides.
    """

    seed: int = 0
    rules: tuple[LayerFaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def chaos(cls, seed: int, layers: tuple[str, ...],
              max_fail: float = 0.4, window: float = 20.0) -> "LayerFaultPlan":
        """Derive a bounded-window layer outage from one seed: one of
        ``layers`` flakes with a seeded probability during ``[start,
        start + duration)``."""
        rng = random.Random(seed)
        layer = layers[seed % len(layers)]
        start = rng.uniform(1.0, 5.0)
        duration = rng.uniform(window / 2, window)
        return cls(seed=seed, rules=(LayerFaultRule(
            layer=layer, fail=rng.uniform(0.2, max_fail),
            start=start, end=start + duration),))


class LayerFaultInjector:
    """Executes a :class:`LayerFaultPlan` against an authorisation stack.

    The stack consults :meth:`check` immediately before invoking each
    layer; a fired fault raises
    :class:`~repro.errors.LayerTimeoutError`, which the stack's health
    machinery converts into an ERROR layer decision (never a raw
    traceback).

    :ivar counts: layer name -> injected timeouts.
    """

    def __init__(self, plan: LayerFaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.counts: dict[str, int] = {}

    def check(self, layer: str, now: float) -> None:
        """Raise :class:`~repro.errors.LayerTimeoutError` if the plan fails
        this layer call; otherwise return normally."""
        for rule in self.plan.rules:
            if not rule.matches(layer, now):
                continue
            if rule.fail and self._rng.random() < rule.fail:
                self.counts[layer] = self.counts.get(layer, 0) + 1
                raise LayerTimeoutError(
                    f"injected timeout in layer {layer} at t={now}")
            return


@dataclass(frozen=True)
class CrashPoint:
    """One scheduled process death: die at the ``hit``-th visit of a store
    write site.

    Where :class:`CrashWindow` takes a *peer* off the simulated network for
    an interval, a crash point kills the *process itself* between two bytes
    reaching the durable medium — the failure mode write-ahead logging
    exists for.  Sites are the instrumented writes of
    :mod:`repro.store` (``wal.append.header``, ``snapshot.tmp_partial``,
    ``wal.compact.tmp``, ...).

    :param site: the write-site name to die at.
    :param hit: which visit of the site fires (1-based).
    """

    site: str
    hit: int = 1

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultPlanError("a crash point needs a site name")
        if self.hit < 1:
            raise FaultPlanError(
                f"crash point hit counts are 1-based, got {self.hit}")


@dataclass(frozen=True)
class CrashPointPlan:
    """A seeded schedule of process deaths at store write sites.

    :param seed: identifies the schedule (recorded in reports; the plan
        itself is deterministic by construction).
    :param points: the deaths; each fires at most once.
    """

    seed: int = 0
    points: tuple[CrashPoint, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))

    @classmethod
    def kill_at(cls, site: str, hit: int = 1, seed: int = 0,
                ) -> "CrashPointPlan":
        """The single-death plan the kill-at-every-write-site sweep runs."""
        return cls(seed=seed, points=(CrashPoint(site, hit),))

    @classmethod
    def seeded_hit(cls, seed: int, site: str, visits: int,
                   ) -> "CrashPointPlan":
        """Kill at a seeded visit of ``site``, drawn uniformly from the
        ``visits`` the profiling run observed."""
        if visits < 1:
            raise FaultPlanError(
                f"site {site!r} was never visited; cannot place a crash")
        rng = random.Random(f"{seed}:{site}")
        return cls.kill_at(site, rng.randint(1, visits), seed=seed)


class CrashPointInjector:
    """Executes a :class:`CrashPointPlan` against the durable store.

    The store calls :meth:`reached` at every write site (it is the store's
    ``crash`` hook); when a planned (site, hit) matches, the injector
    raises :class:`~repro.errors.SimulatedCrashError` — the process dies
    with whatever bytes had reached the medium.  With no plan (or after
    firing) the injector only counts, which is how the sweep profiles the
    write sites of a workload.

    :ivar counts: site -> visits observed.
    :ivar fired: the :class:`CrashPoint` that killed the process, if any.
    """

    def __init__(self, plan: CrashPointPlan | None = None) -> None:
        self.plan = plan or CrashPointPlan()
        self.counts: dict[str, int] = {}
        self.fired: CrashPoint | None = None

    def reached(self, site: str) -> None:
        """The store's crash hook: count the visit, die if planned."""
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        if self.fired is not None:
            return
        for point in self.plan.points:
            if point.site == site and point.hit == count:
                self.fired = point
                raise SimulatedCrashError(site, count)

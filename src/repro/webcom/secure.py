"""Secure WebCom: the Figure-3 architecture.

"The WebCom master authenticates its clients and uses their credentials to
determine what operations it may schedule to them.  Each WebCom client has a
trust management architecture ... authenticating the master and using the
master's credentials to determine whether it is authorised to schedule the
operation."

:class:`SecureWebComEnvironment` owns the keystore (the "System PKI" box),
one KeyNote session for the master side and one per client, and builds the
hooks the plain master/client classes accept:

- the master's *scheduler filter* keeps only candidate clients whose keys
  the master's trust-management state authorises for the operation (and the
  IDE placement, if any);
- each client's *authoriser* admits only masters its own policy trusts.
"""

from __future__ import annotations

from typing import Mapping

from repro.crypto.keystore import Keystore
from repro.keynote.api import KeyNoteSession
from repro.obs import Observability
from repro.translate.common import (
    ATTR_APP_DOMAIN,
    ATTR_DOMAIN,
    ATTR_ROLE,
    WEBCOM_APP_DOMAIN,
)
from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog
from repro.webcom.graph import GraphNode
from repro.webcom.node import ClientInfo
from repro.webcom.stack import AuthorisationStack, MediationRequest

ATTR_OPERATION = "op"


class SecureWebComEnvironment:
    """Keys, trust-management sessions and mediation hooks for one WebCom
    deployment.

    :param obs: optional :class:`~repro.obs.Observability`; when given, the
        environment's clock is the observability clock and every session,
        stack and hook built here traces into it.
    """

    def __init__(self, audit: AuditLog | None = None,
                 clock: SimulatedClock | None = None,
                 obs: Observability | None = None) -> None:
        self.keystore = Keystore()
        self.audit = audit or AuditLog()
        self.clock = clock or (obs.clock if obs is not None
                               else SimulatedClock())
        self.obs = obs
        self.master_session = KeyNoteSession(
            keystore=self.keystore, audit=self.audit, clock=self.clock,
            obs=self.obs)
        self._client_sessions: dict[str, KeyNoteSession] = {}

    # -- key management -------------------------------------------------------

    def create_key(self, name: str) -> str:
        """Create (or fetch) a named key; returns the name."""
        self.keystore.create(name)
        return name

    # -- sessions ------------------------------------------------------------------

    def client_session(self, client_id: str) -> KeyNoteSession:
        """The (lazily created) trust-management session of one client."""
        if client_id not in self._client_sessions:
            self._client_sessions[client_id] = KeyNoteSession(
                keystore=self.keystore, audit=self.audit, clock=self.clock,
                obs=self.obs)
        return self._client_sessions[client_id]

    # -- policy helpers ----------------------------------------------------------------

    def trust_clients_for_operations(self, client_keys: list[str],
                                     operations: list[str]) -> None:
        """Master-side policy: the listed client keys may be scheduled the
        listed operations."""
        keys = " || ".join(f'"{k}"' for k in sorted(client_keys))
        ops = " || ".join(f'{ATTR_OPERATION}=="{op}"'
                          for op in sorted(operations))
        self.master_session.add_policy(
            f"Authorizer: POLICY\n"
            f"Licensees: {keys}\n"
            f"Conditions: {ATTR_APP_DOMAIN}==\"{WEBCOM_APP_DOMAIN}\" "
            f"&& ({ops});")

    def client_trusts_master(self, client_id: str, master_key: str,
                             operations: "list[str] | None" = None) -> None:
        """Client-side policy: this client accepts scheduling requests from
        ``master_key`` (optionally only for some operations)."""
        conditions = f'{ATTR_APP_DOMAIN}=="{WEBCOM_APP_DOMAIN}"'
        if operations:
            ops = " || ".join(f'{ATTR_OPERATION}=="{op}"'
                              for op in sorted(operations))
            conditions += f" && ({ops})"
        self.client_session(client_id).add_policy(
            f"Authorizer: POLICY\n"
            f"Licensees: \"{master_key}\"\n"
            f"Conditions: {conditions};")

    # -- mediation hooks -------------------------------------------------------------------

    def master_filter(self, attribute_extractor=None):
        """The master's scheduler filter: TM check per candidate client.

        When the node carries a :class:`~repro.webcom.ide.PlacementSpec`, the
        query also asserts the placement's Domain/Role (so only clients whose
        keys hold the role membership survive) and, when the spec names a
        user, candidates running as other users are excluded.

        :param attribute_extractor: optional hook ``(node, context) -> dict``
            contributing extra action attributes — this implements the
            paper's stated future work of mediating on "the environment of
            the component, its inputs, and so forth".  Extracted attributes
            cannot override the built-in ones (op/app_domain/placement).
        """

        def filter_(node: GraphNode, context: Mapping,
                    candidates: list[ClientInfo]) -> list[ClientInfo]:
            placement = context.get("placement")
            authorised: list[ClientInfo] = []
            for info in candidates:
                if placement is not None:
                    user = getattr(placement, "user", None)
                    if user is not None and info.user != user:
                        continue
                attributes = {}
                if attribute_extractor is not None:
                    attributes.update(attribute_extractor(node, context))
                attributes[ATTR_APP_DOMAIN] = WEBCOM_APP_DOMAIN
                attributes[ATTR_OPERATION] = node.operator_name
                if placement is not None:
                    attributes[ATTR_DOMAIN] = placement.domain
                    attributes[ATTR_ROLE] = placement.role
                if self.master_session.query(attributes, [info.key_name]):
                    authorised.append(info)
            return authorised

        return filter_

    def client_authoriser(self, client_id: str):
        """The client's authoriser: TM check on the requesting master."""

        session = self.client_session(client_id)

        def authorise(master_key: str, op: str, _context: Mapping) -> bool:
            if not master_key:
                return False
            attributes = {
                ATTR_APP_DOMAIN: WEBCOM_APP_DOMAIN,
                ATTR_OPERATION: op,
            }
            return bool(session.query(attributes, [master_key]))

        return authorise

    def client_stack(self, client_id: str,
                     cache_ttl: "float | None" = None,
                     breaker_threshold: int = 3,
                     breaker_cooldown: float = 30.0,
                     layer_faults=None) -> AuthorisationStack:
        """An :class:`AuthorisationStack` for one client with L2 plugged.

        The client's KeyNote session becomes the stack's trust-management
        layer; callers may plug further layers (OS, middleware, application
        predicates) onto the returned stack before wiring it into
        :meth:`stack_authoriser`.

        :param cache_ttl: enable the stack's mediation cache with this TTL
            (simulated seconds); None leaves every mediation uncached.
        :param breaker_threshold: consecutive failures that trip a layer's
            circuit breaker.
        :param breaker_cooldown: simulated seconds a breaker stays open.
        :param layer_faults: optional
            :class:`~repro.webcom.faults.LayerFaultInjector` so chaos
            schedules can time out the client's mediation layers.
        """
        stack = AuthorisationStack(audit=self.audit, clock=self.clock,
                                   obs=self.obs, cache_ttl=cache_ttl,
                                   breaker_threshold=breaker_threshold,
                                   breaker_cooldown=breaker_cooldown,
                                   layer_faults=layer_faults)
        stack.plug_trust_management(self.client_session(client_id))
        return stack

    def stack_authoriser(self, client_id: str,
                         stack: AuthorisationStack | None = None,
                         user: str | None = None,
                         cache_ttl: "float | None" = None):
        """A client authoriser that mediates through a full L0-L3 stack.

        This is the Figure-10 composition of the Figure-3 handshake: the
        scheduling request a master sends becomes a
        :class:`MediationRequest` (the master's key as the TM principal)
        and must pass *every* plugged layer of the client's stack, with a
        per-layer decision trace.
        """

        mediation_stack = stack if stack is not None else self.client_stack(
            client_id, cache_ttl=cache_ttl)

        def authorise(master_key: str, op: str, _context: Mapping):
            if not master_key:
                return False
            request = MediationRequest(
                user=user or client_id, user_key=master_key,
                object_type=WEBCOM_APP_DOMAIN, operation=op,
                attributes={ATTR_APP_DOMAIN: WEBCOM_APP_DOMAIN})
            # The full StackDecision (truthy on allow) is returned so the
            # client can surface stale / degraded flags in its reply.
            return mediation_stack.mediate(request)

        return authorise

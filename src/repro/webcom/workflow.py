"""Application-level workflow security — the L3 layer of Figure 10.

"Note that the Level 3 security corresponds to mechanisms encoded within the
condensed graph that is used to coordinate the application components.  It is
used to implement application level workflow security, for example [12]."

The paper defers L3 to [12] (Foley & Morrison, *Computational paradigms and
protection*); this module implements its core mechanism: security constraints
attached to the condensed graph itself and enforced by the scheduler —

- **separation of duty**: two graph nodes must not execute under the same
  user (the classic initiate/approve split);
- **binding of duty**: a set of nodes must all execute under the same user;
- **node restrictions**: a node may only run as one of an allowed user set.

A :class:`WorkflowPolicy` compiles into a scheduler filter that composes with
Secure WebCom's trust-management filter, so L3 and L2 mediate together just
as the stack diagram shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import AuthorisationError
from repro.webcom.graph import GraphNode
from repro.webcom.node import ClientInfo

SchedulerFilter = Callable[[GraphNode, Mapping, list], list]


@dataclass(frozen=True)
class SeparationOfDuty:
    """No two of ``nodes`` may execute under the same user."""

    name: str
    nodes: frozenset[str]

    def permits(self, node_id: str, user: str,
                history: Mapping[str, str]) -> bool:
        if node_id not in self.nodes:
            return True
        return all(history.get(other) != user
                   for other in self.nodes if other != node_id)


@dataclass(frozen=True)
class BindingOfDuty:
    """All of ``nodes`` must execute under the same user."""

    name: str
    nodes: frozenset[str]

    def permits(self, node_id: str, user: str,
                history: Mapping[str, str]) -> bool:
        if node_id not in self.nodes:
            return True
        return all(history[other] == user
                   for other in self.nodes if other in history)


@dataclass(frozen=True)
class UserRestriction:
    """``node`` may only execute as one of ``allowed_users``."""

    name: str
    node: str
    allowed_users: frozenset[str]

    def permits(self, node_id: str, user: str,
                _history: Mapping[str, str]) -> bool:
        if node_id != self.node:
            return True
        return user in self.allowed_users


Constraint = "SeparationOfDuty | BindingOfDuty | UserRestriction"


@dataclass
class WorkflowPolicy:
    """The L3 policy: constraints encoded alongside the condensed graph."""

    constraints: list = field(default_factory=list)

    def separate(self, name: str, *nodes: str) -> "WorkflowPolicy":
        """Add a separation-of-duty constraint over ``nodes``."""
        if len(nodes) < 2:
            raise ValueError("separation of duty needs at least two nodes")
        self.constraints.append(SeparationOfDuty(name, frozenset(nodes)))
        return self

    def bind(self, name: str, *nodes: str) -> "WorkflowPolicy":
        """Add a binding-of-duty constraint over ``nodes``."""
        if len(nodes) < 2:
            raise ValueError("binding of duty needs at least two nodes")
        self.constraints.append(BindingOfDuty(name, frozenset(nodes)))
        return self

    def restrict(self, name: str, node: str,
                 *allowed_users: str) -> "WorkflowPolicy":
        """Restrict ``node`` to the given users."""
        if not allowed_users:
            raise ValueError("a user restriction needs at least one user")
        self.constraints.append(
            UserRestriction(name, node, frozenset(allowed_users)))
        return self

    def permits(self, node_id: str, user: str,
                history: Mapping[str, str]) -> bool:
        """Would executing ``node_id`` as ``user`` satisfy every
        constraint, given the users who executed earlier nodes?"""
        return all(c.permits(node_id, user, history)
                   for c in self.constraints)

    def violations(self, history: Mapping[str, str]) -> list[str]:
        """Constraint names violated by a *complete* execution history."""
        violated = []
        for constraint in self.constraints:
            for node_id, user in history.items():
                others = {k: v for k, v in history.items() if k != node_id}
                if not constraint.permits(node_id, user, others):
                    violated.append(constraint.name)
                    break
        return violated


class WorkflowGuard:
    """Compiles a :class:`WorkflowPolicy` into scheduler machinery.

    Use :meth:`filter` as (part of) the master's ``scheduler_filter`` and
    :meth:`record` after each placement; :meth:`verify` re-checks the whole
    history at the end (defence in depth against filter bypasses).
    """

    def __init__(self, policy: WorkflowPolicy) -> None:
        self.policy = policy
        self.history: dict[str, str] = {}

    def filter(self, node: GraphNode, _context: Mapping,
               candidates: list[ClientInfo]) -> list[ClientInfo]:
        """Keep only candidates whose user satisfies the L3 constraints."""
        return [info for info in candidates
                if self.policy.permits(node.node_id, info.user, self.history)]

    def record(self, node_id: str, user: str) -> None:
        """Record who executed a node (call from the schedule log)."""
        self.history[node_id] = user

    def verify(self) -> None:
        """Check the completed history.

        :raises AuthorisationError: if any constraint was violated.
        """
        violated = self.policy.violations(self.history)
        if violated:
            raise AuthorisationError(
                f"workflow constraints violated: {violated}")

    def reset(self) -> None:
        """Clear the history for a fresh run."""
        self.history.clear()


def compose_filters(*filters: SchedulerFilter) -> SchedulerFilter:
    """Chain scheduler filters: each narrows the previous one's survivors —
    this is how L3 (workflow) composes with L2 (trust management)."""

    def combined(node: GraphNode, context: Mapping,
                 candidates: list) -> list:
        for fltr in filters:
            candidates = fltr(node, context, candidates)
            if not candidates:
                break
        return candidates

    return combined


def run_guarded(master, guard: WorkflowGuard, graph, inputs,
                client_users: Mapping[str, str] | None = None):
    """Run a graph with L3 recording + final verification.

    :param client_users: client id -> user override; defaults to the users
        the master learned at registration.
    """
    users = dict(client_users or
                 {cid: info.user for cid, info in master.clients.items()})
    before = len(master.schedule_log)

    original_execute = master.execute_remote

    def recording_execute(node, args, context=None):
        result = original_execute(node, args, context)
        node_id, client_id = master.schedule_log[-1]
        guard.record(node_id, users.get(client_id, client_id))
        return result

    master.execute_remote = recording_execute
    try:
        result = master.run_graph(graph, inputs)
    finally:
        master.execute_remote = original_execute
    assert len(master.schedule_log) > before
    guard.verify()
    return result

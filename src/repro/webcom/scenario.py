"""A fully observed Figure-3 scenario, end to end.

One condensed-graph pipeline scheduled by a Secure WebCom master to
stack-mediated clients over the simulated network, with the whole
observability fabric wired in: the master's ``run_graph`` opens a root span
whose correlation id rides in every execute/result payload, so the schedule
decision, the network flights, the client-side L0-L3 stack mediation (with
its per-layer spans and TM query) and any fault-injected retries land in one
correlated trace.  ``repro trace`` / ``repro metrics`` and the CI perf
artifact are all thin wrappers over :func:`run_observed_scenario`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.keystore import SIGNATURE_CACHE
from repro.middleware.ejb import EJBServer
from repro.obs import Observability
from repro.rbac.diff import PolicyDelta
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy
from repro.translate.propagate import (PropagationEngine, ReconcileReport,
                                       VersionedUpdate)
from repro.webcom.faults import (FaultInjector, FaultPlan, FaultRule,
                                 LayerFaultInjector, LayerFaultPlan)
from repro.webcom.graph import CondensedGraph
from repro.webcom.health import DegradedMode
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment
from repro.webcom.stack import Layer

#: the operations every scenario client advertises
SCENARIO_OPS = {"stage": lambda v: v + 1,
                "combine": lambda *values: sum(values)}


@dataclass
class ObservedRun:
    """Everything one observed scenario run produced."""

    obs: Observability
    env: SecureWebComEnvironment
    master: WebComMaster
    result: object
    correlation_id: str | None


def pipeline_graph(depth: int) -> CondensedGraph:
    """A linear ``stage -> stage -> ...`` pipeline of the given depth."""
    graph = CondensedGraph(f"pipeline-{depth}")
    previous = None
    for i in range(depth):
        node = f"n{i:03d}"
        graph.add_node(node, operator="stage", arity=1)
        if previous is not None:
            graph.connect(previous, node, 0)
        previous = node
    graph.entry("x", "n000", 0)
    assert previous is not None
    graph.set_exit(previous)
    return graph


def fan_graph(width: int) -> CondensedGraph:
    """A wide fan: ``width`` parallel ``stage`` nodes feeding one
    ``combine``.

    The whole fan is fireable at once, so it is the shape where batched
    scheduling pays: one wavefront of ``width`` nodes travels in one
    ``execute_batch`` flight per destination client instead of ``width``
    round trips.
    """
    graph = CondensedGraph(f"fan-{width}")
    graph.add_node("combine", operator="combine", arity=width)
    for i in range(width):
        node = f"s{i:03d}"
        graph.add_node(node, operator="stage", arity=1)
        graph.entry("x", node, 0)
        graph.connect(node, "combine", i)
    graph.set_exit("combine")
    return graph


def run_observed_scenario(depth: int = 4, n_clients: int = 2,
                          faults: bool = False, seed: int = 7,
                          drop: float = 0.3, fan: int | None = None,
                          batch: bool = False,
                          stack_ttl: float | None = None) -> ObservedRun:
    """Run the observed secure pipeline and return its artefacts.

    :param depth: pipeline length (one master.schedule span per stage).
    :param n_clients: stack-mediated clients in the pool.
    :param faults: install a seeded fault plan that drops ``execute`` and
        ``result`` messages (batched and single) with probability ``drop``,
        forcing same-request retries that stay inside the run's correlation.
    :param seed: fault-plan seed (ignored without ``faults``).
    :param drop: per-message drop probability under ``faults``.
    :param fan: run a width-``fan`` :func:`fan_graph` instead of the linear
        pipeline (``depth`` is ignored).
    :param batch: schedule wavefronts through the master's batched path.
    :param stack_ttl: enable each client stack's mediation cache with this
        TTL in simulated seconds (repeat requests surface as
        ``stack.cache.hit`` in the metrics); None leaves stacks uncached.
    """
    obs = Observability()
    SIGNATURE_CACHE.bind_metrics(obs.metrics)
    env = SecureWebComEnvironment(obs=obs)
    env.audit.bind_metrics(obs.metrics)
    network = SimulatedNetwork(clock=env.clock, obs=obs)
    env.create_key("Kmaster")
    master = WebComMaster("master", network, key_name="Kmaster",
                          scheduler_filter=env.master_filter(),
                          audit=env.audit, obs=obs)
    client_keys = []
    for i in range(n_clients):
        client_id = f"c{i}"
        key = env.create_key(f"Kc{i}")
        client_keys.append(key)
        client = WebComClient(
            client_id, network, SCENARIO_OPS, key_name=key,
            user=f"user{i}",
            authoriser=env.stack_authoriser(client_id, user=f"user{i}",
                                            cache_ttl=stack_ttl),
            audit=env.audit, obs=obs)
        env.client_trusts_master(client_id, "Kmaster")
        client.register_with("master")
    network.run_until_quiet()
    env.trust_clients_for_operations(client_keys, list(SCENARIO_OPS))
    if faults:
        plan = FaultPlan(seed=seed, rules=(
            FaultRule(kind="execute", drop=drop),
            FaultRule(kind="result", drop=drop),
            FaultRule(kind="execute_batch", drop=drop),
            FaultRule(kind="result_batch", drop=drop),
        ))
        FaultInjector(plan).install(network)
    graph = fan_graph(fan) if fan is not None else pipeline_graph(depth)
    result = master.run_graph(graph, {"x": 0}, batch=batch)
    return ObservedRun(obs=obs, env=env, master=master, result=result,
                       correlation_id=master.last_correlation_id)


# ---------------------------------------------------------------------------
# Policy-plane chaos: degraded mediation + partition/reconcile
# ---------------------------------------------------------------------------

#: RBAC domains of the two chaos replicas (EJB domains are container
#: addresses of the form ``host:server/jndi``)
CHAOS_DOMAIN_A = "hostA:ejb/DomA"
CHAOS_DOMAIN_B = "hostB:ejb/DomB"


@dataclass
class PolicyChaosRun:
    """Everything one policy-plane chaos run produced."""

    seed: int
    obs: Observability
    env: SecureWebComEnvironment
    engine: PropagationEngine
    #: per-mediation records: {t, allowed, stale, degraded}
    decisions: list[dict] = field(default_factory=list)
    reconcile_report: ReconcileReport | None = None
    stack_health: dict = field(default_factory=dict)
    propagation_health: dict = field(default_factory=dict)
    digests_match: bool = False
    injected_timeouts: int = 0
    redelivered: int = 0

    @property
    def converged(self) -> bool:
        """Did the run end healthy: replicas byte-identical after heal, and
        no degraded decision allowed silently (an allowed degraded decision
        must be disclosed as stale, or come from an explicit fail-open
        layer)?"""
        disclosed = all(d["stale"] or d["fail_open"]
                        for d in self.decisions
                        if d["degraded"] and d["allowed"])
        return (self.digests_match
                and self.reconcile_report is not None
                and self.reconcile_report.converged
                and disclosed)

    def summary(self) -> dict:
        """JSON-able report for ``repro health`` and the CI artifact."""
        degraded = [d for d in self.decisions if d["degraded"]]
        return {
            "seed": self.seed,
            "mediations": len(self.decisions),
            "degraded_mediations": len(degraded),
            "denied_while_degraded": sum(1 for d in degraded
                                         if not d["allowed"]),
            "stale_served": self.stack_health.get("stale_served", 0),
            "injected_timeouts": self.injected_timeouts,
            "breakers": {
                name: {"state": snap["state"],
                       "transitions": len(snap["transitions"])}
                for name, snap in self.stack_health.get("breakers",
                                                        {}).items()},
            "propagation": self.propagation_health,
            "reconcile": (self.reconcile_report.summary()
                          if self.reconcile_report is not None else None),
            "redelivered": self.redelivered,
            "digests_match": self.digests_match,
            "converged": self.converged,
        }


def run_policy_chaos_scenario(seed: int = 0, rounds: int = 30,
                              updates: int = 6) -> PolicyChaosRun:
    """One seeded policy-plane chaos run: degraded mediation + anti-entropy.

    Two coupled experiments share one clock and observability fabric:

    **Degraded mediation.**  A client authorisation stack (TM fail-closed,
    application-layer fail-static) is attacked by a seeded
    :class:`~repro.webcom.faults.LayerFaultPlan` that times out one layer
    during a bounded window.  The same request is mediated every simulated
    second for ``rounds`` seconds; breakers trip, cool down and half-open
    probe on the shared clock, and every decision's ``stale`` / ``degraded``
    flags are recorded.

    **Partition and reconcile.**  A :class:`PropagationEngine` pushes
    ``updates`` seeded policy deltas to two EJB replicas while one of them
    is partitioned away and deliveries to the other are flaky (seeded
    ``delivery_fault``, retried).  One logged update is also re-delivered
    on purpose — the applied-version vector must swallow the duplicate.
    After the partition heals, :meth:`~PropagationEngine.reconcile` must
    leave both replicas byte-identical with the authoritative slice.
    """
    obs = Observability()
    SIGNATURE_CACHE.bind_metrics(obs.metrics)
    env = SecureWebComEnvironment(obs=obs)
    env.audit.bind_metrics(obs.metrics)
    env.create_key("Kmaster")
    env.client_trusts_master("c0", "Kmaster")

    layer_faults = LayerFaultInjector(LayerFaultPlan.chaos(
        seed, layers=("TRUST_MANAGEMENT", "APPLICATION"),
        window=float(rounds) / 2))
    stack = env.client_stack("c0", breaker_threshold=2,
                             breaker_cooldown=4.0,
                             layer_faults=layer_faults)
    stack.plug_application(lambda request: True)
    stack.set_degraded_mode(Layer.TRUST_MANAGEMENT, DegradedMode.FAIL_CLOSED)
    stack.set_degraded_mode(Layer.APPLICATION, DegradedMode.FAIL_STATIC)
    authorise = env.stack_authoriser("c0", stack=stack, user="user0")

    run = PolicyChaosRun(seed=seed, obs=obs, env=env,
                         engine=_chaos_engine(seed, env, obs))
    # Warm-up mediation before any fault window opens (plans start at
    # t >= 1): seeds the last-known-good store fail-static serves from.
    assert bool(authorise("Kmaster", "stage", {}))
    for _ in range(rounds):
        env.clock.advance(1.0)
        decision = authorise("Kmaster", "stage", {})
        run.decisions.append({
            "t": env.clock.now(),
            "allowed": bool(decision),
            "stale": bool(getattr(decision, "stale", False)),
            "degraded": [layer.name for layer
                         in getattr(decision, "degraded", ())],
            "fail_open": any(
                stack.degraded_mode(layer) is DegradedMode.FAIL_OPEN
                for layer in getattr(decision, "degraded", ())),
        })
    run.injected_timeouts = sum(layer_faults.counts.values())
    run.stack_health = stack.health_snapshot()

    run.reconcile_report, run.redelivered = _chaos_propagation(
        seed, run.engine, updates)
    run.propagation_health = run.engine.health_snapshot()
    run.digests_match = all(
        run.engine.replica_digest(name) == run.engine.expected_digest(name)
        for name in ("hostA:ejb", "hostB:ejb"))
    return run


def _chaos_engine(seed: int, env: SecureWebComEnvironment,
                  obs: Observability) -> PropagationEngine:
    """Two EJB replicas under an authoritative two-domain policy, with a
    seeded flaky delivery hook."""
    policy = RBACPolicy("global")
    for domain in (CHAOS_DOMAIN_A, CHAOS_DOMAIN_B):
        policy.add_grant(Grant(domain, "Staff", "Report", "read"))
        policy.add_assignment(Assignment("alice", domain, "Staff"))
    rng = random.Random(seed * 7919 + 13)
    engine = PropagationEngine(
        policy, audit=env.audit, clock=env.clock, obs=obs,
        delivery_fault=lambda _name, _version, _attempt:
            rng.random() < 0.25)
    engine.register(EJBServer("hostA", "ejb"), {CHAOS_DOMAIN_A})
    engine.register(EJBServer("hostB", "ejb"), {CHAOS_DOMAIN_B})
    engine.push_all()
    return engine


def _chaos_propagation(seed: int, engine: PropagationEngine,
                       updates: int) -> tuple[ReconcileReport, int]:
    """Partition hostB, stream seeded deltas (one deliberately
    re-delivered), heal, reconcile."""
    rng = random.Random(seed * 104729 + 7)
    engine.set_unreachable("hostB:ejb")
    for i in range(updates):
        domain = rng.choice((CHAOS_DOMAIN_A, CHAOS_DOMAIN_B))
        if rng.random() < 0.5:
            delta = PolicyDelta(added_grants=frozenset({
                Grant(domain, "Staff", f"Obj{i}", "read")}))
        else:
            delta = PolicyDelta(added_assignments=frozenset({
                Assignment(f"user{i}", domain, "Staff")}))
        engine.apply_delta(delta, update_id=f"chaos-{seed}-{i}")
    redelivered = 0
    if engine.update_log:
        # Duplicate delivery (a flaky network re-sending an applied
        # update): the version vector must make it a no-op.
        duplicate: VersionedUpdate = rng.choice(engine.update_log)
        engine.deliver_update("hostA:ejb", duplicate)
        redelivered = 1
    engine.set_reachable("hostB:ejb")
    return engine.reconcile(), redelivered

"""A fully observed Figure-3 scenario, end to end.

One condensed-graph pipeline scheduled by a Secure WebCom master to
stack-mediated clients over the simulated network, with the whole
observability fabric wired in: the master's ``run_graph`` opens a root span
whose correlation id rides in every execute/result payload, so the schedule
decision, the network flights, the client-side L0-L3 stack mediation (with
its per-layer spans and TM query) and any fault-injected retries land in one
correlated trace.  ``repro trace`` / ``repro metrics`` and the CI perf
artifact are all thin wrappers over :func:`run_observed_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keystore import SIGNATURE_CACHE
from repro.obs import Observability
from repro.webcom.faults import FaultInjector, FaultPlan, FaultRule
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster
from repro.webcom.secure import SecureWebComEnvironment

#: the operations every scenario client advertises
SCENARIO_OPS = {"stage": lambda v: v + 1,
                "combine": lambda *values: sum(values)}


@dataclass
class ObservedRun:
    """Everything one observed scenario run produced."""

    obs: Observability
    env: SecureWebComEnvironment
    master: WebComMaster
    result: object
    correlation_id: str | None


def pipeline_graph(depth: int) -> CondensedGraph:
    """A linear ``stage -> stage -> ...`` pipeline of the given depth."""
    graph = CondensedGraph(f"pipeline-{depth}")
    previous = None
    for i in range(depth):
        node = f"n{i:03d}"
        graph.add_node(node, operator="stage", arity=1)
        if previous is not None:
            graph.connect(previous, node, 0)
        previous = node
    graph.entry("x", "n000", 0)
    assert previous is not None
    graph.set_exit(previous)
    return graph


def fan_graph(width: int) -> CondensedGraph:
    """A wide fan: ``width`` parallel ``stage`` nodes feeding one
    ``combine``.

    The whole fan is fireable at once, so it is the shape where batched
    scheduling pays: one wavefront of ``width`` nodes travels in one
    ``execute_batch`` flight per destination client instead of ``width``
    round trips.
    """
    graph = CondensedGraph(f"fan-{width}")
    graph.add_node("combine", operator="combine", arity=width)
    for i in range(width):
        node = f"s{i:03d}"
        graph.add_node(node, operator="stage", arity=1)
        graph.entry("x", node, 0)
        graph.connect(node, "combine", i)
    graph.set_exit("combine")
    return graph


def run_observed_scenario(depth: int = 4, n_clients: int = 2,
                          faults: bool = False, seed: int = 7,
                          drop: float = 0.3, fan: int | None = None,
                          batch: bool = False,
                          stack_ttl: float | None = None) -> ObservedRun:
    """Run the observed secure pipeline and return its artefacts.

    :param depth: pipeline length (one master.schedule span per stage).
    :param n_clients: stack-mediated clients in the pool.
    :param faults: install a seeded fault plan that drops ``execute`` and
        ``result`` messages (batched and single) with probability ``drop``,
        forcing same-request retries that stay inside the run's correlation.
    :param seed: fault-plan seed (ignored without ``faults``).
    :param drop: per-message drop probability under ``faults``.
    :param fan: run a width-``fan`` :func:`fan_graph` instead of the linear
        pipeline (``depth`` is ignored).
    :param batch: schedule wavefronts through the master's batched path.
    :param stack_ttl: enable each client stack's mediation cache with this
        TTL in simulated seconds (repeat requests surface as
        ``stack.cache.hit`` in the metrics); None leaves stacks uncached.
    """
    obs = Observability()
    SIGNATURE_CACHE.bind_metrics(obs.metrics)
    env = SecureWebComEnvironment(obs=obs)
    env.audit.bind_metrics(obs.metrics)
    network = SimulatedNetwork(clock=env.clock, obs=obs)
    env.create_key("Kmaster")
    master = WebComMaster("master", network, key_name="Kmaster",
                          scheduler_filter=env.master_filter(),
                          audit=env.audit, obs=obs)
    client_keys = []
    for i in range(n_clients):
        client_id = f"c{i}"
        key = env.create_key(f"Kc{i}")
        client_keys.append(key)
        client = WebComClient(
            client_id, network, SCENARIO_OPS, key_name=key,
            user=f"user{i}",
            authoriser=env.stack_authoriser(client_id, user=f"user{i}",
                                            cache_ttl=stack_ttl),
            audit=env.audit, obs=obs)
        env.client_trusts_master(client_id, "Kmaster")
        client.register_with("master")
    network.run_until_quiet()
    env.trust_clients_for_operations(client_keys, list(SCENARIO_OPS))
    if faults:
        plan = FaultPlan(seed=seed, rules=(
            FaultRule(kind="execute", drop=drop),
            FaultRule(kind="result", drop=drop),
            FaultRule(kind="execute_batch", drop=drop),
            FaultRule(kind="result_batch", drop=drop),
        ))
        FaultInjector(plan).install(network)
    graph = fan_graph(fan) if fan is not None else pipeline_graph(depth)
    result = master.run_graph(graph, {"x": 0}, batch=batch)
    return ObservedRun(obs=obs, env=env, master=master, result=result,
                       correlation_id=master.last_correlation_id)

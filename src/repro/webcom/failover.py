"""Master failover with checkpointed resume.

Secure WebCom is "a distributed secure and fault-tolerant architecture"; the
client side of fault tolerance (rescheduling around crashed clients) lives in
:class:`~repro.webcom.node.WebComMaster`.  This module adds the master side:
a :class:`MasterGroup` of redundant masters that clients register with, where
graph execution fails over to the next healthy master when the active one is
unreachable.

Failover is **checkpointed**: the active master records every completed node
in a :class:`GraphCheckpoint` as it fires, and a standby taking over resumes
from the last completed frontier rather than re-executing the whole graph
from its inputs.  A secured standby re-checks KeyNote authorisation for each
restored node before trusting its checkpointed result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import SchedulingError, WebComError
from repro.webcom.engine import EvaluationMode
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster


@dataclass
class GraphCheckpoint:
    """The completed frontier of one graph execution.

    Masters call :meth:`mark` as nodes fire; a resuming master reads
    :attr:`completed` to skip nodes that already ran.  Binding a durable
    store (:attr:`store`) journals each completion as a ``checkpoint.mark``
    record *before* it enters the frontier, so a standby recovering from a
    crashed master's log resumes from exactly the acknowledged frontier.
    """

    graph_name: str
    completed: dict[str, Any] = field(default_factory=dict)
    #: optional durable store (``repro.store.durable.DurableStore``)
    store: Any = None

    def mark(self, node_id: str, result: Any) -> None:
        """Record one completed node."""
        if self.store is not None:
            self.store.append("checkpoint.mark", graph=self.graph_name,
                              node_id=node_id, result=result)
        self.completed[node_id] = result

    def __len__(self) -> int:
        return len(self.completed)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-able dict (snapshot state form).

        Results must themselves be JSON-able — graph node results in this
        simulation are plain values, so the frontier round-trips exactly.
        """
        return {"graph_name": self.graph_name,
                "completed": dict(self.completed)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  store: Any = None) -> "GraphCheckpoint":
        """Inverse of :meth:`to_dict`.

        :raises WebComError: if the dict is missing fields or mistyped.
        """
        graph_name = data.get("graph_name")
        completed = data.get("completed")
        if not isinstance(graph_name, str) or not isinstance(completed, dict):
            raise WebComError(
                f"malformed checkpoint dict: {dict(data)!r}")
        return cls(graph_name=graph_name, completed=dict(completed),
                   store=store)


class MasterGroup:
    """An ordered group of redundant masters.

    :param masters: priority order; the first healthy one is active.
    :param network: used to detect crashed masters.
    :ivar last_checkpoint: the :class:`GraphCheckpoint` of the most recent
        :meth:`run_graph` call.
    """

    def __init__(self, masters: Sequence[WebComMaster],
                 network: SimulatedNetwork) -> None:
        if not masters:
            raise WebComError("a master group needs at least one master")
        self.masters = list(masters)
        self.network = network
        self.failovers: list[str] = []
        self.last_checkpoint: GraphCheckpoint | None = None

    def active_master(self) -> WebComMaster:
        """The highest-priority master that is not crashed.

        :raises WebComError: if every master is down.
        """
        for master in self.masters:
            if not self.network.is_crashed(master.master_id):
                return master
        raise WebComError("no healthy master in the group")

    def register_client(self, client: WebComClient) -> None:
        """Register a client with *every* master so a standby already knows
        the pool when it takes over."""
        for master in self.masters:
            client.register_with(master.master_id)
        self.network.run_until_quiet()

    def run_graph(self, graph: CondensedGraph, inputs: Mapping[str, Any],
                  mode: EvaluationMode = EvaluationMode.AVAILABILITY,
                  checkpoint: GraphCheckpoint | None = None) -> Any:
        """Execute a graph, failing over to the next master on loss.

        The shared checkpoint follows the graph across masters: a standby
        resumes from the nodes the failed master completed (re-checking
        their authorisation when secured) instead of restarting from the
        inputs.

        :raises SchedulingError: when no master can complete the graph.
        """
        checkpoint = checkpoint or GraphCheckpoint(graph.name)
        self.last_checkpoint = checkpoint
        last_error: Exception | None = None
        for master in self.masters:
            if self.network.is_crashed(master.master_id):
                continue
            try:
                return master.run_graph(graph, inputs, mode,
                                        checkpoint=checkpoint)
            except (SchedulingError, WebComError) as exc:
                last_error = exc
                self.failovers.append(master.master_id)
                continue
        raise SchedulingError(
            f"graph {graph.name!r} failed on every master in the group"
            ) from last_error

"""Master failover with checkpointed resume.

Secure WebCom is "a distributed secure and fault-tolerant architecture"; the
client side of fault tolerance (rescheduling around crashed clients) lives in
:class:`~repro.webcom.node.WebComMaster`.  This module adds the master side:
a :class:`MasterGroup` of redundant masters that clients register with, where
graph execution fails over to the next healthy master when the active one is
unreachable.

Failover is **checkpointed**: the active master records every completed node
in a :class:`GraphCheckpoint` as it fires, and a standby taking over resumes
from the last completed frontier rather than re-executing the whole graph
from its inputs.  A secured standby re-checks KeyNote authorisation for each
restored node before trusting its checkpointed result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import SchedulingError, WebComError
from repro.webcom.engine import EvaluationMode
from repro.webcom.graph import CondensedGraph
from repro.webcom.network import SimulatedNetwork
from repro.webcom.node import WebComClient, WebComMaster


@dataclass
class GraphCheckpoint:
    """The completed frontier of one graph execution.

    Masters call :meth:`mark` as nodes fire; a resuming master reads
    :attr:`completed` to skip nodes that already ran.
    """

    graph_name: str
    completed: dict[str, Any] = field(default_factory=dict)

    def mark(self, node_id: str, result: Any) -> None:
        """Record one completed node."""
        self.completed[node_id] = result

    def __len__(self) -> int:
        return len(self.completed)


class MasterGroup:
    """An ordered group of redundant masters.

    :param masters: priority order; the first healthy one is active.
    :param network: used to detect crashed masters.
    :ivar last_checkpoint: the :class:`GraphCheckpoint` of the most recent
        :meth:`run_graph` call.
    """

    def __init__(self, masters: Sequence[WebComMaster],
                 network: SimulatedNetwork) -> None:
        if not masters:
            raise WebComError("a master group needs at least one master")
        self.masters = list(masters)
        self.network = network
        self.failovers: list[str] = []
        self.last_checkpoint: GraphCheckpoint | None = None

    def active_master(self) -> WebComMaster:
        """The highest-priority master that is not crashed.

        :raises WebComError: if every master is down.
        """
        for master in self.masters:
            if not self.network.is_crashed(master.master_id):
                return master
        raise WebComError("no healthy master in the group")

    def register_client(self, client: WebComClient) -> None:
        """Register a client with *every* master so a standby already knows
        the pool when it takes over."""
        for master in self.masters:
            client.register_with(master.master_id)
        self.network.run_until_quiet()

    def run_graph(self, graph: CondensedGraph, inputs: Mapping[str, Any],
                  mode: EvaluationMode = EvaluationMode.AVAILABILITY,
                  checkpoint: GraphCheckpoint | None = None) -> Any:
        """Execute a graph, failing over to the next master on loss.

        The shared checkpoint follows the graph across masters: a standby
        resumes from the nodes the failed master completed (re-checking
        their authorisation when secured) instead of restarting from the
        inputs.

        :raises SchedulingError: when no master can complete the graph.
        """
        checkpoint = checkpoint or GraphCheckpoint(graph.name)
        self.last_checkpoint = checkpoint
        last_error: Exception | None = None
        for master in self.masters:
            if self.network.is_crashed(master.master_id):
                continue
            try:
                return master.run_graph(graph, inputs, mode,
                                        checkpoint=checkpoint)
            except (SchedulingError, WebComError) as exc:
                last_error = exc
                self.failovers.append(master.master_id)
                continue
        raise SchedulingError(
            f"graph {graph.name!r} failed on every master in the group"
            ) from last_error

"""Policy-plane health: circuit breakers and degraded-mode semantics.

PR 1 taught the *data plane* (scheduling, network flights, failover) to
survive faults.  This module is the same discipline for the *policy plane*:
the mediation layers of the Figure-10 authorisation stack, the KeyCOM
configuration service and the Section-4.4 maintenance propagation all talk
to backends that can be slow, partitioned or down, and a production
deployment needs an explicit answer to "what does authorisation mean while
the trust-management checker is unreachable?".

Two pieces live here:

- :class:`CircuitBreaker` — a per-backend health tracker on the simulated
  clock.  ``failure_threshold`` consecutive failures trip it OPEN; while
  open, callers skip the backend entirely instead of timing out on every
  request; after ``cooldown`` simulated seconds the breaker HALF_OPENs and
  admits one probe, whose outcome closes or re-opens it.  Every transition
  is emitted as a ``health.breaker.*`` metric, a retroactive trace span and
  an audit record, so degraded operation is always attributable.

- :class:`DegradedMode` — what a mediation layer's verdict becomes while
  its breaker is open (or its check raised):

  * ``FAIL_CLOSED`` — deny.  The default, and the right answer for the
    trust-management layer (Section 5 of the paper: TM is the layer that
    *proves* authorisation; an unprovable request must not pass).
  * ``FAIL_OPEN``   — allow, recorded as an ERROR layer decision so the
    audit trail shows the layer was never actually consulted.  Only for
    advisory layers whose denial is a quality-of-service hint.
  * ``FAIL_STATIC`` — serve the last-known-good decision for the identical
    request, marked ``stale=True``.  Bounded staleness instead of an
    outage: the decision was once proven, and the mark keeps it out of the
    fresh-decision cache and visible in every audit record.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import TYPE_CHECKING

from repro.util.clock import Clock, SimulatedClock
from repro.util.events import AuditLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class BreakerState(str, enum.Enum):
    """The classic three-state circuit-breaker automaton."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class DegradedMode(str, enum.Enum):
    """How a layer's verdict is resolved while its backend is unavailable."""

    FAIL_CLOSED = "fail_closed"
    FAIL_OPEN = "fail_open"
    FAIL_STATIC = "fail_static"


class CircuitBreaker:
    """Consecutive-failure circuit breaker on the simulated clock.

    >>> from repro.util.clock import SimulatedClock
    >>> clock = SimulatedClock()
    >>> breaker = CircuitBreaker("tm", clock=clock, failure_threshold=2,
    ...                          cooldown=10.0)
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state
    <BreakerState.OPEN: 'open'>
    >>> breaker.allow()          # still cooling down
    False
    >>> _ = clock.advance(10.0)
    >>> breaker.allow()          # half-open: one probe may pass
    True
    >>> breaker.record_success()
    >>> breaker.state
    <BreakerState.CLOSED: 'closed'>

    :param name: backend/layer label used in metrics and audit records.
    :param clock: simulated time source (defaults to ``obs.clock``).
    :param failure_threshold: consecutive failures that trip the breaker.
    :param cooldown: simulated seconds OPEN before a half-open probe.
    :param obs: optional observability; transitions become ``health.*``
        metrics and retroactive spans.
    :param audit: optional audit log; transitions are recorded under
        ``health.breaker``.
    :raises ValueError: for a non-positive threshold or a negative /
        non-finite cooldown.
    """

    def __init__(self, name: str, clock: SimulatedClock | None = None,
                 failure_threshold: int = 3, cooldown: float = 30.0,
                 obs: "Observability | None" = None,
                 audit: AuditLog | None = None) -> None:
        if not isinstance(failure_threshold, int) or failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be a positive integer, "
                f"got {failure_threshold!r}")
        if not (isinstance(cooldown, (int, float)) and cooldown >= 0
                and math.isfinite(cooldown)):
            raise ValueError(
                f"cooldown must be a finite non-negative number, "
                f"got {cooldown!r}")
        self.name = name
        self.clock = clock or (obs.clock if obs is not None
                               else SimulatedClock())
        self.failure_threshold = failure_threshold
        self.cooldown = float(cooldown)
        self.obs = obs
        self.audit = audit
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        #: (simulated time, from-state, to-state) for every transition
        self.transitions: list[tuple[float, str, str]] = []

    def _now(self) -> float:
        return self.clock.now()

    # -- queries --------------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed to the backend right now?

        CLOSED always allows.  OPEN refuses until ``cooldown`` has elapsed,
        then transitions to HALF_OPEN and admits the probe.  HALF_OPEN
        allows (mediation is synchronous, so at most one probe is in
        flight); the probe's :meth:`record_success` / :meth:`record_failure`
        settles the state.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self._opened_at is not None
            if self._now() >= self._opened_at + self.cooldown:
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return True  # HALF_OPEN: the probe

    # -- outcomes -------------------------------------------------------------

    def record_success(self) -> None:
        """A call to the backend succeeded: reset and close."""
        self._consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)
            self._opened_at = None

    def record_failure(self) -> None:
        """A call raised or timed out.

        A HALF_OPEN probe failure re-opens immediately (the cooldown
        restarts); otherwise failures accumulate until the threshold trips
        the breaker.
        """
        if self.state is BreakerState.HALF_OPEN:
            self._open()
            return
        self._consecutive_failures += 1
        if (self.state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._open()

    def _open(self) -> None:
        self._opened_at = self._now()
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN)

    def _transition(self, new_state: BreakerState) -> None:
        old_state = self.state
        self.state = new_state
        now = self._now()
        self.transitions.append((now, old_state.value, new_state.value))
        if self.obs is not None:
            self.obs.metrics.counter(f"health.breaker.{new_state.value}").inc()
            self.obs.metrics.counter(
                f"health.breaker.{self.name}.{new_state.value}").inc()
            self.obs.tracer.record(
                "health.breaker.transition", now, now,
                breaker=self.name, from_state=old_state.value,
                to_state=new_state.value)
        if self.audit is not None:
            self.audit.record(now, "health.breaker", subject=self.name,
                              outcome=new_state.value,
                              from_state=old_state.value)

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Serialisable state for the ``repro health`` report."""
        return {
            "name": self.name,
            "state": self.state.value,
            "consecutive_failures": self._consecutive_failures,
            "opened_at": self._opened_at,
            "transitions": [list(t) for t in self.transitions],
        }

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state.value}, "
                f"failures={self._consecutive_failures})")


class PressureWindow:
    """Windowed overload-pressure estimator on the shared clock.

    The circuit breaker above watches one *backend*; this watches the
    plane's own *load*.  Callers record each admission outcome — shed or
    admitted, plus the in-flight utilisation observed at that instant —
    and :meth:`pressure` reports the worse of two trailing-``window``
    signals:

    - the **shed ratio** (refusals / outcomes): high when demand already
      exceeds what admission lets through;
    - the **peak utilisation** of the in-flight budget: high *before* the
      first shed, which is what lets a brownout engage early.

    Samples older than ``window`` clock seconds fall out, so a burst's
    pressure decays by itself once traffic subsides.

    >>> from repro.util.clock import SimulatedClock
    >>> clock = SimulatedClock()
    >>> window = PressureWindow(clock=clock, window=1.0)
    >>> window.record(shed=False, utilization=0.25)
    >>> window.record(shed=True, utilization=1.0)
    >>> window.pressure()
    1.0
    >>> _ = clock.advance(2.0)
    >>> window.pressure()
    0.0
    """

    def __init__(self, clock: Clock | None = None,
                 window: float = 1.0) -> None:
        if not (window > 0 and math.isfinite(window)):
            raise ValueError(
                f"window must be a positive finite number, got {window!r}")
        self.clock: Clock = clock or SimulatedClock()
        self.window = float(window)
        #: (recorded_at, shed, utilization) trailing samples
        self._samples: deque[tuple[float, bool, float]] = deque()

    def _prune(self) -> None:
        horizon = self.clock.now() - self.window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def record(self, shed: bool, utilization: float) -> None:
        """One admission outcome at the current clock instant."""
        self._prune()
        self._samples.append((self.clock.now(), bool(shed),
                              float(utilization)))

    def pressure(self) -> float:
        """max(windowed shed ratio, windowed peak utilisation), in [0, 1]."""
        self._prune()
        if not self._samples:
            return 0.0
        sheds = sum(1 for _at, shed, _util in self._samples if shed)
        ratio = sheds / len(self._samples)
        peak = max(util for _at, _shed, util in self._samples)
        return min(1.0, max(ratio, peak))

    def snapshot(self) -> dict[str, object]:
        self._prune()
        return {"window": self.window, "samples": len(self._samples),
                "pressure": round(self.pressure(), 4)}

"""Administrative reports over policies and credential graphs.

Policy Comprehension (Section 4.2) "promotes ease of understanding of the
current state of the overall system security configuration"; these helpers
render that understanding:

- :func:`effective_permissions` / :func:`effective_permissions_report` —
  the user-by-user expansion of an RBAC policy (who can actually do what,
  through which role);
- :func:`delegation_graph` / :func:`delegation_graph_dot` — the KeyNote
  delegation graph as a :mod:`networkx` digraph and as Graphviz DOT text
  for documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from repro.keynote.credential import Credential
from repro.keynote.licensees import licensees_to_text
from repro.obs.export import render_metrics
from repro.rbac.policy import RBACPolicy
from repro.util.text import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class EffectivePermission:
    """One row of the expansion: user -> permission, with provenance."""

    user: str
    domain: str
    role: str
    object_type: str
    permission: str


def effective_permissions(policy: RBACPolicy) -> list[EffectivePermission]:
    """Join UserAssignment with HasPermission (hierarchy-aware)."""
    rows: list[EffectivePermission] = []
    for user in sorted(policy.users()):
        for domain_role in sorted(policy.roles_of(user)):
            for grant in sorted(policy.permissions_of(domain_role.domain,
                                                      domain_role.role)):
                rows.append(EffectivePermission(
                    user=user, domain=domain_role.domain,
                    role=domain_role.role,
                    object_type=grant.object_type,
                    permission=grant.permission))
    return rows


def effective_permissions_report(policy: RBACPolicy) -> str:
    """The expansion rendered as a table."""
    return format_table(
        ["User", "Via role", "ObjectType", "Permission"],
        [(row.user, f"{row.domain}/{row.role}", row.object_type,
          row.permission)
         for row in effective_permissions(policy)])


def delegation_graph(credentials: list[Credential]) -> "nx.DiGraph":
    """The delegation digraph: authorizer -> licensee principals.

    Edges carry the credential's conditions text; POLICY is the root node.
    """
    graph = nx.DiGraph()
    for credential in credentials:
        source = "POLICY" if credential.is_policy else credential.authorizer
        graph.add_node(source)
        for principal in sorted(credential.principals()):
            graph.add_edge(source, principal,
                           conditions=credential.conditions_text,
                           licensees=licensees_to_text(credential.licensees))
    return graph


def delegation_paths(credentials: list[Credential], target: str,
                     ) -> list[list[str]]:
    """All simple delegation paths from POLICY to ``target``."""
    graph = delegation_graph(credentials)
    if "POLICY" not in graph or target not in graph:
        return []
    return [list(path) for path in
            nx.all_simple_paths(graph, "POLICY", target)]


def metrics_report(registry: "MetricsRegistry") -> str:
    """A run's metrics rendered as a table, one row per instrument —
    the quantitative companion to the relation tables above."""
    return render_metrics(registry)


def observability_report(obs: "Observability") -> str:
    """Metrics table plus a one-line trace summary for one observed run."""
    correlations = obs.tracer.correlations()
    header = (f"{len(obs.tracer.spans)} spans across "
              f"{len(correlations)} correlated trace(s); "
              f"simulated clock at {obs.clock.now():.2f}s")
    return header + "\n\n" + metrics_report(obs.metrics)


def conformance_report(report: dict) -> str:
    """Text rendering of a ``CONFORMANCE_5`` differential-testing report."""
    lines = [f"conformance: {report['agreements']}/{report['comparisons']} "
             f"comparisons agree over {report['cases']} cases "
             f"(seed {report['seed']})",
             f"  known-lossy disagreements: {report['known_lossy']}",
             f"  counterexamples: {len(report['counterexamples'])}"]
    rows = [(check, stats["cases"], stats["comparisons"],
             stats["agreements"], stats["known_lossy"],
             stats["counterexamples"])
            for check, stats in sorted(report["per_check"].items())]
    lines.append("")
    lines.append(format_table(["check", "cases", "comparisons", "agreements",
                               "known-lossy", "counterexamples"], rows))
    for example in report["counterexamples"]:
        first = example["disagreements"][0] if example["disagreements"] else {}
        lines.append(f"  FAIL {example['check']} case {example['index']}: "
                     f"{first.get('comparison', '?')} expected "
                     f"{first.get('expected')!r} got {first.get('actual')!r}")
    return "\n".join(lines)


def durability_report(report: dict) -> str:
    """Text rendering of a ``DURABILITY_6`` crash-recovery sweep report."""
    lines = [f"durability: {report['crashes']}/{report['crash_runs']} "
             f"injected crashes recovered over {report['seeds']} seeds "
             f"({len(report['write_sites'])} write sites)",
             f"  acknowledged updates lost: {report['acked_loss_total']}",
             f"  post-recovery oracle disagreements: "
             f"{report['oracle_disagreements_total']}"]
    rows = [(site, stats["visits"], stats["crashes"],
             stats["matched_inflight"], stats["acked_loss"],
             stats["oracle_disagreements"])
            for site, stats in sorted(report["sites"].items())]
    lines.append("")
    lines.append(format_table(
        ["write site", "visits", "crashes", "in-flight survived",
         "acked loss", "oracle diffs"], rows))
    for failure in report["failures"]:
        lines.append(f"  FAIL seed {failure['seed']} at "
                     f"{failure['site']} (hit {failure['hit']}): "
                     f"{failure['kind']}")
    return "\n".join(lines)


def serve_bench_report(report: dict) -> str:
    """Text rendering of a ``BENCH_7`` wall-clock serve benchmark report."""
    lines = [f"serve-bench: {report['clients']} concurrent clients, "
             f"{report['requests_per_client']} requests each "
             f"({report['timescale']} clock)"]
    rows = [(label, report[label]["requests"],
             f"{report[label]['requests_per_sec']:.0f}",
             f"{report[label]['p50_ms']:.2f}",
             f"{report[label]['p99_ms']:.2f}",
             report[label]["denials"])
            for label in ("cold", "warm")]
    lines.append("")
    lines.append(format_table(
        ["pass", "requests", "req/s", "p50 ms", "p99 ms", "denials"], rows))
    oracle = report["oracle"]
    drain = report["drain"]
    lines.append("")
    lines.append(f"  oracle probes: {oracle['probes']}, disagreements: "
                 f"{oracle['disagreements']}")
    lines.append(f"  mediation cache: {report['cache']['hits']} hits / "
                 f"{report['cache']['misses']} misses")
    lines.append(f"  drain: {drain['completed']} completed + "
                 f"{drain['refused']} refused of {drain['wave']} in-flight "
                 f"({drain['lost']} lost), WAL flushed: "
                 f"{drain['wal_flushed']}")
    return "\n".join(lines)


def overload_bench_report(report: dict) -> str:
    """Text rendering of an ``OVERLOAD_9`` hostile-traffic bench report."""
    limits = report["limits"]
    lines = [f"overload-bench: {report['clients']} flood clients "
             f"({report['overload_factor']}x the baseline of "
             f"{report['baseline_clients']}), limits: "
             f"max_inflight={limits['max_inflight']}, "
             f"peer_rate={limits['peer_rate']:g}/s"]
    rows = []
    for name in ("baseline",) + tuple(report["scenarios"]):
        entry = (report["baseline"] if name == "baseline"
                 else report["scenarios"][name])
        traffic = entry["traffic"]
        shed = entry["server"]["admission"]["shed"]
        rows.append((name, traffic["issued"], traffic["accepted"],
                     shed["total"], traffic["lost"],
                     f"{traffic['goodput_per_sec']:.0f}",
                     f"{traffic['p99_ms']:.1f}",
                     entry["server"]["brownout"]["max_level"]))
    lines.append("")
    lines.append(format_table(
        ["scenario", "issued", "accepted", "sheds", "lost", "good/s",
         "p99 ms", "brownout"], rows))
    goodput = report["goodput"]
    lines.append("")
    lines.append(f"  goodput: worst scenario holds "
                 f"{goodput['ratio']:.2f} of baseline "
                 f"({goodput['worst_scenario_per_sec']:.0f} vs "
                 f"{goodput['baseline_per_sec']:.0f} accepted/s)")
    for name, scenario in report["scenarios"].items():
        accounting = scenario["accounting"]
        control = scenario["control"]
        lines.append(
            f"  {name}: refusals observed {accounting['refusals_observed']}"
            f" == sheds {accounting['sheds_total']}: "
            f"{accounting['refusals_match_sheds']}; control plane "
            f"{control['calls']} calls, {control['refused']} shed; "
            f"probes {scenario['traffic']['probes']}, disagreements "
            f"{scenario['traffic']['disagreements']}; "
            f"stale served {scenario['server']['stale_mediations']}")
    storm = report["scenarios"]["revocation_storm"]["storm"] or {}
    lines.append(f"  revocation storm: {storm.get('cycles', 0)} "
                 f"add/revoke cycles landed mid-flood")
    deadlines = report["deadlines"]
    lines.append(f"  deadlines: {deadlines['expired_refused']}/"
                 f"{deadlines['sent_expired']} pre-expired refused before "
                 f"dispatch (server counted "
                 f"{deadlines['server_expired_pre_dispatch']}), "
                 f"{deadlines['generous_answered']}/"
                 f"{deadlines['sent_generous']} generous answered")
    return "\n".join(lines)


def engine_bench_report(report: dict) -> str:
    """Text rendering of a ``BENCH_8`` compiled-engine benchmark report."""
    universe = report["universe"]
    cold = report["cold"]
    warm = report["warm"]
    oracle = report["oracle"]
    lines = [f"bench-engine: {universe['users']} users, "
             f"{universe['roles']} roles, {universe['grants']} grants, "
             f"{universe['hierarchy_edges']} hierarchy edges",
             ""]
    lines.append(format_table(
        ["path", "checks", "per-check us", "note"],
        [("compiled cold", report["batch"]["requests"],
          f"{cold['compiled_per_check_us']:.2f}",
          "includes engine build"),
         ("set-based cold", cold["set_based_sampled_checks"],
          f"{cold['set_based_per_check_us']:.2f}", "sampled"),
         ("compiled warm", report["batch"]["requests"],
          f"{warm['per_check_us']:.3f}",
          f"{warm['checks_per_s']:.0f} checks/s")]))
    lines.append("")
    lines.append(f"  cold speedup: {cold['speedup']:.1f}x "
                 f"(answers agree: {cold['sampled_answers_agree']})")
    lines.append(f"  oracle sweep: {oracle['check_cases']} checks + "
                 f"{oracle['roles_of_cases']} roles_of + "
                 f"{oracle['authorised_users_cases']} authorised_users, "
                 f"disagreements: {oracle['disagreements']}")
    engine = report.get("engine") or {}
    if engine:
        lines.append(f"  engine: builds={engine.get('builds')} "
                     f"hierarchy_rebuilds={engine.get('hierarchy_rebuilds')} "
                     f"deltas={engine.get('deltas')} "
                     f"cached_user_masks={engine.get('cached_user_masks')}")
    return "\n".join(lines)


def churn_bench_report(report: dict) -> str:
    """Text rendering of a ``BENCH_10`` churn benchmark report."""
    universe = report["universe"]
    incremental = report["incremental"]
    baseline = report["baseline"]
    lines = [f"bench-churn: {universe['assertions']} assertions "
             f"({universe['orgs']} orgs / {universe['teams']} teams / "
             f"{universe['users']} users), {universe['churn_steps']} "
             f"proxy renewals x {universe['queries_per_step']} Zipfian "
             f"queries",
             ""]
    lines.append(format_table(
        ["invalidation", "hits", "misses", "hit ratio", "phase s",
         "evicted", "flushes"],
        [("incremental", incremental["hits"], incremental["misses"],
          f"{incremental['hit_ratio']:.3f}",
          f"{incremental['phase_s']:.3f}",
          incremental["cache"]["selective_evictions"],
          incremental["cache"]["full_flushes"]),
         ("generation-flush", baseline["hits"], baseline["misses"],
          f"{baseline['hit_ratio']:.3f}", f"{baseline['phase_s']:.3f}",
          "-", "-")]))
    lines.append("")
    improvement = report["hit_ratio_improvement"]
    lines.append(f"  warm-hit ratio under churn: "
                 f"{improvement:.2f}x over generation-flush"
                 if improvement is not None else
                 "  warm-hit ratio under churn: baseline had no hits")
    lines.append(f"  lock-step agreement: {report['lockstep']['queries']} "
                 f"queries, {report['lockstep']['disagreements']} "
                 f"disagreements; oracle sample: "
                 f"{report['oracle']['samples']} decisions, "
                 f"{report['oracle']['disagreements']} disagreements")
    edges = report["rbac_edge_churn"]
    lines.append(f"  rbac edge churn: {edges['edge_deltas']} edge deltas, "
                 f"{edges['hierarchy_rebuilds']} rebuilds, "
                 f"{edges['mask_evictions']} mask evictions, "
                 f"{edges['set_based_disagreements']} set-based + "
                 f"{edges['oracle']['disagreements']} oracle disagreements")
    survival = report["stack_survival"]
    lines.append(f"  mediation cache: {survival['survived_churn']}/"
                 f"{survival['warm_entries']} warm entries survived "
                 f"{survival['unrelated_revocations']} unrelated "
                 f"revocations, {survival['invalidated']} invalidated by "
                 f"the dependent one, {survival['stale_serves']} stale "
                 f"serves")
    return "\n".join(lines)


def delegation_graph_dot(credentials: list[Credential]) -> str:
    """Graphviz DOT text for the delegation graph."""
    graph = delegation_graph(credentials)
    lines = ["digraph delegation {", '    rankdir=LR;',
             '    "POLICY" [shape=box];']
    for source, dest, data in sorted(graph.edges(data=True)):
        conditions = data.get("conditions", "").replace('"', '\\"')
        lines.append(f'    "{source}" -> "{dest}" '
                     f'[label="{conditions[:60]}"];')
    lines.append("}")
    return "\n".join(lines)

"""Audit trail.

Every security decision in the framework (trust-management queries, middleware
access checks, KeyCOM updates, scheduling decisions) can be recorded in an
:class:`AuditLog`.  The log is append-only and queryable, which the
integration tests and the Figure-9 benchmark use to assert *which* layer made
each decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping


@dataclass(frozen=True)
class AuditRecord:
    """A single audit event.

    :param timestamp: simulated time of the event.
    :param category: event family, e.g. ``"keynote.query"`` or ``"keycom.update"``.
    :param subject: principal or key the event concerns.
    :param outcome: short outcome string, e.g. ``"allow"`` / ``"deny"``.
    :param detail: free-form structured payload.
    """

    timestamp: float
    category: str
    subject: str
    outcome: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    def matches(self, *, category: str | None = None, subject: str | None = None,
                outcome: str | None = None) -> bool:
        """Return True if the record matches every given filter."""
        if category is not None and self.category != category:
            return False
        if subject is not None and self.subject != subject:
            return False
        if outcome is not None and self.outcome != outcome:
            return False
        return True


class AuditLog:
    """Append-only audit log with simple filtering."""

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []
        self._listeners: list[Callable[[AuditRecord], None]] = []

    def record(self, timestamp: float, category: str, subject: str, outcome: str,
               **detail: Any) -> AuditRecord:
        """Append a record and notify listeners."""
        rec = AuditRecord(timestamp=timestamp, category=category,
                          subject=subject, outcome=outcome, detail=detail)
        self._records.append(rec)
        for listener in self._listeners:
            listener(rec)
        return rec

    def subscribe(self, listener: Callable[[AuditRecord], None]) -> None:
        """Register a callback invoked for every new record."""
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def find(self, *, category: str | None = None, subject: str | None = None,
             outcome: str | None = None) -> list[AuditRecord]:
        """Return all records matching the given filters."""
        return [r for r in self._records
                if r.matches(category=category, subject=subject, outcome=outcome)]

    def last(self, *, category: str | None = None) -> AuditRecord | None:
        """Return the most recent record (optionally of a category)."""
        for rec in reversed(self._records):
            if category is None or rec.category == category:
                return rec
        return None

    def bind_metrics(self, metrics) -> None:
        """Mirror every future record into ``audit.<category>.<outcome>``
        counters on a :class:`~repro.obs.metrics.MetricsRegistry`.

        This turns the append-only log into live rates: how many denials
        per layer, how many scheduling losses, without re-scanning records.
        """
        def count(record: AuditRecord) -> None:
            metrics.counter(f"audit.{record.category}.{record.outcome}").inc()

        self.subscribe(count)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Serialise all records (for the JSON observability export)."""
        return [{
            "timestamp": r.timestamp,
            "category": r.category,
            "subject": r.subject,
            "outcome": r.outcome,
            "detail": dict(r.detail),
        } for r in self._records]

    def clear(self) -> None:
        """Drop all records (listeners stay subscribed)."""
        self._records.clear()

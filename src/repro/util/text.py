"""Text helpers used by credential serialisation and table printing."""

from __future__ import annotations

from typing import Iterable, Sequence


def quote(value: str) -> str:
    """Quote a string for the KeyNote credential syntax.

    Backslashes and double quotes are escaped; everything else passes through.
    """
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def unquote(text: str) -> str:
    """Inverse of :func:`quote`.

    :raises ValueError: if the text is not a well-formed quoted string.
    """
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise ValueError(f"not a quoted string: {text!r}")
    body = text[1:-1]
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise ValueError(f"dangling escape in {text!r}")
            out.append(body[i + 1])
            i += 2
        elif ch == '"':
            raise ValueError(f"unescaped quote in {text!r}")
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def indent_block(text: str, prefix: str = "    ") -> str:
    """Indent every non-empty line of ``text`` with ``prefix``."""
    return "\n".join(prefix + line if line else line for line in text.splitlines())


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table like the RBAC relation tables in Figure 1.

    >>> print(format_table(["Domain", "Role"], [("Finance", "Clerk")]))
    Domain  | Role
    --------+------
    Finance | Clerk
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), sep]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)

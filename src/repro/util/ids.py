"""Deterministic identifier generation.

The simulators need stable, reproducible identifiers (message ids, SIDs,
object references).  Random UUIDs would make test output nondeterministic, so
ids come from per-prefix counters, and content-addressed digests come from
SHA-256.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import DefaultDict


def stable_digest(*parts: str, length: int = 16) -> str:
    """Return a stable hex digest of ``parts``.

    Parts are length-prefixed before hashing so that ``("ab", "c")`` and
    ``("a", "bc")`` never collide.

    :param parts: strings to hash.
    :param length: number of hex characters to keep (max 64).
    """
    h = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        h.update(str(len(data)).encode("ascii"))
        h.update(b":")
        h.update(data)
    return h.hexdigest()[:length]


class IdGenerator:
    """Per-prefix monotonic id generator.

    >>> gen = IdGenerator()
    >>> gen.next("msg")
    'msg-1'
    >>> gen.next("msg")
    'msg-2'
    >>> gen.next("node")
    'node-1'
    """

    def __init__(self) -> None:
        self._counters: DefaultDict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix``."""
        self._counters[prefix] += 1
        return f"{prefix}-{self._counters[prefix]}"

    def peek(self, prefix: str) -> int:
        """Return how many ids have been issued for ``prefix``."""
        return self._counters[prefix]

    def reset(self, prefix: str | None = None) -> None:
        """Reset one prefix counter, or all of them."""
        if prefix is None:
            self._counters.clear()
        else:
            self._counters.pop(prefix, None)

"""Shared utilities: deterministic ids, simulated clock, audit log, text helpers."""

from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog, AuditRecord
from repro.util.ids import IdGenerator, stable_digest
from repro.util.text import format_table, indent_block, quote, unquote

__all__ = [
    "AuditLog",
    "AuditRecord",
    "IdGenerator",
    "SimulatedClock",
    "format_table",
    "indent_block",
    "quote",
    "stable_digest",
    "unquote",
]

"""Shared utilities: deterministic ids, clocks, audit log, text helpers."""

from repro.util.clock import Clock, SimulatedClock, WallClock
from repro.util.events import AuditLog, AuditRecord
from repro.util.ids import IdGenerator, stable_digest
from repro.util.text import format_table, indent_block, quote, unquote

__all__ = [
    "AuditLog",
    "AuditRecord",
    "Clock",
    "IdGenerator",
    "SimulatedClock",
    "WallClock",
    "format_table",
    "indent_block",
    "quote",
    "stable_digest",
    "unquote",
]

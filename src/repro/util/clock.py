"""A simulated clock.

Certificate validity periods and network latency need a notion of time that is
fully controlled by the tests, so nothing in the framework reads the wall
clock.  Time is a float number of simulated seconds since epoch zero.
"""

from __future__ import annotations


class SimulatedClock:
    """Monotonic simulated time source.

    >>> clock = SimulatedClock()
    >>> clock.now()
    0.0
    >>> clock.advance(5.0)
    5.0
    >>> clock.now()
    5.0
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before epoch zero")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

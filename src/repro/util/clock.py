"""Clocks: the simulated test clock and the wall clock of the serve plane.

Certificate validity periods, network latency, cache TTLs and heartbeat
liveness all need a notion of time.  Historically everything ran on the
:class:`SimulatedClock` so tests fully control time; the always-on service
plane (:mod:`repro.serve`) additionally needs real wall-clock time for
liveness and latency measurement.  Both implement the same :class:`Clock`
protocol — ``now()`` returning float seconds — so every consumer (sessions,
stacks, breakers, masters, the serve daemon) is written against the
abstraction and works on either timescale.

Each clock also carries the **scheduling defaults** appropriate to its
timescale (:meth:`Clock.scheduling_defaults`).  The WebCom master's
heartbeat and request-timeout constants were historically hardcoded at
simulated-clock scale (tens of simulated seconds); applying those same
numbers on top of real time would make the serve path wait tens of *wall*
seconds per probe.  Routing the defaults through the clock keeps the
simulated path byte-identical while giving the wall-clock path sane
real-time values.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What every time consumer in the framework requires of a clock."""

    #: "simulated" or "wall" — which timescale ``now()`` ticks on
    timescale: str

    def now(self) -> float:
        """Current time in float seconds."""
        ...

    def scheduling_defaults(self) -> dict[str, float]:
        """Timescale-appropriate defaults for schedulers and liveness
        monitors: ``request_timeout``, ``heartbeat_interval`` and
        ``heartbeat_timeout`` in this clock's seconds."""
        ...


#: the historical master-side constants, defined at simulated-clock scale
#: (``request_deadline`` is the serve plane's default end-to-end deadline
#: budget — how long a propagated request deadline extends past "now")
SIMULATED_SCHEDULING_DEFAULTS: dict[str, float] = {
    "request_timeout": 10.0,
    "heartbeat_interval": 15.0,
    "heartbeat_timeout": 5.0,
    "request_deadline": 30.0,
}

#: the same knobs at wall-clock scale (a live daemon probes sub-second)
WALL_SCHEDULING_DEFAULTS: dict[str, float] = {
    "request_timeout": 2.0,
    "heartbeat_interval": 5.0,
    "heartbeat_timeout": 1.0,
    "request_deadline": 5.0,
}


class SimulatedClock:
    """Monotonic simulated time source.

    >>> clock = SimulatedClock()
    >>> clock.now()
    0.0
    >>> clock.advance(5.0)
    5.0
    >>> clock.now()
    5.0
    """

    timescale = "simulated"

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before epoch zero")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def scheduling_defaults(self) -> dict[str, float]:
        """The historical simulated-scale master constants."""
        return dict(SIMULATED_SCHEDULING_DEFAULTS)


class WallClock:
    """Real time for the always-on service plane.

    ``now()`` is monotonic (it can never move backwards across NTP steps),
    offset so the epoch is the moment the clock was created — matching the
    simulated clock's "seconds since epoch zero" convention, which keeps
    audit timestamps and TTL arithmetic meaningful on either timescale.

    >>> clock = WallClock()
    >>> a = clock.now(); b = clock.now()
    >>> b >= a >= 0.0
    True
    """

    timescale = "wall"

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        """Wall seconds elapsed since this clock was created."""
        return time.monotonic() - self._origin

    def scheduling_defaults(self) -> dict[str, float]:
        """Real-time defaults: sub-second probes, short timeouts."""
        return dict(WALL_SCHEDULING_DEFAULTS)

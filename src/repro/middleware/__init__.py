"""Middleware simulators (the L1 layer): CORBA, EJB and COM+/.NET.

The paper interprets each middleware's native security configuration into the
extended RBAC model of Section 2.  Each simulator here provides:

- a *native* policy store shaped like the real technology (deployment
  descriptors for EJB, required-rights tables for CORBA, the COM+ catalogue
  over NT domains for COM+),
- invocation mediation (``check_invocation``) against that native store,
- ``extract_rbac()`` — the Section-2 interpretation used by Policy
  Comprehension, and
- ``apply_rbac()`` / ``apply_assignment()`` — used by Policy Configuration
  and the KeyCOM service to push credentials down into the native store.
"""

from repro.middleware.base import Invocation, Middleware, MiddlewareComponent
from repro.middleware.complus import ComPlusCatalogue
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.middleware.registry import MiddlewareRegistry

__all__ = [
    "ComPlusCatalogue",
    "CorbaOrb",
    "EJBServer",
    "Invocation",
    "Middleware",
    "MiddlewareComponent",
    "MiddlewareRegistry",
]

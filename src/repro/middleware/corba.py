"""A CORBA ORB simulator with CORBASec-style access policy.

The simulator models an ORB server on a machine, serving object interfaces
(IDL-ish: an interface name plus operations).  Security follows the
CORBASec *required rights* idea flattened to the paper's reading: roles are
granted rights to invoke specific methods on objects of a given interface.

The paper's RBAC interpretation: *"We consider a Domain to be the name of
the machine and the Corba ORB server name ... Roles are unique to each
Domain, and Users can be members of one or many roles.  Permissions relate
to the method calls on objects of the given object type."*  So::

    Domain      = machine/orb-server
    Role        = access-policy role
    ObjectType  = interface (repository id short name)
    Permission  = operation name
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeploymentError, UnknownComponentError
from repro.middleware.base import Invocation, Middleware, MiddlewareComponent
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy
from repro.util.ids import stable_digest


@dataclass
class CorbaInterface:
    """A served object interface."""

    name: str
    operations: tuple[str, ...]

    @property
    def repository_id(self) -> str:
        """An IDL-style repository id, e.g. ``IDL:SalariesDB:1.0``."""
        return f"IDL:{self.name}:1.0"


@dataclass
class ObjectReference:
    """A (simulated) interoperable object reference."""

    ior: str
    interface: str


@dataclass
class _AccessPolicy:
    """role -> interface -> granted operations"""

    required_rights: dict[str, dict[str, set[str]]] = field(default_factory=dict)
    role_members: dict[str, set[str]] = field(default_factory=dict)


class CorbaOrb(Middleware):
    """An ORB server with interfaces, object references and an access policy.

    >>> orb = CorbaOrb(machine="hosty", orb_name="orb1")
    >>> orb.register_interface("SalariesDB", operations=("read", "write"))
    >>> ref = orb.bind_object("SalariesDB")
    >>> orb.declare_role("Manager")
    >>> orb.grant_right("Manager", "SalariesDB", "read")
    >>> orb.assign_role("Manager", "Claire")
    >>> orb.invoke("Claire", "SalariesDB", "read")
    True
    """

    kind = "corba"

    def __init__(self, machine: str, orb_name: str) -> None:
        super().__init__(f"{machine}/{orb_name}")
        self.machine = machine
        self.orb_name = orb_name
        self._interfaces: dict[str, CorbaInterface] = {}
        self._objects: dict[str, ObjectReference] = {}
        self._policy = _AccessPolicy()
        self._users: set[str] = set()
        self._corbasec = None  # optional CorbaSecPolicy (rights model)

    # -- CORBASec mode -----------------------------------------------------------

    def attach_corbasec(self, policy) -> None:
        """Switch mediation to a CORBASec required-rights policy.

        While attached, invocations are decided by rights satisfaction and
        ``extract_rbac`` flattens the rights model into the common format.
        The plain role->operation policy is ignored (one mediation authority
        per ORB, as CORBASec replaces rather than augments it).
        """
        self._corbasec = policy

    def detach_corbasec(self) -> None:
        """Return to the plain role->operation access policy."""
        self._corbasec = None

    @property
    def corbasec(self):
        """The attached CORBASec policy, or None."""
        return self._corbasec

    # -- interfaces and objects ----------------------------------------------

    def register_interface(self, name: str,
                           operations: tuple[str, ...]) -> None:
        """Register an interface (the IDL contract)."""
        if name in self._interfaces:
            raise DeploymentError(f"interface {name!r} already registered")
        if not operations:
            raise DeploymentError(f"interface {name!r} has no operations")
        self._interfaces[name] = CorbaInterface(name=name, operations=operations)

    def bind_object(self, interface: str) -> ObjectReference:
        """Create an object reference for an interface.

        :raises UnknownComponentError: for unregistered interfaces.
        """
        if interface not in self._interfaces:
            raise UnknownComponentError(f"unknown interface {interface!r}")
        ior = "IOR:" + stable_digest(self.name, interface,
                                     str(len(self._objects)), length=24)
        ref = ObjectReference(ior=ior, interface=interface)
        self._objects[ior] = ref
        return ref

    def resolve(self, ior: str) -> ObjectReference:
        """Look up an object reference.

        :raises UnknownComponentError: for dangling IORs.
        """
        try:
            return self._objects[ior]
        except KeyError:
            raise UnknownComponentError(f"dangling IOR {ior!r}") from None

    def interfaces(self) -> list[CorbaInterface]:
        """All registered interfaces, sorted."""
        return sorted(self._interfaces.values(), key=lambda i: i.name)

    # -- access policy ----------------------------------------------------------

    def declare_role(self, role: str) -> None:
        """Declare a role in the ORB's access policy."""
        self._policy.required_rights.setdefault(role, {})
        self._policy.role_members.setdefault(role, set())

    def grant_right(self, role: str, interface: str, operation: str) -> None:
        """Grant a role the right to an operation on an interface.

        :raises DeploymentError: for undeclared roles or unknown operations.
        """
        if role not in self._policy.required_rights:
            raise DeploymentError(f"role {role!r} not declared")
        iface = self._interfaces.get(interface)
        if iface is None:
            raise UnknownComponentError(f"unknown interface {interface!r}")
        if operation not in iface.operations:
            raise DeploymentError(
                f"interface {interface!r} has no operation {operation!r}")
        self._policy.required_rights[role].setdefault(interface, set()).add(
            operation)

    def assign_role(self, role: str, user: str) -> None:
        """Add a user to a role (users are implicitly registered)."""
        if role not in self._policy.role_members:
            raise DeploymentError(f"role {role!r} not declared")
        self._users.add(user)
        self._policy.role_members[role].add(user)

    def users(self) -> frozenset[str]:
        """Users known to the ORB's access policy."""
        return frozenset(self._users)

    @property
    def domain(self) -> str:
        """The single RBAC domain this ORB constitutes (machine/orb-name)."""
        return self.name

    # -- Middleware interface ------------------------------------------------------

    def check_invocation(self, invocation: Invocation) -> bool:
        if self._corbasec is not None:
            return self._corbasec.access_allowed(
                invocation.user, invocation.object_type, invocation.operation)
        for role, rights in self._policy.required_rights.items():
            if invocation.operation in rights.get(invocation.object_type, ()):
                if invocation.user in self._policy.role_members.get(role, ()):
                    return True
        return False

    def components(self) -> list[MiddlewareComponent]:
        return [MiddlewareComponent(
                    component_id=f"{self.name}#{iface.name}",
                    object_type=iface.name,
                    operations=iface.operations,
                    middleware=self.name)
                for iface in self.interfaces()]

    def extract_rbac(self) -> RBACPolicy:
        if self._corbasec is not None:
            return self._extract_corbasec_rbac()
        policy = RBACPolicy(name=f"corba:{self.name}")
        for role, rights in self._policy.required_rights.items():
            for interface, operations in rights.items():
                for operation in sorted(operations):
                    policy.grant(self.domain, role, interface, operation)
        for role, members in self._policy.role_members.items():
            for user in sorted(members):
                policy.assign(user, self.domain, role)
        return policy

    def _extract_corbasec_rbac(self) -> RBACPolicy:
        """Flatten the rights model: a role is granted an operation iff its
        granted rights satisfy the operation's required rights."""
        policy = RBACPolicy(name=f"corba:{self.name}")
        for interface in self._interfaces.values():
            for operation in interface.operations:
                for role in self._corbasec.roles():
                    if self._corbasec.role_can_invoke(role, interface.name,
                                                      operation):
                        policy.grant(self.domain, role, interface.name,
                                     operation)
        for role in self._corbasec.roles():
            for user in sorted(self._corbasec.members_of(role)):
                policy.assign(user, self.domain, role)
        return policy

    def apply_grant(self, grant: Grant) -> None:
        if grant.domain != self.domain:
            raise UnknownComponentError(
                f"domain {grant.domain!r} does not address ORB {self.name!r}")
        if grant.object_type not in self._interfaces:
            self.register_interface(grant.object_type,
                                    operations=(grant.permission,))
        iface = self._interfaces[grant.object_type]
        if grant.permission not in iface.operations:
            iface.operations = iface.operations + (grant.permission,)
        if grant.role not in self._policy.required_rights:
            self.declare_role(grant.role)
        self.grant_right(grant.role, grant.object_type, grant.permission)

    def apply_assignment(self, assignment: Assignment) -> None:
        if assignment.domain != self.domain:
            raise UnknownComponentError(
                f"domain {assignment.domain!r} does not address ORB "
                f"{self.name!r}")
        if assignment.role not in self._policy.role_members:
            self.declare_role(assignment.role)
        self.assign_role(assignment.role, assignment.user)

    def remove_assignment(self, assignment: Assignment) -> bool:
        if assignment.domain != self.domain:
            return False
        members = self._policy.role_members.get(assignment.role)
        if members and assignment.user in members:
            members.remove(assignment.user)
            return True
        return False

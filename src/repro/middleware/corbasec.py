"""CORBASec-style access control: required rights vs granted rights.

The CORBA Security Service ([2], Blakley's *CORBA Security*) mediates at the
granularity of *rights*, not operations: every (interface, operation) pair
carries a set of **required rights** from the standard rights family
``corba:{get, set, manage, use}`` plus a combinator (``all``: every right is
needed; ``any``: one suffices), and principals hold **granted rights**
through their role attributes.  An invocation is allowed when the caller's
granted rights satisfy the operation's required rights.

:class:`CorbaSecPolicy` implements that model and plugs into
:class:`~repro.middleware.corba.CorbaOrb` via ``attach_corbasec``; the orb's
``extract_rbac`` then flattens rights back to the paper's common format (an
operation is granted to a role iff the role's rights satisfy the operation's
requirement), so the translation pipeline is oblivious to which mediation
mode the ORB runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import DeploymentError
from repro.util.text import format_table

#: the standard CORBA rights family
RIGHTS_FAMILY = ("get", "set", "manage", "use")


@dataclass(frozen=True)
class RequiredRights:
    """The rights an operation demands, with its combinator."""

    rights: frozenset[str]
    combinator: str = "all"  # "all" | "any"

    def __post_init__(self) -> None:
        unknown = self.rights - set(RIGHTS_FAMILY)
        if unknown:
            raise DeploymentError(
                f"unknown rights {sorted(unknown)}; the corba family is "
                f"{RIGHTS_FAMILY}")
        if self.combinator not in ("all", "any"):
            raise DeploymentError(
                f"combinator must be 'all' or 'any', got {self.combinator!r}")
        if not self.rights:
            raise DeploymentError("an operation must require some right")

    def satisfied_by(self, granted: frozenset[str]) -> bool:
        """Does a granted-rights set meet this requirement?"""
        if self.combinator == "all":
            return self.rights <= granted
        return bool(self.rights & granted)


class CorbaSecPolicy:
    """Required-rights table + per-role granted rights + role members."""

    def __init__(self) -> None:
        self._required: dict[tuple[str, str], RequiredRights] = {}
        self._granted: dict[str, set[str]] = {}
        self._members: dict[str, set[str]] = {}

    # -- required rights -------------------------------------------------------

    def set_required(self, interface: str, operation: str,
                     rights: Iterable[str], combinator: str = "all") -> None:
        """Declare the rights an operation requires."""
        self._required[(interface, operation)] = RequiredRights(
            frozenset(rights), combinator)

    def required_for(self, interface: str,
                     operation: str) -> RequiredRights | None:
        """The requirement for an operation (None = not protected)."""
        return self._required.get((interface, operation))

    # -- granted rights -----------------------------------------------------------

    def declare_role(self, role: str) -> None:
        """Declare a role attribute."""
        self._granted.setdefault(role, set())
        self._members.setdefault(role, set())

    def grant_rights(self, role: str, rights: Iterable[str]) -> None:
        """Grant rights to a role.

        :raises DeploymentError: for undeclared roles or unknown rights.
        """
        if role not in self._granted:
            raise DeploymentError(f"role {role!r} not declared")
        rights = set(rights)
        unknown = rights - set(RIGHTS_FAMILY)
        if unknown:
            raise DeploymentError(f"unknown rights {sorted(unknown)}")
        self._granted[role] |= rights

    def assign_role(self, role: str, user: str) -> None:
        """Put a user into a role.

        :raises DeploymentError: for undeclared roles.
        """
        if role not in self._members:
            raise DeploymentError(f"role {role!r} not declared")
        self._members[role].add(user)

    def remove_member(self, role: str, user: str) -> bool:
        """Remove a user from a role; True if present."""
        members = self._members.get(role, set())
        if user in members:
            members.remove(user)
            return True
        return False

    def granted_to_user(self, user: str) -> frozenset[str]:
        """Union of rights over all the user's roles."""
        rights: set[str] = set()
        for role, members in self._members.items():
            if user in members:
                rights |= self._granted[role]
        return frozenset(rights)

    def roles(self) -> list[str]:
        """Declared roles, sorted."""
        return sorted(self._granted)

    def members_of(self, role: str) -> frozenset[str]:
        """Users in a role."""
        return frozenset(self._members.get(role, frozenset()))

    def rights_of(self, role: str) -> frozenset[str]:
        """Rights granted to a role."""
        return frozenset(self._granted.get(role, frozenset()))

    # -- decisions -----------------------------------------------------------------

    def access_allowed(self, user: str, interface: str,
                       operation: str) -> bool:
        """The CORBASec access decision.

        Operations with no required-rights entry are *closed* (denied) —
        fail-safe defaults.
        """
        required = self._required.get((interface, operation))
        if required is None:
            return False
        return required.satisfied_by(self.granted_to_user(user))

    def role_can_invoke(self, role: str, interface: str,
                        operation: str) -> bool:
        """Would a member of ``role`` (alone) be allowed?"""
        required = self._required.get((interface, operation))
        if required is None:
            return False
        return required.satisfied_by(self.rights_of(role))

    # -- presentation -----------------------------------------------------------------

    def required_rights_table(self) -> str:
        """Render the RequiredRights table, as CORBASec documentation
        presents it."""
        return format_table(
            ["Interface", "Operation", "Rights", "Combinator"],
            [(iface, op, ",".join(sorted(req.rights)), req.combinator)
             for (iface, op), req in sorted(self._required.items())])

    def granted_rights_table(self) -> str:
        """Render the per-role granted rights."""
        return format_table(
            ["Role", "Granted rights", "Members"],
            [(role, ",".join(sorted(self._granted[role])),
              ",".join(sorted(self._members[role])))
             for role in self.roles()])

"""A COM+/.NET catalogue simulator over the simulated Windows OS.

COM+ applications are registered in a catalogue; each application hosts
components (CLSIDs) and declares *roles*; role members are Windows
principals.  The paper reads the COM model as an extension of Windows
security: *"COM's RBAC model ... provides Windows NT Domains, roles unique
to each domain, and permissions.  For the purposes of this paper, COM
permissions are Launch, Access, RunAs."*  So::

    Domain      = Windows NT domain
    Role        = COM+ application role (scoped to its NT domain here)
    ObjectType  = component prog-id
    Permission  = Launch | Access | RunAs
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeploymentError, UnknownComponentError
from repro.middleware.base import Invocation, Middleware, MiddlewareComponent
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy
from repro.util.ids import stable_digest

COM_PERMISSIONS = ("Launch", "Access", "RunAs")


@dataclass
class ComComponent:
    """A COM component registered in the catalogue."""

    prog_id: str
    clsid: str


@dataclass
class ComApplication:
    """A COM+ application: components plus role-based security settings."""

    name: str
    nt_domain: str
    components: dict[str, ComComponent] = field(default_factory=dict)
    #: role -> component prog_id -> granted permissions
    role_permissions: dict[str, dict[str, set[str]]] = field(default_factory=dict)
    #: role -> member principals ("DOMAIN\\user")
    role_members: dict[str, set[str]] = field(default_factory=dict)
    #: the identity server processes run as (None = launching user)
    run_as_identity: "str | None" = None


class ComPlusCatalogue(Middleware):
    """The COM+ catalogue of one Windows machine.

    >>> from repro.os_sec.windows import WindowsSecurity
    >>> osec = WindowsSecurity(); osec.add_domain("FINANCE")
    >>> _ = osec.add_user("FINANCE", "alice")
    >>> cat = ComPlusCatalogue("machine-y", osec)
    >>> cat.create_application("Payroll", nt_domain="FINANCE")
    >>> _ = cat.register_component("Payroll", "SalariesDB")
    >>> cat.declare_role("Payroll", "Clerk")
    >>> cat.grant_permission("Payroll", "Clerk", "SalariesDB", "Access")
    >>> cat.add_role_member("Payroll", "Clerk", "FINANCE", "alice")
    >>> cat.invoke("FINANCE\\\\alice", "SalariesDB", "Access")
    True
    """

    kind = "complus"

    def __init__(self, machine: str, windows: WindowsSecurity) -> None:
        super().__init__(machine)
        self.machine = machine
        self.windows = windows
        self._applications: dict[str, ComApplication] = {}

    # -- catalogue administration ------------------------------------------------

    def create_application(self, name: str, nt_domain: str) -> None:
        """Register a COM+ application bound to an NT domain.

        :raises DeploymentError: if the application exists or the NT domain
            is not known to Windows.
        """
        if name in self._applications:
            raise DeploymentError(f"application {name!r} already registered")
        if nt_domain not in self.windows.domains():
            raise DeploymentError(f"unknown NT domain {nt_domain!r}")
        self._applications[name] = ComApplication(name=name,
                                                  nt_domain=nt_domain)

    def register_component(self, application: str,
                           prog_id: str) -> ComComponent:
        """Register a component (assigns a deterministic CLSID)."""
        app = self._application(application)
        if prog_id in app.components:
            raise DeploymentError(f"component {prog_id!r} already registered")
        clsid = "{" + stable_digest("clsid", self.machine, application,
                                    prog_id, length=32) + "}"
        component = ComComponent(prog_id=prog_id, clsid=clsid)
        app.components[prog_id] = component
        return component

    def declare_role(self, application: str, role: str) -> None:
        """Declare an application role."""
        app = self._application(application)
        app.role_permissions.setdefault(role, {})
        app.role_members.setdefault(role, set())

    def grant_permission(self, application: str, role: str, prog_id: str,
                         permission: str) -> None:
        """Grant Launch/Access/RunAs on a component to a role.

        :raises DeploymentError: for unknown roles/components/permissions.
        """
        app = self._application(application)
        if role not in app.role_permissions:
            raise DeploymentError(f"role {role!r} not declared in "
                                  f"application {application!r}")
        if prog_id not in app.components:
            raise UnknownComponentError(
                f"no component {prog_id!r} in application {application!r}")
        if permission not in COM_PERMISSIONS:
            raise DeploymentError(
                f"COM permission must be one of {COM_PERMISSIONS}, "
                f"got {permission!r}")
        app.role_permissions[role].setdefault(prog_id, set()).add(permission)

    def add_role_member(self, application: str, role: str, nt_domain: str,
                        user: str) -> None:
        """Add a Windows principal to an application role.

        :raises DeploymentError: for role/domain mismatches.
        :raises UnknownPrincipalError: for unknown Windows users.
        """
        app = self._application(application)
        if role not in app.role_members:
            raise DeploymentError(f"role {role!r} not declared in "
                                  f"application {application!r}")
        self.windows.sid_of(nt_domain, user)  # validates the principal
        app.role_members[role].add(f"{nt_domain}\\{user}")

    def remove_role_member(self, application: str, role: str, nt_domain: str,
                           user: str) -> bool:
        """Remove a principal from a role; True if present."""
        app = self._application(application)
        principal = f"{nt_domain}\\{user}"
        members = app.role_members.get(role, set())
        if principal in members:
            members.remove(principal)
            return True
        return False

    def set_run_as(self, application: str, nt_domain: str,
                   user: str) -> None:
        """Configure the application's RunAs identity (the principal server
        processes execute as, the third COM permission's subject).

        :raises UnknownPrincipalError: for unknown Windows principals.
        """
        app = self._application(application)
        self.windows.sid_of(nt_domain, user)  # validates
        app.run_as_identity = f"{nt_domain}\\{user}"

    def effective_identity(self, application: str, launcher: str) -> str:
        """The identity a launched server runs as: the configured RunAs
        identity, or the launching user (COM's "interactive user" default).

        A caller is only *entitled* to that identity if it holds the RunAs
        permission on some component of the application; callers check that
        via :meth:`check_invocation` before launching.
        """
        app = self._application(application)
        return app.run_as_identity or launcher

    def applications(self) -> list[str]:
        """Registered application names, sorted."""
        return sorted(self._applications)

    def _application(self, name: str) -> ComApplication:
        try:
            return self._applications[name]
        except KeyError:
            raise UnknownComponentError(
                f"no COM+ application named {name!r}") from None

    def application_of_domain(self, nt_domain: str) -> ComApplication:
        """The application bound to an NT domain (creating one on demand for
        RBAC application is the caller's job).

        :raises UnknownComponentError: if no application uses the domain.
        """
        for app in self._applications.values():
            if app.nt_domain == nt_domain:
                return app
        raise UnknownComponentError(
            f"no application bound to NT domain {nt_domain!r}")

    # -- Middleware interface -------------------------------------------------------

    def check_invocation(self, invocation: Invocation) -> bool:
        for app in self._applications.values():
            if invocation.object_type not in app.components:
                continue
            for role, perms in app.role_permissions.items():
                if invocation.operation not in perms.get(
                        invocation.object_type, ()):
                    continue
                if invocation.user in app.role_members.get(role, ()):
                    return True
        return False

    def components(self) -> list[MiddlewareComponent]:
        result = []
        for app in sorted(self._applications.values(), key=lambda a: a.name):
            for comp in sorted(app.components.values(),
                               key=lambda c: c.prog_id):
                result.append(MiddlewareComponent(
                    component_id=f"{self.machine}/{app.name}#{comp.prog_id}",
                    object_type=comp.prog_id,
                    operations=COM_PERMISSIONS,
                    middleware=self.name))
        return result

    def extract_rbac(self) -> RBACPolicy:
        """Section-2 interpretation.  Role members are ``DOMAIN\\user``; the
        RBAC user keeps just the user part (the NT domain becomes the RBAC
        domain)."""
        policy = RBACPolicy(name=f"complus:{self.name}")
        for app in self._applications.values():
            for role, perms in app.role_permissions.items():
                for prog_id, permissions in perms.items():
                    for permission in sorted(permissions):
                        policy.grant(app.nt_domain, role, prog_id, permission)
            for role, members in app.role_members.items():
                for principal in sorted(members):
                    domain, _, user = principal.partition("\\")
                    policy.assign(user, app.nt_domain, role)
        return policy

    def apply_grant(self, grant: Grant) -> None:
        if grant.domain not in self.windows.domains():
            self.windows.add_domain(grant.domain)
        try:
            app = self.application_of_domain(grant.domain)
        except UnknownComponentError:
            self.create_application(f"app-{grant.domain}",
                                    nt_domain=grant.domain)
            app = self.application_of_domain(grant.domain)
        if grant.object_type not in app.components:
            self.register_component(app.name, grant.object_type)
        if grant.role not in app.role_permissions:
            self.declare_role(app.name, grant.role)
        permission = grant.permission if grant.permission in COM_PERMISSIONS \
            else _nearest_com_permission(grant.permission)
        self.grant_permission(app.name, grant.role, grant.object_type,
                              permission)

    def apply_assignment(self, assignment: Assignment) -> None:
        if assignment.domain not in self.windows.domains():
            self.windows.add_domain(assignment.domain)
        try:
            app = self.application_of_domain(assignment.domain)
        except UnknownComponentError:
            self.create_application(f"app-{assignment.domain}",
                                    nt_domain=assignment.domain)
            app = self.application_of_domain(assignment.domain)
        if assignment.role not in app.role_members:
            self.declare_role(app.name, assignment.role)
        if not self.windows.has_user(f"{assignment.domain}\\{assignment.user}"):
            self.windows.add_user(assignment.domain, assignment.user)
        self.add_role_member(app.name, assignment.role, assignment.domain,
                             assignment.user)

    def remove_assignment(self, assignment: Assignment) -> bool:
        try:
            app = self.application_of_domain(assignment.domain)
        except UnknownComponentError:
            return False
        return self.remove_role_member(app.name, assignment.role,
                                       assignment.domain, assignment.user)


def _nearest_com_permission(permission: str) -> str:
    """Map a foreign permission name onto COM's Launch/Access/RunAs.

    Policy migration between middleware "does not consist of a simple
    one-to-one mapping" (Section 4.3); read-like permissions become Access,
    execute-like become Launch, impersonation-like become RunAs.  The
    similarity layer (:mod:`repro.translate.similarity`) offers the richer
    metric-based mapping; this is the deterministic fallback.
    """
    lowered = permission.lower()
    if any(word in lowered for word in ("exec", "launch", "start", "run")):
        return "Launch" if "run" not in lowered else "RunAs"
    return "Access"

"""A registry of middleware instances across the network.

The framework (and the IDE's interrogation step) needs to enumerate every
middleware in the environment, find which one serves a component, and gather
all native policies for comprehension.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import UnknownComponentError
from repro.middleware.base import Middleware, MiddlewareComponent
from repro.rbac.policy import RBACPolicy


class MiddlewareRegistry:
    """Name-indexed collection of middleware instances."""

    def __init__(self) -> None:
        self._instances: dict[str, Middleware] = {}

    def register(self, middleware: Middleware) -> None:
        """Add a middleware instance (name must be unique)."""
        if middleware.name in self._instances:
            raise ValueError(f"middleware {middleware.name!r} already registered")
        self._instances[middleware.name] = middleware

    def get(self, name: str) -> Middleware:
        """Look up by name.

        :raises UnknownComponentError: if absent.
        """
        try:
            return self._instances[name]
        except KeyError:
            raise UnknownComponentError(
                f"no middleware named {name!r}") from None

    def __iter__(self) -> Iterator[Middleware]:
        for name in sorted(self._instances):
            yield self._instances[name]

    def __len__(self) -> int:
        return len(self._instances)

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def all_components(self) -> list[MiddlewareComponent]:
        """Every deployable component across all middleware (the palette)."""
        components: list[MiddlewareComponent] = []
        for middleware in self:
            components.extend(middleware.components())
        return components

    def find_component(self, component_id: str) -> tuple[Middleware,
                                                          MiddlewareComponent]:
        """Locate a component by id.

        :raises UnknownComponentError: if no middleware serves it.
        """
        for middleware in self:
            for component in middleware.components():
                if component.component_id == component_id:
                    return middleware, component
        raise UnknownComponentError(f"no component {component_id!r}")

    def extract_all(self) -> list[RBACPolicy]:
        """Native policies of every middleware, interpreted as RBAC."""
        return [m.extract_rbac() for m in self]

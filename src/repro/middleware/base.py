"""The common middleware interface.

Every simulator exposes the same four capabilities the framework needs:
invocation mediation, component interrogation (for the IDE palette of
Figure 11), RBAC extraction (comprehension) and RBAC application
(configuration).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy


@dataclass(frozen=True)
class MiddlewareComponent:
    """A schedulable middleware component, as interrogated by the IDE.

    :param component_id: globally unique id (used by condensed-graph nodes).
    :param object_type: the RBAC object type the component maps to.
    :param operations: invocable operations (methods / COM verbs).
    :param middleware: name of the owning middleware instance.
    """

    component_id: str
    object_type: str
    operations: tuple[str, ...]
    middleware: str


@dataclass(frozen=True)
class Invocation:
    """A middleware invocation request: ``user`` calls ``operation`` on the
    component with ``object_type``."""

    user: str
    object_type: str
    operation: str


class Middleware(abc.ABC):
    """Base class for the middleware simulators."""

    #: technology label: "ejb", "corba" or "complus"
    kind: str = "abstract"

    def __init__(self, name: str) -> None:
        self.name = name

    # -- mediation ----------------------------------------------------------

    @abc.abstractmethod
    def check_invocation(self, invocation: Invocation) -> bool:
        """Mediate an invocation against the native security policy."""

    def invoke(self, user: str, object_type: str, operation: str) -> bool:
        """Convenience wrapper over :meth:`check_invocation`."""
        return self.check_invocation(Invocation(user, object_type, operation))

    # -- interrogation ---------------------------------------------------------

    @abc.abstractmethod
    def components(self) -> list[MiddlewareComponent]:
        """All deployable components (the IDE's component palette)."""

    # -- RBAC interpretation (Section 2) ------------------------------------------

    @abc.abstractmethod
    def extract_rbac(self) -> RBACPolicy:
        """Interpret the native policy in the extended RBAC model."""

    @abc.abstractmethod
    def apply_grant(self, grant: Grant) -> None:
        """Install one HasPermission fact into the native store."""

    @abc.abstractmethod
    def apply_assignment(self, assignment: Assignment) -> None:
        """Install one UserAssignment fact into the native store."""

    def remove_assignment(self, assignment: Assignment) -> bool:
        """Remove one UserAssignment fact from the native store.

        Returns True if it was present.  Subclasses override; the default
        (no revocation support) returns False so propagation surfaces the
        residue through the consistency report instead of failing.
        """
        return False

    def apply_rbac(self, policy: RBACPolicy) -> None:
        """Install a whole RBAC policy (grants before assignments so roles
        exist when users join them)."""
        for grant in policy.sorted_grants():
            self.apply_grant(grant)
        for assignment in policy.sorted_assignments():
            self.apply_assignment(assignment)

    # -- identity -----------------------------------------------------------------

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

"""An Enterprise JavaBeans server simulator.

Shapes match the J2EE model the paper describes: beans live in containers
(named by JNDI names) on a server on a host; deployment descriptors declare
security roles and method-permissions; users are managed per server and may
hold roles in any container.

The paper's RBAC interpretation: *"The combination of host, EJB server, and
the relevant bean container JNDI name provide the domains of the policy.
Roles are bean specific on each server.  Users exist globally in each EJB
server ... Permissions represent method calls that a role is permitted to
make on an EJB object."*  So::

    Domain      = host:server/jndi
    Role        = descriptor security-role
    ObjectType  = bean name
    Permission  = method name
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeploymentError, UnknownComponentError
from repro.middleware.base import Invocation, Middleware, MiddlewareComponent
from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy


@dataclass
class Bean:
    """A deployed enterprise bean."""

    name: str
    methods: tuple[str, ...]
    #: method-permission entries: role -> set of methods
    method_permissions: dict[str, set[str]] = field(default_factory=dict)
    #: <exclude-list>: methods no principal may call (J2EE descriptors)
    excluded: set[str] = field(default_factory=set)
    #: <unchecked/> method-permissions: methods open to any principal
    unchecked: set[str] = field(default_factory=set)


@dataclass
class BeanContainer:
    """A bean container, addressed by its JNDI name."""

    jndi_name: str
    beans: dict[str, Bean] = field(default_factory=dict)
    #: security-role declarations for this container's descriptors
    roles: set[str] = field(default_factory=set)
    #: role memberships: role -> set of users
    role_members: dict[str, set[str]] = field(default_factory=dict)


class EJBServer(Middleware):
    """An EJB server on a host, holding containers, beans and users.

    >>> server = EJBServer(host="hostx", server_name="ejb1")
    >>> server.deploy_container("Payroll")
    >>> server.deploy_bean("Payroll", "SalariesDB", methods=("read", "write"))
    >>> server.declare_role("Payroll", "Clerk")
    >>> server.add_method_permission("Payroll", "SalariesDB", "Clerk", "write")
    >>> server.add_user("Alice")
    >>> server.assign_role("Payroll", "Clerk", "Alice")
    >>> server.invoke("Alice", "SalariesDB", "write")
    True
    >>> server.invoke("Alice", "SalariesDB", "read")
    False
    """

    kind = "ejb"

    def __init__(self, host: str, server_name: str) -> None:
        super().__init__(f"{host}:{server_name}")
        self.host = host
        self.server_name = server_name
        self._containers: dict[str, BeanContainer] = {}
        self._users: set[str] = set()

    # -- deployment -----------------------------------------------------------

    def deploy_container(self, jndi_name: str) -> None:
        """Create a bean container addressed by ``jndi_name``."""
        if jndi_name in self._containers:
            raise DeploymentError(f"container {jndi_name!r} already deployed")
        self._containers[jndi_name] = BeanContainer(jndi_name=jndi_name)

    def deploy_bean(self, jndi_name: str, bean_name: str,
                    methods: tuple[str, ...]) -> None:
        """Deploy a bean with its business methods into a container."""
        container = self._container(jndi_name)
        if bean_name in container.beans:
            raise DeploymentError(f"bean {bean_name!r} already deployed")
        if not methods:
            raise DeploymentError(f"bean {bean_name!r} declares no methods")
        container.beans[bean_name] = Bean(name=bean_name, methods=methods)

    def declare_role(self, jndi_name: str, role: str) -> None:
        """Declare a security-role in a container's descriptor."""
        container = self._container(jndi_name)
        container.roles.add(role)
        container.role_members.setdefault(role, set())

    def add_method_permission(self, jndi_name: str, bean_name: str,
                              role: str, method: str) -> None:
        """Add a ``<method-permission>`` descriptor entry.

        :raises DeploymentError: for unknown roles, beans or methods.
        """
        container = self._container(jndi_name)
        if role not in container.roles:
            raise DeploymentError(
                f"role {role!r} not declared in container {jndi_name!r}")
        bean = self._bean(jndi_name, bean_name)
        if method not in bean.methods:
            raise DeploymentError(
                f"bean {bean_name!r} has no method {method!r}")
        bean.method_permissions.setdefault(role, set()).add(method)

    def add_exclude(self, jndi_name: str, bean_name: str,
                    method: str) -> None:
        """Add a method to the bean's ``<exclude-list>``: denied to all,
        overriding any method-permission.

        :raises DeploymentError: for unknown beans or methods.
        """
        bean = self._bean(jndi_name, bean_name)
        if method not in bean.methods:
            raise DeploymentError(
                f"bean {bean_name!r} has no method {method!r}")
        bean.excluded.add(method)

    def add_unchecked(self, jndi_name: str, bean_name: str,
                      method: str) -> None:
        """Mark a method ``<unchecked/>``: open to any principal (unless
        excluded).

        :raises DeploymentError: for unknown beans or methods.
        """
        bean = self._bean(jndi_name, bean_name)
        if method not in bean.methods:
            raise DeploymentError(
                f"bean {bean_name!r} has no method {method!r}")
        bean.unchecked.add(method)

    # -- principals -----------------------------------------------------------------

    def add_user(self, user: str) -> None:
        """Register a user with this server (users are server-global)."""
        self._users.add(user)

    def users(self) -> frozenset[str]:
        """Users managed by this server."""
        return frozenset(self._users)

    def assign_role(self, jndi_name: str, role: str, user: str) -> None:
        """Put a server user into a container role.

        :raises DeploymentError: for unknown users or roles.
        """
        if user not in self._users:
            raise DeploymentError(f"user {user!r} is not registered "
                                  f"with server {self.name!r}")
        container = self._container(jndi_name)
        if role not in container.roles:
            raise DeploymentError(
                f"role {role!r} not declared in container {jndi_name!r}")
        container.role_members[role].add(user)

    def unassign_role(self, jndi_name: str, role: str, user: str) -> bool:
        """Remove a role membership; True if it existed."""
        container = self._container(jndi_name)
        members = container.role_members.get(role, set())
        if user in members:
            members.remove(user)
            return True
        return False

    # -- helpers ----------------------------------------------------------------------

    def _container(self, jndi_name: str) -> BeanContainer:
        try:
            return self._containers[jndi_name]
        except KeyError:
            raise UnknownComponentError(
                f"no container with JNDI name {jndi_name!r}") from None

    def _bean(self, jndi_name: str, bean_name: str) -> Bean:
        container = self._container(jndi_name)
        try:
            return container.beans[bean_name]
        except KeyError:
            raise UnknownComponentError(
                f"no bean {bean_name!r} in container {jndi_name!r}") from None

    def domain_of(self, jndi_name: str) -> str:
        """The RBAC domain string for a container (host:server/jndi)."""
        return f"{self.host}:{self.server_name}/{jndi_name}"

    def container_of_domain(self, domain: str) -> str:
        """Inverse of :meth:`domain_of`.

        :raises UnknownComponentError: if the domain does not address this
            server.
        """
        prefix = f"{self.host}:{self.server_name}/"
        if not domain.startswith(prefix):
            raise UnknownComponentError(
                f"domain {domain!r} does not address server {self.name!r}")
        return domain[len(prefix):]

    # -- Middleware interface -----------------------------------------------------------

    def check_invocation(self, invocation: Invocation) -> bool:
        for container in self._containers.values():
            bean = container.beans.get(invocation.object_type)
            if bean is None:
                continue
            if invocation.operation in bean.excluded:
                continue  # <exclude-list> dominates everything
            if invocation.operation in bean.unchecked:
                return True
            for role, methods in bean.method_permissions.items():
                if invocation.operation not in methods:
                    continue
                if invocation.user in container.role_members.get(role, ()):
                    return True
        return False

    def components(self) -> list[MiddlewareComponent]:
        result = []
        for container in sorted(self._containers.values(),
                                key=lambda c: c.jndi_name):
            for bean in sorted(container.beans.values(), key=lambda b: b.name):
                result.append(MiddlewareComponent(
                    component_id=f"{self.domain_of(container.jndi_name)}"
                                 f"#{bean.name}",
                    object_type=bean.name,
                    operations=bean.methods,
                    middleware=self.name))
        return result

    def extract_rbac(self) -> RBACPolicy:
        """Section-2 interpretation of the deployment descriptors.

        ``<exclude-list>`` entries suppress the corresponding grants (the
        effective policy is what matters); ``<unchecked/>`` methods have no
        RBAC reading (they name no role) and are omitted — a caveat the
        migration report surfaces when such descriptors exist.
        """
        policy = RBACPolicy(name=f"ejb:{self.name}")
        for container in self._containers.values():
            domain = self.domain_of(container.jndi_name)
            for bean in container.beans.values():
                for role, methods in bean.method_permissions.items():
                    for method in sorted(methods):
                        if method in bean.excluded:
                            continue
                        policy.grant(domain, role, bean.name, method)
            for role, members in container.role_members.items():
                for user in sorted(members):
                    policy.assign(user, domain, role)
        return policy

    def apply_grant(self, grant: Grant) -> None:
        jndi = self.container_of_domain(grant.domain)
        if jndi not in self._containers:
            self.deploy_container(jndi)
        container = self._containers[jndi]
        if grant.object_type not in container.beans:
            self.deploy_bean(jndi, grant.object_type,
                             methods=(grant.permission,))
        bean = container.beans[grant.object_type]
        if grant.permission not in bean.methods:
            bean.methods = bean.methods + (grant.permission,)
        if grant.role not in container.roles:
            self.declare_role(jndi, grant.role)
        self.add_method_permission(jndi, grant.object_type, grant.role,
                                   grant.permission)

    def apply_assignment(self, assignment: Assignment) -> None:
        jndi = self.container_of_domain(assignment.domain)
        if jndi not in self._containers:
            self.deploy_container(jndi)
        if assignment.role not in self._containers[jndi].roles:
            self.declare_role(jndi, assignment.role)
        if assignment.user not in self._users:
            self.add_user(assignment.user)
        self.assign_role(jndi, assignment.role, assignment.user)

    def remove_assignment(self, assignment: Assignment) -> bool:
        try:
            jndi = self.container_of_domain(assignment.domain)
        except UnknownComponentError:
            return False
        if jndi not in self._containers:
            return False
        return self.unassign_role(jndi, assignment.role, assignment.user)

"""Simulated operating-system security (the L0 layer of Figure 10).

Two substrates, matching the platforms in the paper's Figure 9:

- :mod:`repro.os_sec.unixlike` — ``OS(U)``: users, groups and rwx permission
  bits on named objects.
- :mod:`repro.os_sec.windows` — ``OS(W)``: NT domains, SIDs, groups and
  discretionary ACLs with allow/deny ACEs; COM+'s RBAC model (Section 2) is
  "an extension of the Windows security model", so the COM+ simulator builds
  on this module.

Both implement :class:`repro.os_sec.base.OperatingSystemSecurity`, the
interface the stacked-authorisation layer mediates through.
"""

from repro.os_sec.base import AccessRequest, OperatingSystemSecurity
from repro.os_sec.unixlike import UnixSecurity
from repro.os_sec.windows import AccessControlEntry, WindowsSecurity

__all__ = [
    "AccessControlEntry",
    "AccessRequest",
    "OperatingSystemSecurity",
    "UnixSecurity",
    "WindowsSecurity",
]

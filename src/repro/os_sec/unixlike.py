"""A Unix-like security model: users, groups, and rwx mode bits.

Objects carry an owner, a group and a 9-bit mode (owner/group/other × rwx).
This is the ``OS(U)`` box of Figure 9 — the substrate under the EJB system X.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownPrincipalError
from repro.os_sec.base import AccessRequest, OperatingSystemSecurity

_ACCESS_BIT = {"read": 4, "write": 2, "execute": 1}


@dataclass
class _UnixObject:
    owner: str
    group: str
    mode: int  # e.g. 0o640


class UnixSecurity(OperatingSystemSecurity):
    """Users, groups and per-object mode bits.

    >>> osec = UnixSecurity()
    >>> osec.add_user("alice", groups=["finance"])
    >>> osec.create_object("/db/salaries", owner="alice", group="finance",
    ...                    mode=0o640)
    >>> osec.check("alice", "/db/salaries", "write")
    True
    """

    platform = "unix"

    def __init__(self) -> None:
        self._groups_of: dict[str, set[str]] = {}
        self._objects: dict[str, _UnixObject] = {}

    # -- principals -----------------------------------------------------------

    def add_user(self, user: str, groups: list[str] | None = None) -> None:
        """Register a user with group memberships (primary group implied)."""
        self._groups_of.setdefault(user, set()).update(groups or ())

    def add_to_group(self, user: str, group: str) -> None:
        """Add an existing user to a group.

        :raises UnknownPrincipalError: if the user is unknown.
        """
        self._require_user(user)
        self._groups_of[user].add(group)

    def has_user(self, user: str) -> bool:
        return user in self._groups_of

    def groups_of(self, user: str) -> frozenset[str]:
        """Groups the user belongs to."""
        self._require_user(user)
        return frozenset(self._groups_of[user])

    def _require_user(self, user: str) -> None:
        if user not in self._groups_of:
            raise UnknownPrincipalError(f"unknown user {user!r}")

    # -- objects ------------------------------------------------------------------

    def create_object(self, name: str, owner: str, group: str,
                      mode: int = 0o644) -> None:
        """Create an object with owner, group and mode bits.

        :raises UnknownPrincipalError: if the owner is unknown.
        :raises ValueError: for modes outside 0..0o777.
        """
        self._require_user(owner)
        if not 0 <= mode <= 0o777:
            raise ValueError(f"mode out of range: {oct(mode)}")
        self._objects[name] = _UnixObject(owner=owner, group=group, mode=mode)

    def chmod(self, name: str, mode: int) -> None:
        """Change an object's mode bits.

        :raises KeyError: if the object does not exist.
        """
        if not 0 <= mode <= 0o777:
            raise ValueError(f"mode out of range: {oct(mode)}")
        self._objects[name].mode = mode

    def has_object(self, name: str) -> bool:
        """True if the object exists."""
        return name in self._objects

    # -- mediation --------------------------------------------------------------------

    def check_access(self, request: AccessRequest) -> bool:
        """Standard Unix algorithm: owner bits, else group bits, else other."""
        obj = self._objects.get(request.obj)
        if obj is None or request.user not in self._groups_of:
            return False
        bit = _ACCESS_BIT.get(request.access)
        if bit is None:
            return False
        if request.user == obj.owner:
            shift = 6
        elif obj.group in self._groups_of[request.user]:
            shift = 3
        else:
            shift = 0
        return bool((obj.mode >> shift) & bit)

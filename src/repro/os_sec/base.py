"""The OS security interface mediated by the L0 layer."""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class AccessRequest:
    """An OS-level access request: ``user`` wants ``access`` on ``obj``."""

    user: str
    obj: str
    access: str  # "read" | "write" | "execute"


class OperatingSystemSecurity(abc.ABC):
    """What the stacked-authorisation layer needs from an OS substrate."""

    #: short platform label, e.g. "unix" or "windows"
    platform: str = "abstract"

    @abc.abstractmethod
    def has_user(self, user: str) -> bool:
        """True if ``user`` is a known OS principal."""

    @abc.abstractmethod
    def check_access(self, request: AccessRequest) -> bool:
        """Mediate an access request against the OS policy."""

    def check(self, user: str, obj: str, access: str) -> bool:
        """Convenience wrapper over :meth:`check_access`."""
        return self.check_access(AccessRequest(user, obj, access))

"""A Windows NT-like security model: domains, SIDs, groups and DACLs.

The COM+ RBAC interpretation in the paper's Section 2 "is an extension of the
Windows security model and provides Windows NT Domains, roles unique to each
domain, and permissions" — so this module provides NT domains with per-domain
users and groups, stable SIDs, and discretionary ACLs whose entries allow or
deny access rights; deny ACEs take precedence, as on real NT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownPrincipalError
from repro.os_sec.base import AccessRequest, OperatingSystemSecurity
from repro.util.ids import stable_digest


@dataclass(frozen=True)
class AccessControlEntry:
    """One ACE: allow or deny ``rights`` to ``sid``."""

    sid: str
    rights: frozenset[str]
    allow: bool = True


@dataclass
class _SecurityDescriptor:
    owner_sid: str
    dacl: list[AccessControlEntry] = field(default_factory=list)


class WindowsSecurity(OperatingSystemSecurity):
    """NT domains with users, groups and ACL-protected objects.

    Principals are written ``DOMAIN\\name``; each gets a stable SID.

    >>> osec = WindowsSecurity()
    >>> osec.add_domain("DOMA")
    >>> _ = osec.add_user("DOMA", "alice")
    >>> sid = osec.sid_of("DOMA", "alice")
    >>> osec.create_object("registry/key", owner=("DOMA", "alice"))
    >>> osec.allow("registry/key", sid, {"read"})
    >>> osec.check("DOMA\\\\alice", "registry/key", "read")
    True
    """

    platform = "windows"

    #: well-known group every authenticated principal belongs to
    EVERYONE_SID = "S-1-1-0"

    def __init__(self) -> None:
        self._domains: set[str] = set()
        self._users: dict[tuple[str, str], str] = {}  # (domain, user) -> SID
        self._groups: dict[tuple[str, str], str] = {}
        self._members: dict[str, set[str]] = {}  # group SID -> member SIDs
        self._objects: dict[str, _SecurityDescriptor] = {}

    # -- domains and principals -------------------------------------------------

    def add_domain(self, domain: str) -> None:
        """Register an NT domain."""
        self._domains.add(domain)

    def domains(self) -> frozenset[str]:
        """All registered domains."""
        return frozenset(self._domains)

    def _require_domain(self, domain: str) -> None:
        if domain not in self._domains:
            raise UnknownPrincipalError(f"unknown NT domain {domain!r}")

    def add_user(self, domain: str, user: str) -> str:
        """Register a user in a domain and return its SID."""
        self._require_domain(domain)
        sid = "S-1-5-" + stable_digest("user", domain, user, length=12)
        self._users[(domain, user)] = sid
        return sid

    def add_group(self, domain: str, group: str) -> str:
        """Register a group in a domain and return its SID."""
        self._require_domain(domain)
        sid = "S-1-5-32-" + stable_digest("group", domain, group, length=12)
        self._groups[(domain, group)] = sid
        self._members.setdefault(sid, set())
        return sid

    def add_member(self, domain: str, group: str, member_domain: str,
                   member_user: str) -> None:
        """Add a user to a group (cross-domain membership allowed).

        :raises UnknownPrincipalError: if either principal is unknown.
        """
        group_sid = self.group_sid(domain, group)
        member_sid = self.sid_of(member_domain, member_user)
        self._members[group_sid].add(member_sid)

    def sid_of(self, domain: str, user: str) -> str:
        """SID of a user.

        :raises UnknownPrincipalError: if unknown.
        """
        try:
            return self._users[(domain, user)]
        except KeyError:
            raise UnknownPrincipalError(
                f"unknown user {domain}\\{user}") from None

    def group_sid(self, domain: str, group: str) -> str:
        """SID of a group.

        :raises UnknownPrincipalError: if unknown.
        """
        try:
            return self._groups[(domain, group)]
        except KeyError:
            raise UnknownPrincipalError(
                f"unknown group {domain}\\{group}") from None

    def has_user(self, user: str) -> bool:
        domain, _, name = user.partition("\\")
        return (domain, name) in self._users

    def token_sids(self, domain: str, user: str) -> frozenset[str]:
        """The access token: the user's SID, group SIDs, and Everyone."""
        sid = self.sid_of(domain, user)
        sids = {sid, self.EVERYONE_SID}
        changed = True
        while changed:
            changed = False
            for group_sid, members in self._members.items():
                if group_sid not in sids and members & sids:
                    sids.add(group_sid)
                    changed = True
        return frozenset(sids)

    def users_in_domain(self, domain: str) -> set[str]:
        """User names registered in a domain."""
        return {user for (dom, user) in self._users if dom == domain}

    # -- objects and ACLs ----------------------------------------------------------

    def create_object(self, name: str, owner: tuple[str, str]) -> None:
        """Create an ACL-protected object owned by (domain, user)."""
        owner_sid = self.sid_of(*owner)
        self._objects[name] = _SecurityDescriptor(owner_sid=owner_sid)

    def has_object(self, name: str) -> bool:
        """True if the object exists."""
        return name in self._objects

    def allow(self, name: str, sid: str, rights: set[str]) -> None:
        """Append an allow ACE."""
        self._objects[name].dacl.append(
            AccessControlEntry(sid=sid, rights=frozenset(rights), allow=True))

    def deny(self, name: str, sid: str, rights: set[str]) -> None:
        """Append a deny ACE (denies dominate, as on NT)."""
        self._objects[name].dacl.append(
            AccessControlEntry(sid=sid, rights=frozenset(rights), allow=False))

    def dacl_of(self, name: str) -> list[AccessControlEntry]:
        """The object's DACL (copy)."""
        return list(self._objects[name].dacl)

    # -- mediation -------------------------------------------------------------------

    def check_access(self, request: AccessRequest) -> bool:
        """NT access check: owner always allowed; deny ACEs dominate;
        otherwise any matching allow ACE grants."""
        descriptor = self._objects.get(request.obj)
        if descriptor is None:
            return False
        domain, _, user = request.user.partition("\\")
        try:
            token = self.token_sids(domain, user)
        except UnknownPrincipalError:
            return False
        if descriptor.owner_sid in token:
            return True
        allowed = False
        for ace in descriptor.dacl:
            if ace.sid not in token or request.access not in ace.rights:
                continue
            if not ace.allow:
                return False
            allowed = True
        return allowed

"""Command-line interface to the framework's policy services.

Subcommands mirror the paper's Section-4 services over policy files:

- ``tables``      — render a policy's Figure-1 style relation tables;
- ``encode``      — Policy Configuration input: policy JSON -> KeyNote
  credentials (the Figure-5 POLICY plus Figure-6 memberships);
- ``comprehend``  — Policy Comprehension: credentials -> policy JSON;
- ``query``       — run one KeyNote query against a credential file;
- ``check``       — RBAC access decision against a policy file;
- ``demo``        — run the built-in Salaries scenario end to end;
- ``trace``       — run an observed Secure WebCom scenario and dump the
  correlated trace tree (or the full JSON bundle);
- ``metrics``     — the same scenario, reporting the metrics registry;
- ``bench``       — machine-readable fast-path numbers (cold vs warm
  decision cache, batched vs single scheduling flights), the CI perf
  artifact (``BENCH_3.json``);
- ``health``      — seed-swept policy-plane resilience report (circuit
  breakers, degraded modes, partition/reconcile convergence), the CI
  chaos artifact (``HEALTH_4.json``);
- ``conformance`` — differential testing of backends, caches, translators
  and stack mediation against the naive oracle
  (:mod:`repro.oracle`), the CI artifact (``CONFORMANCE_5.json``).

Usage examples::

    python -m repro.cli tables --policy salaries.json
    python -m repro.cli encode --policy salaries.json --admin KWebCom
    python -m repro.cli query --credentials creds.kn \\
        --authorizer Kbob --attr app_domain=SalariesDB --attr oper=read
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.core.scenarios import salaries_policy
from repro.crypto.keystore import Keystore
from repro.keynote.api import KeyNoteSession
from repro.keynote.parser import parse_credentials
from repro.obs.export import export_json, metrics_to_dict, render_trace
from repro.rbac.serialize import policy_from_json, policy_to_json
from repro.report import metrics_report, observability_report
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.to_keynote import encode_full
from repro.webcom.scenario import run_observed_scenario


def _load_policy(path: str):
    if path == "-":
        return policy_from_json(sys.stdin.read())
    return policy_from_json(Path(path).read_text())


def _cmd_tables(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    print("HasPermission:")
    print(policy.has_permission_table())
    print("\nUserAssignment:")
    print(policy.user_assignment_table())
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    keystore = Keystore()
    policy_cred, memberships = encode_full(policy, args.admin, keystore)
    print(policy_cred.to_text())
    for credential in memberships:
        print(credential.to_text())
    return 0


def _cmd_comprehend(args: argparse.Namespace) -> int:
    text = (sys.stdin.read() if args.credentials == "-"
            else Path(args.credentials).read_text())
    credentials = parse_credentials(text)
    policy = comprehend_credentials(credentials, keystore=None,
                                    verify_signatures=False,
                                    name=args.name)
    print(policy_to_json(policy))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    text = (sys.stdin.read() if args.credentials == "-"
            else Path(args.credentials).read_text())
    session = KeyNoteSession(keystore=None, verify_signatures=False)
    for credential in parse_credentials(text):
        if credential.is_policy:
            session.add_policy(credential)
        else:
            session.add_credential(credential)
    attributes = {}
    for pair in args.attr or []:
        key, sep, value = pair.partition("=")
        if not sep:
            print(f"error: --attr needs name=value, got {pair!r}",
                  file=sys.stderr)
            return 2
        attributes[key] = value
    result = session.query(attributes, [args.authorizer])
    print(result.compliance_value)
    return 0 if result.authorized else 1


def _cmd_check(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    allowed = policy.check_access(args.user, args.object_type,
                                  args.permission)
    print("allow" if allowed else "deny")
    return 0 if allowed else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    policy = salaries_policy()
    if args.emit_policy:
        print(policy_to_json(policy))
        return 0
    keystore = Keystore()
    policy_cred, memberships = encode_full(policy, "KWebCom", keystore)
    recovered = comprehend_credentials([policy_cred] + memberships,
                                       keystore=keystore)
    exact = recovered == policy
    print("Salaries scenario:")
    print(f"  relations: {len(policy.grants)} grants, "
          f"{len(policy.assignments)} assignments")
    print(f"  credentials: 1 POLICY + {len(memberships)} memberships")
    print(f"  round-trip exact: {exact}")
    return 0 if exact else 1


def _emit(args: argparse.Namespace, text: str) -> None:
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)


def _bench_decision_cache(iterations: int) -> dict:
    """Cold vs warm KeyNote decision cache on the Figure-3 trust state.

    The credential set is the master-side policy of the observed scenario
    (POLICY trusting client keys for the scenario operations); "cold"
    flushes the decision cache before every query so each one pays the full
    fixpoint, "warm" lets identical queries hit the cache.
    """
    from time import perf_counter

    from repro.translate.common import ATTR_APP_DOMAIN, WEBCOM_APP_DOMAIN
    from repro.webcom.secure import ATTR_OPERATION, SecureWebComEnvironment

    env = SecureWebComEnvironment()
    env.create_key("Kmaster")
    keys = [env.create_key(f"Kc{i}") for i in range(4)]
    env.trust_clients_for_operations(keys, ["stage", "combine"])
    checker = env.master_session.checker
    attributes = {ATTR_APP_DOMAIN: WEBCOM_APP_DOMAIN,
                  ATTR_OPERATION: "stage"}
    authorizers = [keys[0]]

    start = perf_counter()
    for _ in range(iterations):
        checker.clear_decision_cache()
        cold_value = checker.query(attributes, authorizers)
    cold = perf_counter() - start

    checker.query(attributes, authorizers)  # prime
    start = perf_counter()
    for _ in range(iterations):
        warm_value = checker.query(attributes, authorizers)
    warm = perf_counter() - start

    return {
        "iterations": iterations,
        "cold_s": cold,
        "warm_s": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
        "cold_value": cold_value,
        "warm_value": warm_value,
        "values_agree": cold_value == warm_value,
        "cache": checker.cache_info(),
    }


def _bench_batched_scheduling(fan: int, clients: int) -> dict:
    """Batched vs single scheduling flights on a width-``fan`` wavefront."""
    SCHEDULING_KINDS = ("execute", "execute_batch", "result", "result_batch")
    out: dict = {"fan": fan, "clients": clients}
    for batch in (False, True):
        run = run_observed_scenario(fan=fan, n_clients=clients, batch=batch)
        network = run.master.network
        flights = sum(1 for message in network.delivered
                      if message.kind in SCHEDULING_KINDS)
        key = "batched" if batch else "single"
        out[f"flights_{key}"] = flights
        out[f"result_{key}"] = run.result
    out["results_agree"] = out["result_single"] == out["result_batched"]
    return out


def _bench_signature_cache(rebuilds: int) -> dict:
    """Repeated one-shot queries over a signed delegation chain: the
    process-wide signature cache verifies each credential's bytes once,
    not once per checker build."""
    from repro.crypto.keystore import SIGNATURE_CACHE
    from repro.keynote.compliance import evaluate_query
    from repro.keynote.credential import Credential

    keystore = Keystore()
    names = [f"Kb{i}" for i in range(6)]
    for name in names:
        keystore.create(name)
    assertions = [Credential.build("POLICY", f'"{names[0]}"', "true")]
    for issuer, licensee in zip(names, names[1:]):
        assertions.append(
            Credential.build(issuer, f'"{licensee}"', "true").sign(
                keystore.pair(issuer).private))
    SIGNATURE_CACHE.clear()
    for _ in range(rebuilds):
        value = evaluate_query(assertions, {}, [names[-1]],
                               keystore=keystore)
    stats = SIGNATURE_CACHE.stats()
    return {
        "rebuilds": rebuilds,
        "signed_credentials": len(assertions) - 1,
        "value": value,
        "verifications_run": stats["misses"],
        "verifications_served_cached": stats["hits"],
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    report = {
        "bench": "BENCH_3",
        "description": "authorisation fast path: decision cache + "
                       "batched scheduling",
        "decision_cache": _bench_decision_cache(args.iterations),
        "batched_scheduling": _bench_batched_scheduling(args.fan,
                                                        args.clients),
        "sigverify_cache": _bench_signature_cache(rebuilds=20),
    }
    _emit(args, json.dumps(report, indent=2))
    if not args.check:
        return 0
    failures = []
    cache = report["decision_cache"]
    batched = report["batched_scheduling"]
    if not cache["values_agree"]:
        failures.append("cold and warm compliance values differ")
    if cache["speedup"] < args.min_speedup:
        failures.append(
            f"warm-cache speedup {cache['speedup']:.1f}x is below the "
            f"required {args.min_speedup:.1f}x")
    if not batched["results_agree"]:
        failures.append("batched and single scheduling results differ")
    if batched["flights_batched"] >= batched["flights_single"]:
        failures.append(
            f"batching did not reduce flights "
            f"({batched['flights_batched']} >= {batched['flights_single']})")
    sigverify = report["sigverify_cache"]
    if sigverify["verifications_run"] > sigverify["signed_credentials"]:
        failures.append(
            f"signature cache ran {sigverify['verifications_run']} "
            f"verifications for {sigverify['signed_credentials']} "
            f"credentials")
    for failure in failures:
        print(f"bench check failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Seed-swept policy-plane chaos report (the ``chaos-policy-plane`` CI
    artifact): degraded mediation under layer timeouts plus
    partition/reconcile convergence."""
    from repro.webcom.scenario import run_policy_chaos_scenario

    runs = [run_policy_chaos_scenario(seed, rounds=args.rounds)
            for seed in range(args.seeds)]
    summaries = [run.summary() for run in runs]
    converged = sum(1 for s in summaries if s["converged"])
    report = {
        "report": "HEALTH_4",
        "description": "policy-plane resilience: breakers, degraded modes, "
                       "anti-entropy reconciliation",
        "seeds": args.seeds,
        "rounds": args.rounds,
        "converged": converged,
        "all_converged": converged == args.seeds,
        "stale_served_total": sum(s["stale_served"] for s in summaries),
        "degraded_mediations_total": sum(s["degraded_mediations"]
                                         for s in summaries),
        "injected_timeouts_total": sum(s["injected_timeouts"]
                                       for s in summaries),
        "runs": summaries,
    }
    if args.json:
        _emit(args, json.dumps(report, indent=2))
    else:
        lines = [f"policy-plane health: {converged}/{args.seeds} seeds "
                 f"converged",
                 f"  degraded mediations: "
                 f"{report['degraded_mediations_total']}",
                 f"  stale decisions served (disclosed): "
                 f"{report['stale_served_total']}",
                 f"  injected layer timeouts: "
                 f"{report['injected_timeouts_total']}"]
        for s in summaries:
            if not s["converged"]:
                lines.append(f"  seed {s['seed']}: NOT converged")
        _emit(args, "\n".join(lines))
    if args.check and converged != args.seeds:
        print(f"health check failed: only {converged}/{args.seeds} seeds "
              f"converged", file=sys.stderr)
        return 1
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    """Seeded differential sweep against the conformance oracle (the
    ``CONFORMANCE_5.json`` CI artifact)."""
    from repro.oracle.differ import run_conformance
    from repro.report import conformance_report

    report = run_conformance(args.seed, args.cases,
                             shrink=not args.no_shrink)
    if args.json:
        _emit(args, json.dumps(report, indent=2))
    else:
        _emit(args, conformance_report(report))
    if args.check and report["counterexamples"]:
        print(f"conformance check failed: "
              f"{len(report['counterexamples'])} counterexample(s) found "
              f"(known-lossy cases excluded)", file=sys.stderr)
        return 1
    return 0


def _cmd_durability(args: argparse.Namespace) -> int:
    """Seeded kill-at-every-write-site crash-recovery sweep (the
    ``DURABILITY_6.json`` CI artifact)."""
    from repro.report import durability_report
    from repro.store.harness import run_durability_sweep

    report = run_durability_sweep(args.seeds, args.ops)
    if args.json:
        _emit(args, json.dumps(report, indent=2))
    else:
        _emit(args, durability_report(report))
    if args.check and not report["ok"]:
        print(f"durability check failed: "
              f"{report['acked_loss_total']} acknowledged update(s) lost, "
              f"{report['oracle_disagreements_total']} oracle "
              f"disagreement(s), {len(report['failures'])} failure(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on authorisation daemon until interrupted."""
    import asyncio

    from repro.serve.admission import AdmissionController, BrownoutController
    from repro.serve.plane import ServePolicyPlane
    from repro.serve.server import ReproServer

    async def _serve() -> int:
        plane = ServePolicyPlane(root=args.root, cache_ttl=args.cache_ttl)
        admission = AdmissionController(
            clock=plane.clock, max_inflight=args.max_inflight,
            peer_rate=args.peer_rate, peer_burst=args.peer_burst,
            obs=plane.obs,
            brownout=BrownoutController(clock=plane.clock, obs=plane.obs))
        server = ReproServer(plane, host=args.host, port=args.port,
                             pidfile=args.pidfile, admission=admission)
        await server.start()
        print(f"repro serve listening on {server.host}:{server.port}"
              + (f" (durable root {args.root})" if args.root else
                 " (in-memory)"))
        try:
            await server.serve_until_shutdown()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            pass
        finally:
            report = await server.shutdown("operator")
            print(f"drained: {report['requests_served']} requests served, "
                  f"WAL flushed: {report['wal_flushed']}")
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Wall-clock concurrency benchmark of the serve daemon (the
    ``BENCH_7.json`` CI artifact)."""
    from repro.report import serve_bench_report
    from repro.serve.bench import check_bench, run_serve_bench

    report = run_serve_bench(clients=args.clients, requests=args.requests,
                             probe_every=args.probe_every, root=args.root)
    if args.json:
        _emit(args, json.dumps(report, indent=2))
    else:
        _emit(args, serve_bench_report(report))
    if not args.check:
        return 0
    failures = check_bench(report, min_clients=args.min_clients)
    for failure in failures:
        print(f"serve-bench check failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_overload_bench(args: argparse.Namespace) -> int:
    """Hostile-traffic overload benchmark (the ``OVERLOAD_9.json`` CI
    artifact): flash crowd, cache busting and a revocation storm against
    a daemon under tight admission limits."""
    from repro.report import overload_bench_report
    from repro.serve.overload import check_overload, run_overload_bench

    report = run_overload_bench(clients=args.clients,
                                requests=args.requests,
                                probe_every=args.probe_every,
                                max_inflight=args.max_inflight,
                                peer_rate=args.peer_rate,
                                peer_burst=args.peer_burst, seed=args.seed,
                                root=args.root)
    if args.json:
        _emit(args, json.dumps(report, indent=2))
    else:
        _emit(args, overload_bench_report(report))
    if not args.check:
        return 0
    failures = check_overload(report, goodput_floor=args.goodput_floor,
                              p99_ceiling_ms=args.p99_ceiling_ms)
    for failure in failures:
        print(f"overload-bench check failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    """Compiled bitset-engine benchmark (the ``BENCH_8.json`` CI
    artifact): cold/warm check latency and batch throughput, compiled vs
    set-based, plus a three-way oracle equivalence sweep."""
    from repro.rbac.bench import check_engine_bench, run_engine_bench
    from repro.report import engine_bench_report

    report = run_engine_bench(users=args.users, roles=args.roles,
                              batch=args.batch,
                              set_based_sample=args.set_based_sample,
                              seed=args.seed)
    if args.json:
        _emit(args, json.dumps(report, indent=2))
    else:
        _emit(args, engine_bench_report(report))
    if not args.check:
        return 0
    failures = check_engine_bench(report, min_speedup=args.min_speedup)
    for failure in failures:
        print(f"bench-engine check failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_bench_churn(args: argparse.Namespace) -> int:
    """Incremental-invalidation churn benchmark (the ``BENCH_10.json`` CI
    artifact): warm-hit ratio and per-update cost under a churn-heavy
    Zipfian mix, dependency-indexed eviction vs generation-flush, plus
    oracle cross-checks, RBAC edge-delta churn and mediation-cache
    survival."""
    from repro.keynote.bench import check_churn_bench, run_churn_bench
    from repro.report import churn_bench_report

    report = run_churn_bench(users=args.users, teams=args.teams,
                             orgs=args.orgs, steps=args.steps,
                             queries_per_step=args.queries_per_step,
                             oracle_samples=args.oracle_samples,
                             seed=args.seed)
    if args.json:
        _emit(args, json.dumps(report, indent=2))
    else:
        _emit(args, churn_bench_report(report))
    if not args.check:
        return 0
    failures = check_churn_bench(
        report, min_hit_improvement=args.min_hit_improvement)
    for failure in failures:
        print(f"bench-churn check failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    run = run_observed_scenario(depth=args.depth, n_clients=args.clients,
                                faults=args.faults, seed=args.seed,
                                stack_ttl=args.stack_ttl)
    if args.json:
        _emit(args, export_json(run.obs))
    else:
        _emit(args, render_trace(run.obs.tracer.spans, run.correlation_id))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    run = run_observed_scenario(depth=args.depth, n_clients=args.clients,
                                faults=args.faults, seed=args.seed,
                                stack_ttl=args.stack_ttl)
    if args.json:
        _emit(args, json.dumps(metrics_to_dict(run.obs.metrics), indent=2))
    elif args.summary:
        _emit(args, observability_report(run.obs))
    else:
        _emit(args, metrics_report(run.obs.metrics))
    return 0


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--depth", type=int, default=4,
                        help="pipeline depth of the observed scenario")
    parser.add_argument("--clients", type=int, default=2,
                        help="number of stack-mediated clients")
    parser.add_argument("--faults", action="store_true",
                        help="inject seeded message drops (forces retries)")
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-plan seed (with --faults)")
    parser.add_argument("--stack-ttl", type=float, default=None,
                        help="enable the clients' stack mediation cache "
                             "with this TTL in simulated seconds")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of the text rendering")
    parser.add_argument("--out", default=None,
                        help="write the output to a file instead of stdout")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous middleware security framework "
                    "(Foley et al., IPPS 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="render relation tables")
    p_tables.add_argument("--policy", required=True,
                          help="policy JSON file ('-' for stdin)")
    p_tables.set_defaults(func=_cmd_tables)

    p_encode = sub.add_parser("encode",
                              help="policy JSON -> KeyNote credentials")
    p_encode.add_argument("--policy", required=True)
    p_encode.add_argument("--admin", default="KWebCom",
                          help="administration key name")
    p_encode.set_defaults(func=_cmd_encode)

    p_compr = sub.add_parser("comprehend",
                             help="KeyNote credentials -> policy JSON")
    p_compr.add_argument("--credentials", required=True,
                         help="credential file ('-' for stdin)")
    p_compr.add_argument("--name", default="comprehended")
    p_compr.set_defaults(func=_cmd_comprehend)

    p_query = sub.add_parser("query", help="one KeyNote query")
    p_query.add_argument("--credentials", required=True)
    p_query.add_argument("--authorizer", required=True)
    p_query.add_argument("--attr", action="append",
                         help="action attribute name=value (repeatable)")
    p_query.set_defaults(func=_cmd_query)

    p_check = sub.add_parser("check", help="RBAC access decision")
    p_check.add_argument("--policy", required=True)
    p_check.add_argument("--user", required=True)
    p_check.add_argument("--object-type", required=True)
    p_check.add_argument("--permission", required=True)
    p_check.set_defaults(func=_cmd_check)

    p_demo = sub.add_parser("demo", help="built-in Salaries scenario")
    p_demo.add_argument("--emit-policy", action="store_true",
                        help="print the Figure-1 policy as JSON and exit")
    p_demo.set_defaults(func=_cmd_demo)

    p_trace = sub.add_parser(
        "trace", help="dump the correlated trace of one observed scenario")
    _add_scenario_arguments(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="dump the metrics of one observed scenario")
    _add_scenario_arguments(p_metrics)
    p_metrics.add_argument("--summary", action="store_true",
                           help="prepend a one-line trace summary")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_bench = sub.add_parser(
        "bench", help="machine-readable authorisation fast-path benchmark")
    p_bench.add_argument("--iterations", type=int, default=200,
                         help="queries per timing loop")
    p_bench.add_argument("--fan", type=int, default=8,
                         help="wavefront width of the batching comparison")
    p_bench.add_argument("--clients", type=int, default=2,
                         help="clients in the batching comparison")
    p_bench.add_argument("--check", action="store_true",
                         help="exit non-zero unless the warm cache beats "
                              "cold by --min-speedup and batching reduces "
                              "flights")
    p_bench.add_argument("--min-speedup", type=float, default=5.0,
                         help="required cold/warm speedup with --check")
    p_bench.add_argument("--out", default=None,
                         help="write the JSON report to a file")
    p_bench.set_defaults(func=_cmd_bench)

    p_health = sub.add_parser(
        "health", help="policy-plane resilience report (breakers, degraded "
                       "modes, partition/reconcile)")
    p_health.add_argument("--seeds", type=int, default=20,
                          help="chaos seeds to sweep")
    p_health.add_argument("--rounds", type=int, default=30,
                          help="mediations per seed (one per simulated "
                               "second)")
    p_health.add_argument("--check", action="store_true",
                          help="exit non-zero unless every seed converges")
    p_health.add_argument("--json", action="store_true",
                          help="emit the full JSON report")
    p_health.add_argument("--out", default=None,
                          help="write the output to a file instead of stdout")
    p_health.set_defaults(func=_cmd_health)

    p_conf = sub.add_parser(
        "conformance", help="differential testing against the naive oracle")
    p_conf.add_argument("--seed", type=int, default=0,
                        help="generator seed for the case sweep")
    p_conf.add_argument("--cases", type=int, default=200,
                        help="number of generated cases (cycled over the "
                             "four check families)")
    p_conf.add_argument("--check", action="store_true",
                        help="exit non-zero on any non-lossy disagreement")
    p_conf.add_argument("--no-shrink", action="store_true",
                        help="report raw counterexamples without shrinking")
    p_conf.add_argument("--json", action="store_true",
                        help="emit the full JSON report")
    p_conf.add_argument("--out", default=None,
                        help="write the output to a file instead of stdout")
    p_conf.set_defaults(func=_cmd_conformance)

    p_dur = sub.add_parser(
        "durability", help="kill-at-every-write-site crash-recovery sweep")
    p_dur.add_argument("--seeds", type=int, default=10,
                       help="workload seeds to sweep (each kills every "
                            "write site once)")
    p_dur.add_argument("--ops", type=int, default=24,
                       help="mutation ops per workload run")
    p_dur.add_argument("--check", action="store_true",
                       help="exit non-zero on any acknowledged-update loss "
                            "or post-recovery oracle disagreement")
    p_dur.add_argument("--json", action="store_true",
                       help="emit the full JSON report")
    p_dur.add_argument("--out", default=None,
                       help="write the output to a file instead of stdout")
    p_dur.set_defaults(func=_cmd_durability)

    p_serve = sub.add_parser(
        "serve", help="run the always-on authorisation daemon")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind")
    p_serve.add_argument("--port", type=int, default=4774,
                         help="TCP port (0 picks a free port)")
    p_serve.add_argument("--root", default=None,
                         help="durability root directory (WAL + snapshots); "
                              "omit for an in-memory plane")
    p_serve.add_argument("--pidfile", default=None,
                         help="PID file enforcing one daemon per root")
    p_serve.add_argument("--cache-ttl", type=float, default=30.0,
                         help="mediation-cache TTL in wall seconds")
    p_serve.add_argument("--max-inflight", type=int, default=256,
                         help="global in-flight budget for non-control "
                              "requests (admission control)")
    p_serve.add_argument("--peer-rate", type=float, default=None,
                         help="per-peer admitted requests/second "
                              "(default: no per-peer rate limit)")
    p_serve.add_argument("--peer-burst", type=float, default=None,
                         help="per-peer burst allowance (default 2x rate)")
    p_serve.set_defaults(func=_cmd_serve)

    p_sbench = sub.add_parser(
        "serve-bench", help="wall-clock concurrency benchmark of the serve "
                            "daemon")
    p_sbench.add_argument("--clients", type=int, default=32,
                          help="concurrent client connections")
    p_sbench.add_argument("--requests", type=int, default=12,
                          help="requests per client per pass")
    p_sbench.add_argument("--probe-every", type=int, default=4,
                          help="every Nth request is an oracle probe "
                               "(0 disables probing)")
    p_sbench.add_argument("--min-clients", type=int, default=32,
                          help="concurrency floor enforced with --check")
    p_sbench.add_argument("--root", default=None,
                          help="durability root (default: a fresh temp dir)")
    p_sbench.add_argument("--check", action="store_true",
                          help="exit non-zero unless every correctness gate "
                               "passes (concurrency floor, zero oracle "
                               "disagreements, clean drain)")
    p_sbench.add_argument("--json", action="store_true",
                          help="emit the full JSON report")
    p_sbench.add_argument("--out", default=None,
                          help="write the output to a file instead of stdout")
    p_sbench.set_defaults(func=_cmd_serve_bench)

    p_obench = sub.add_parser(
        "overload-bench", help="hostile-traffic overload benchmark of the "
                               "serve daemon (flash crowd, cache busting, "
                               "revocation storm)")
    p_obench.add_argument("--clients", type=int, default=16,
                          help="flood clients (4x the baseline population)")
    p_obench.add_argument("--requests", type=int, default=40,
                          help="requests per flood client per scenario")
    p_obench.add_argument("--probe-every", type=int, default=5,
                          help="every Nth request is an oracle probe "
                               "(0 disables probing)")
    p_obench.add_argument("--max-inflight", type=int, default=4,
                          help="deliberately tight in-flight budget")
    p_obench.add_argument("--peer-rate", type=float, default=10.0,
                          help="deliberately tight per-peer rate limit")
    p_obench.add_argument("--peer-burst", type=float, default=5.0,
                          help="deliberately small per-peer burst (the "
                               "flood must outlast it)")
    p_obench.add_argument("--seed", type=int, default=9,
                          help="traffic/jitter seed")
    p_obench.add_argument("--goodput-floor", type=float, default=0.5,
                          help="worst-scenario/baseline goodput ratio "
                               "floor enforced with --check")
    p_obench.add_argument("--p99-ceiling-ms", type=float, default=2500.0,
                          help="accepted-request p99 ceiling (ms) enforced "
                               "with --check")
    p_obench.add_argument("--root", default=None,
                          help="durability root (default: a fresh temp dir)")
    p_obench.add_argument("--check", action="store_true",
                          help="exit non-zero unless every robustness gate "
                               "passes (goodput floor, bounded p99, zero "
                               "lost requests, accounting identity, "
                               "control plane never shed, zero oracle "
                               "disagreements)")
    p_obench.add_argument("--json", action="store_true",
                          help="emit the full JSON report")
    p_obench.add_argument("--out", default=None,
                          help="write the output to a file instead of "
                               "stdout")
    p_obench.set_defaults(func=_cmd_overload_bench)

    p_ebench = sub.add_parser(
        "bench-engine", help="compiled bitset RBAC engine benchmark "
                             "(cold/warm vs set-based + oracle sweep)")
    p_ebench.add_argument("--users", type=int, default=100_000,
                          help="synthetic user universe size")
    p_ebench.add_argument("--roles", type=int, default=10_000,
                          help="synthetic role universe size")
    p_ebench.add_argument("--batch", type=int, default=20_000,
                          help="check_access_many batch size (Zipfian mix)")
    p_ebench.add_argument("--set-based-sample", type=int, default=150,
                          help="cold checks answered by the set-based "
                               "comparator (extrapolated per-check)")
    p_ebench.add_argument("--seed", type=int, default=8,
                          help="universe/workload seed")
    p_ebench.add_argument("--min-speedup", type=float, default=5.0,
                          help="cold-path speedup floor enforced "
                               "with --check")
    p_ebench.add_argument("--check", action="store_true",
                          help="exit non-zero unless every gate passes "
                               "(speedup floor, answer agreement, zero "
                               "oracle disagreements)")
    p_ebench.add_argument("--json", action="store_true",
                          help="emit the full JSON report")
    p_ebench.add_argument("--out", default=None,
                          help="write the output to a file instead of "
                               "stdout")
    p_ebench.set_defaults(func=_cmd_bench_engine)

    p_cbench = sub.add_parser(
        "bench-churn", help="incremental invalidation vs generation-flush "
                            "under churn-heavy Zipfian traffic")
    p_cbench.add_argument("--users", type=int, default=400,
                          help="delegation-universe user count")
    p_cbench.add_argument("--teams", type=int, default=20,
                          help="delegation-universe team count")
    p_cbench.add_argument("--orgs", type=int, default=4,
                          help="delegation-universe org count")
    p_cbench.add_argument("--steps", type=int, default=60,
                          help="proxy-renewal churn steps")
    p_cbench.add_argument("--queries-per-step", type=int, default=8,
                          help="Zipfian queries interleaved per churn step")
    p_cbench.add_argument("--oracle-samples", type=int, default=60,
                          help="post-churn decisions replayed against the "
                               "naive oracle and a cold checker")
    p_cbench.add_argument("--seed", type=int, default=10,
                          help="universe/workload seed")
    p_cbench.add_argument("--min-hit-improvement", type=float, default=5.0,
                          help="warm-hit ratio improvement floor enforced "
                               "with --check")
    p_cbench.add_argument("--check", action="store_true",
                          help="exit non-zero unless every gate passes "
                               "(hit-ratio floor, cost bound, zero "
                               "disagreements, no rebuilds, cache "
                               "survival)")
    p_cbench.add_argument("--json", action="store_true",
                          help="emit the full JSON report")
    p_cbench.add_argument("--out", default=None,
                          help="write the output to a file instead of "
                               "stdout")
    p_cbench.set_defaults(func=_cmd_bench_churn)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

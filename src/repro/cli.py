"""Command-line interface to the framework's policy services.

Subcommands mirror the paper's Section-4 services over policy files:

- ``tables``      — render a policy's Figure-1 style relation tables;
- ``encode``      — Policy Configuration input: policy JSON -> KeyNote
  credentials (the Figure-5 POLICY plus Figure-6 memberships);
- ``comprehend``  — Policy Comprehension: credentials -> policy JSON;
- ``query``       — run one KeyNote query against a credential file;
- ``check``       — RBAC access decision against a policy file;
- ``demo``        — run the built-in Salaries scenario end to end;
- ``trace``       — run an observed Secure WebCom scenario and dump the
  correlated trace tree (or the full JSON bundle);
- ``metrics``     — the same scenario, reporting the metrics registry.

Usage examples::

    python -m repro.cli tables --policy salaries.json
    python -m repro.cli encode --policy salaries.json --admin KWebCom
    python -m repro.cli query --credentials creds.kn \\
        --authorizer Kbob --attr app_domain=SalariesDB --attr oper=read
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.core.scenarios import salaries_policy
from repro.crypto.keystore import Keystore
from repro.keynote.api import KeyNoteSession
from repro.keynote.parser import parse_credentials
from repro.obs.export import export_json, metrics_to_dict, render_trace
from repro.rbac.serialize import policy_from_json, policy_to_json
from repro.report import metrics_report, observability_report
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.to_keynote import encode_full
from repro.webcom.scenario import run_observed_scenario


def _load_policy(path: str):
    if path == "-":
        return policy_from_json(sys.stdin.read())
    return policy_from_json(Path(path).read_text())


def _cmd_tables(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    print("HasPermission:")
    print(policy.has_permission_table())
    print("\nUserAssignment:")
    print(policy.user_assignment_table())
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    keystore = Keystore()
    policy_cred, memberships = encode_full(policy, args.admin, keystore)
    print(policy_cred.to_text())
    for credential in memberships:
        print(credential.to_text())
    return 0


def _cmd_comprehend(args: argparse.Namespace) -> int:
    text = (sys.stdin.read() if args.credentials == "-"
            else Path(args.credentials).read_text())
    credentials = parse_credentials(text)
    policy = comprehend_credentials(credentials, keystore=None,
                                    verify_signatures=False,
                                    name=args.name)
    print(policy_to_json(policy))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    text = (sys.stdin.read() if args.credentials == "-"
            else Path(args.credentials).read_text())
    session = KeyNoteSession(keystore=None, verify_signatures=False)
    for credential in parse_credentials(text):
        if credential.is_policy:
            session.add_policy(credential)
        else:
            session.add_credential(credential)
    attributes = {}
    for pair in args.attr or []:
        key, sep, value = pair.partition("=")
        if not sep:
            print(f"error: --attr needs name=value, got {pair!r}",
                  file=sys.stderr)
            return 2
        attributes[key] = value
    result = session.query(attributes, [args.authorizer])
    print(result.compliance_value)
    return 0 if result.authorized else 1


def _cmd_check(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    allowed = policy.check_access(args.user, args.object_type,
                                  args.permission)
    print("allow" if allowed else "deny")
    return 0 if allowed else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    policy = salaries_policy()
    if args.emit_policy:
        print(policy_to_json(policy))
        return 0
    keystore = Keystore()
    policy_cred, memberships = encode_full(policy, "KWebCom", keystore)
    recovered = comprehend_credentials([policy_cred] + memberships,
                                       keystore=keystore)
    exact = recovered == policy
    print("Salaries scenario:")
    print(f"  relations: {len(policy.grants)} grants, "
          f"{len(policy.assignments)} assignments")
    print(f"  credentials: 1 POLICY + {len(memberships)} memberships")
    print(f"  round-trip exact: {exact}")
    return 0 if exact else 1


def _emit(args: argparse.Namespace, text: str) -> None:
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)


def _cmd_trace(args: argparse.Namespace) -> int:
    run = run_observed_scenario(depth=args.depth, n_clients=args.clients,
                                faults=args.faults, seed=args.seed)
    if args.json:
        _emit(args, export_json(run.obs))
    else:
        _emit(args, render_trace(run.obs.tracer.spans, run.correlation_id))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    run = run_observed_scenario(depth=args.depth, n_clients=args.clients,
                                faults=args.faults, seed=args.seed)
    if args.json:
        _emit(args, json.dumps(metrics_to_dict(run.obs.metrics), indent=2))
    elif args.summary:
        _emit(args, observability_report(run.obs))
    else:
        _emit(args, metrics_report(run.obs.metrics))
    return 0


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--depth", type=int, default=4,
                        help="pipeline depth of the observed scenario")
    parser.add_argument("--clients", type=int, default=2,
                        help="number of stack-mediated clients")
    parser.add_argument("--faults", action="store_true",
                        help="inject seeded message drops (forces retries)")
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-plan seed (with --faults)")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of the text rendering")
    parser.add_argument("--out", default=None,
                        help="write the output to a file instead of stdout")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous middleware security framework "
                    "(Foley et al., IPPS 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="render relation tables")
    p_tables.add_argument("--policy", required=True,
                          help="policy JSON file ('-' for stdin)")
    p_tables.set_defaults(func=_cmd_tables)

    p_encode = sub.add_parser("encode",
                              help="policy JSON -> KeyNote credentials")
    p_encode.add_argument("--policy", required=True)
    p_encode.add_argument("--admin", default="KWebCom",
                          help="administration key name")
    p_encode.set_defaults(func=_cmd_encode)

    p_compr = sub.add_parser("comprehend",
                             help="KeyNote credentials -> policy JSON")
    p_compr.add_argument("--credentials", required=True,
                         help="credential file ('-' for stdin)")
    p_compr.add_argument("--name", default="comprehended")
    p_compr.set_defaults(func=_cmd_comprehend)

    p_query = sub.add_parser("query", help="one KeyNote query")
    p_query.add_argument("--credentials", required=True)
    p_query.add_argument("--authorizer", required=True)
    p_query.add_argument("--attr", action="append",
                         help="action attribute name=value (repeatable)")
    p_query.set_defaults(func=_cmd_query)

    p_check = sub.add_parser("check", help="RBAC access decision")
    p_check.add_argument("--policy", required=True)
    p_check.add_argument("--user", required=True)
    p_check.add_argument("--object-type", required=True)
    p_check.add_argument("--permission", required=True)
    p_check.set_defaults(func=_cmd_check)

    p_demo = sub.add_parser("demo", help="built-in Salaries scenario")
    p_demo.add_argument("--emit-policy", action="store_true",
                        help="print the Figure-1 policy as JSON and exit")
    p_demo.set_defaults(func=_cmd_demo)

    p_trace = sub.add_parser(
        "trace", help="dump the correlated trace of one observed scenario")
    _add_scenario_arguments(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="dump the metrics of one observed scenario")
    _add_scenario_arguments(p_metrics)
    p_metrics.add_argument("--summary", action="store_true",
                           help="prepend a one-line trace summary")
    p_metrics.set_defaults(func=_cmd_metrics)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

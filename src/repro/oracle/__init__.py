"""Conformance oracle: naive reference semantics for the authorisation plane.

The production code answers every authorisation question through layers of
machinery grown for speed and resilience — precompiled conditions, memoised
fixpoints, generation-stamped decision caches, batched queries, mediation
caches, circuit breakers.  This package answers the *same* questions with
deliberately naive implementations a reviewer can check against Section 2
and RFC 2704 by eye:

- :mod:`repro.oracle.rbac_oracle` — the extended RBAC relations as plain
  set comprehensions with an iterate-to-fixpoint hierarchy closure;
- :mod:`repro.oracle.keynote_oracle` — the KeyNote compliance value as a
  Kleene iteration from bottom over the whole principal graph, using the
  tree-walking condition evaluator (no memo, no caches, no compilation);
- :mod:`repro.oracle.gen` — seeded generators for random policies,
  deployments, credential graphs and request workloads;
- :mod:`repro.oracle.differ` — the differential harness cross-checking
  every backend, translator, cache and the full mediation stack against
  the oracle, shrinking any disagreement to a minimal replayable case.
"""

from repro.oracle.rbac_oracle import RBACOracle
from repro.oracle.keynote_oracle import (
    oracle_authorises,
    oracle_compliance_value,
)

__all__ = [
    "RBACOracle",
    "oracle_authorises",
    "oracle_compliance_value",
]

"""Seeded generators for differential-testing cases.

Every generator takes a :class:`random.Random` and returns a plain-JSON
*case dict*: a self-contained description from which
:mod:`repro.oracle.differ` rebuilds every subject under test.  Keeping
cases as data (relation tuples, credential texts, probe lists) is what
makes shrinking and replay trivial — a counterexample is just a smaller
case dict, serialisable as-is.

Vocabulary notes:

- User names are chosen ``capitalize()``-stable (``"Alice"``,
  ``"Bob"``...) so the Figure-6 key-name convention (``Kalice`` ↔
  ``Alice``) round-trips exactly through policy comprehension.
- COM+ cases use a single NT domain: a COM+ invocation principal is
  ``"DOMAIN\\user"`` while the Section-2 interpretation keeps the bare
  user, so with one domain the two readings are a bijection (multi-domain
  structure is exercised through the EJB cases instead).
- EJB cases may mark methods ``<unchecked/>``: the backend then allows any
  principal while the RBAC reading names no role — the differ classifies
  such mismatches as known-lossy, mirroring the ``extract_rbac`` caveat.
"""

from __future__ import annotations

import random

from repro.keynote.credential import Credential
from repro.middleware.complus import COM_PERMISSIONS

USERS = ("Alice", "Bob", "Carol", "Dave", "Eve", "Frank", "Grace", "Heidi")
ROLES = ("Manager", "Clerk", "Auditor", "Engineer", "Operator")
OBJECTS = ("SalariesDB", "AccountsDB", "ReportSvc", "PrintSvc", "BuildFarm")
PERMISSIONS = ("read", "write", "execute", "approve", "view")

#: attribute vocabulary for generated KeyNote conditions
ATTR_VOCAB = {
    "app_domain": ("db", "web", "batch"),
    "op": ("read", "write", "execute", "approve", "view"),
    "level": ("1", "2", "3", "4"),
}


# -- relation generators ------------------------------------------------------

def gen_relations(rng: random.Random, domains: list[str],
                  permissions: tuple[str, ...] = PERMISSIONS,
                  ) -> tuple[list[list[str]], list[list[str]]]:
    """Random HasPermission / UserAssignment tuples over the vocabulary."""
    grants = {(rng.choice(domains), rng.choice(ROLES), rng.choice(OBJECTS),
               rng.choice(permissions))
              for _ in range(rng.randint(2, 6))}
    assignments = {(rng.choice(USERS), rng.choice(domains), rng.choice(ROLES))
                   for _ in range(rng.randint(2, 6))}
    return ([list(g) for g in sorted(grants)],
            [list(a) for a in sorted(assignments)])


def gen_probes(rng: random.Random, grants: list[list[str]],
               assignments: list[list[str]],
               permissions: tuple[str, ...] = PERMISSIONS,
               count: int | None = None) -> list[list[str]]:
    """A request workload mixing likely-allowed joins with random misses."""
    probes = []
    for _ in range(count if count is not None else rng.randint(6, 10)):
        if grants and assignments and rng.random() < 0.6:
            user = rng.choice(assignments)[0]
            _d, _r, object_type, permission = rng.choice(grants)
            probes.append([user, object_type, permission])
        else:
            probes.append([rng.choice(USERS + ("Mallory",)),
                           rng.choice(OBJECTS), rng.choice(permissions)])
    return probes


# -- middleware cases ---------------------------------------------------------

def gen_middleware_case(rng: random.Random, label: str = "") -> dict:
    """A random deployment of one backend kind plus an invocation workload."""
    kind = rng.choice(("corba", "ejb", "complus"))
    case: dict = {"check": "middleware", "kind": kind, "label": label}
    if kind == "corba":
        case["machine"], case["orb"] = "orbhost", "orb1"
        domains = [f"{case['machine']}/{case['orb']}"]
        permissions = PERMISSIONS
    elif kind == "ejb":
        case["host"], case["server"] = "ejbhost", "ejb1"
        containers = rng.sample(("Payroll", "Accounts"), rng.randint(1, 2))
        case["containers"] = containers
        domains = [f"{case['host']}:{case['server']}/{c}" for c in containers]
        permissions = PERMISSIONS
    else:
        case["machine"] = "winbox"
        domains = [rng.choice(("CORP", "FINANCE"))]
        permissions = COM_PERMISSIONS
    case["domains"] = domains
    grants, assignments = gen_relations(rng, domains, permissions)
    case["grants"], case["assignments"] = grants, assignments
    case["unchecked"], case["excluded"] = [], []
    if kind == "ejb" and grants:
        # Native descriptor features with no clean RBAC reading.
        if rng.random() < 0.5:
            domain, _role, bean, method = rng.choice(grants)
            case["unchecked"].append([domain, bean, method])
        if rng.random() < 0.3:
            domain, _role, bean, method = rng.choice(grants)
            case["excluded"].append([domain, bean, method])
    case["probes"] = gen_probes(rng, grants, assignments, permissions)
    for _domain, bean, method in case["unchecked"]:
        case["probes"].append([rng.choice(USERS), bean, method])
    return case


# -- KeyNote cases ------------------------------------------------------------

def _gen_conditions(rng: random.Random) -> str:
    """A small random Conditions body over :data:`ATTR_VOCAB`."""
    if rng.random() < 0.15:
        return "true"
    terms = []
    for attribute in rng.sample(sorted(ATTR_VOCAB), rng.randint(1, 2)):
        choices = ATTR_VOCAB[attribute]
        if attribute == "level" and rng.random() < 0.5:
            terms.append(f"{attribute} <= {rng.choice(choices)}")
        elif rng.random() < 0.3:
            pair = rng.sample(choices, 2)
            terms.append(f'({attribute}=="{pair[0]}" || '
                         f'{attribute}=="{pair[1]}")')
        else:
            terms.append(f'{attribute}=="{rng.choice(choices)}"')
    return " && ".join(terms)


def _licensees_text(rng: random.Random, keys: list[str]) -> str:
    """A random licensee expression over the given keys."""
    if len(keys) >= 3 and rng.random() < 0.2:
        chosen = rng.sample(keys, 3)
        quoted = ", ".join(f'"{k}"' for k in chosen)
        return f"2-of({quoted})"
    if len(keys) >= 2 and rng.random() < 0.3:
        pair = rng.sample(keys, 2)
        return f'"{pair[0]}" || "{pair[1]}"'
    return f'"{rng.choice(keys)}"'


def _credential_text(rng: random.Random, authorizer: str,
                     keys: list[str]) -> str:
    return Credential.build(
        authorizer=authorizer,
        licensees=_licensees_text(rng, keys),
        conditions=_gen_conditions(rng)).to_text()


def gen_compliance_case(rng: random.Random, label: str = "") -> dict:
    """A random delegation graph (chains, cycles, thresholds) plus a query
    workload and two phases of add/revoke churn."""
    n = rng.randint(3, 6)
    keys = [f"K{i}" for i in range(n)]
    credentials = [_credential_text(rng, "POLICY", keys[:max(2, n - 1)])]
    if rng.random() < 0.4:
        credentials.append(_credential_text(rng, "POLICY", keys))
    for i in range(n - 1):
        if rng.random() < 0.7:
            credentials.append(
                _credential_text(rng, keys[i], [keys[i + 1]]))
    for _ in range(rng.randint(0, 2)):
        # Random extra delegation edges; cycles are deliberately possible.
        author = rng.choice(keys)
        credentials.append(_credential_text(rng, author, keys))

    queries = []
    for _ in range(rng.randint(4, 7)):
        attributes = {attribute: rng.choice(values)
                      for attribute, values in ATTR_VOCAB.items()
                      if rng.random() < 0.8}
        authorizers = rng.sample(keys + ["Kstranger"], rng.randint(1, 2))
        queries.append([attributes, authorizers])

    churn = []
    for _ in range(2):
        ops = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < 0.5:
                ops.append({"op": "revoke", "index": rng.randrange(16)})
            else:
                ops.append({"op": "add", "credential": _credential_text(
                    rng, rng.choice(keys + ["POLICY"]), keys)})
        churn.append(ops)

    return {"check": "compliance", "label": label,
            "credentials": credentials, "queries": queries, "churn": churn}


# -- round-trip / migration cases ---------------------------------------------

#: migration directions whose domain mappings are decision-preserving by
#: construction (single-domain sources for single-domain targets)
DIRECTIONS = (("corba", "ejb"), ("complus", "corba"), ("ejb", "complus"))


def gen_roundtrip_case(rng: random.Random, label: str = "") -> dict:
    """A policy plus a (source kind, target kind) translation direction."""
    src_kind, dst_kind = rng.choice(DIRECTIONS)
    case: dict = {"check": "roundtrip", "label": label,
                  "src_kind": src_kind, "dst_kind": dst_kind}
    if src_kind == "corba":
        domains = ["orbhost/orb1"]
        permissions = PERMISSIONS
    elif src_kind == "ejb":
        containers = rng.sample(("Payroll", "Accounts"), rng.randint(1, 2))
        case["containers"] = containers
        domains = [f"ejbhost:ejb1/{c}" for c in containers]
        # Mix COM and foreign permissions so the closed-vocabulary remap
        # (the known-lossy leg) actually fires sometimes.
        permissions = PERMISSIONS + COM_PERMISSIONS
    else:
        domains = [rng.choice(("CORP", "FINANCE"))]
        permissions = COM_PERMISSIONS
    case["domains"] = domains
    grants, assignments = gen_relations(rng, domains, permissions)
    case["grants"], case["assignments"] = grants, assignments
    case["probes"] = gen_probes(rng, grants, assignments, permissions)
    return case


# -- stack cases --------------------------------------------------------------

def gen_stack_case(rng: random.Random, label: str = "") -> dict:
    """A full Figure-10 configuration: application predicate, TM credential
    graph, CORBA backend, request workload and TM churn."""
    domains = ["orbhost/orb1"]
    grants, assignments = gen_relations(rng, domains)
    users = sorted({a[0] for a in assignments}) or ["Alice"]
    user_keys = [f"K{u.lower()}" for u in users]

    credentials = []
    if rng.random() < 0.5:
        # POLICY licenses user keys directly.
        for _ in range(rng.randint(1, 2)):
            credentials.append(Credential.build(
                "POLICY", _licensees_text(rng, user_keys),
                _stack_conditions(rng)).to_text())
    else:
        # POLICY -> Kadmin -> user keys delegation chain.
        credentials.append(Credential.build(
            "POLICY", '"Kadmin"', _stack_conditions(rng)).to_text())
        for _ in range(rng.randint(1, 2)):
            credentials.append(Credential.build(
                "Kadmin", _licensees_text(rng, user_keys),
                _stack_conditions(rng)).to_text())

    operations = sorted({g[3] for g in grants}) or list(PERMISSIONS)
    denied = rng.sample(operations, rng.randint(0, min(1, len(operations))))

    requests = []
    for _ in range(rng.randint(4, 7)):
        if rng.random() < 0.7 and grants:
            user = rng.choice(users)
            _d, _r, object_type, operation = rng.choice(grants)
        else:
            user = rng.choice(USERS)
            object_type = rng.choice(OBJECTS)
            operation = rng.choice(PERMISSIONS)
        requests.append([user, f"K{user.lower()}", object_type, operation])

    churn = [{"op": "revoke", "index": rng.randrange(16)}
             for _ in range(rng.randint(0, 2))]

    return {"check": "stack", "label": label,
            "grants": grants, "assignments": assignments,
            "credentials": credentials, "denied_ops": denied,
            "requests": requests, "churn": churn}


def _stack_conditions(rng: random.Random) -> str:
    """Conditions over the one attribute stack mediation always sends."""
    if rng.random() < 0.2:
        return "true"
    operations = rng.sample(PERMISSIONS, rng.randint(1, 3))
    return "(" + " || ".join(f'op=="{o}"' for o in operations) + ")"


#: check name -> generator, the differ's dispatch table
GENERATORS = {
    "middleware": gen_middleware_case,
    "compliance": gen_compliance_case,
    "roundtrip": gen_roundtrip_case,
    "stack": gen_stack_case,
}

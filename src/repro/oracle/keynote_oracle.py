"""A brute-force KeyNote compliance evaluator (RFC 2704 section 5).

The production :class:`~repro.keynote.compliance.ComplianceChecker` computes
the compliance value by memoised depth-first search over precompiled
condition programs, with a taint-tracked decision cache on top.  This module
computes the *same* value the slow, obvious way — a Kleene iteration of the
defining equations from bottom over the whole principal graph::

    value(k) = _MAX_TRUST                       if k is a requester
    value(k) = ⋁ { val(A, L, C) : k authored (A, L, C) }   otherwise
    val(A, L, C) = C(attributes)  ⋀  L(value)

iterated until nothing changes.  The equations are monotone over a finite
lattice, so the iteration reaches the least fixpoint — the semantics under
which delegation cycles grant nothing, exactly what the DFS's cycle-break
rule implements.  Conditions are evaluated with the tree-walking
:class:`~repro.keynote.eval.ConditionEvaluator` on every visit: no
compilation, no memoisation, no caches of any kind.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.crypto.keystore import Keystore
from repro.errors import ComplianceError
from repro.keynote.credential import Credential
from repro.keynote.eval import ConditionEvaluator
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet


def _canonical(principal: str, keystore: Keystore | None) -> str:
    """The checker's canonicalisation rule, restated."""
    if principal.upper() == "POLICY":
        return "POLICY"
    if keystore is not None and principal in keystore:
        return keystore.public(principal).encode()
    return principal


def oracle_compliance_value(assertions: Sequence[Credential],
                            attributes: Mapping[str, str],
                            authorizers: Iterable[str],
                            values: ComplianceValueSet = DEFAULT_VALUE_SET,
                            keystore: Keystore | None = None) -> str:
    """Compliance value of a request by naive fixpoint iteration.

    :param assertions: every admitted assertion (the oracle does no
        signature screening — pass the set the subject checker admitted).
    :param attributes: the action attribute set.
    :param authorizers: the key(s) that made the request.
    :raises ComplianceError: when no authorizer is given.
    """
    requesters = {_canonical(a, keystore) for a in authorizers}
    if not requesters:
        raise ComplianceError("a query needs at least one action authorizer")

    by_authorizer: dict[str, list[Credential]] = {}
    principals: set[str] = {"POLICY"}
    for assertion in assertions:
        author = _canonical(assertion.authorizer, keystore)
        by_authorizer.setdefault(author, []).append(assertion)
        principals.add(author)
        for licensee in assertion.principals():
            principals.add(_canonical(licensee, keystore))

    value: dict[str, str] = {p: values.minimum for p in principals}
    evaluator = ConditionEvaluator(attributes, values)

    def principal_value(principal: str) -> str:
        if principal in requesters:
            return values.maximum
        return value.get(principal, values.minimum)

    def assertion_value(assertion: Credential) -> str:
        conditions_value = evaluator.program_value(assertion.conditions)
        if conditions_value == values.minimum:
            return values.minimum
        licensee_value = assertion.licensees.value(
            lambda key: principal_value(_canonical(key, keystore)), values)
        return values.meet([conditions_value, licensee_value])

    # Kleene iteration from bottom.  Each pass can only raise values
    # (monotone equations over a finite lattice), so it stabilises within
    # |principals| * |values| passes; the bound below is a belt-and-braces
    # guard against a non-monotone bug, not a tuning knob.
    for _ in range(len(principals) * len(values) + 2):
        changed = False
        for principal in sorted(principals):
            if principal in requesters:
                continue
            best = values.minimum
            for assertion in by_authorizer.get(principal, ()):
                best = values.join([best, assertion_value(assertion)])
            if best != value[principal]:
                value[principal] = best
                changed = True
        if not changed:
            break

    return principal_value("POLICY")


def oracle_authorises(assertions: Sequence[Credential],
                      attributes: Mapping[str, str],
                      authorizers: Iterable[str],
                      values: ComplianceValueSet = DEFAULT_VALUE_SET,
                      keystore: Keystore | None = None,
                      threshold: str | None = None) -> bool:
    """Boolean convenience mirroring
    :meth:`~repro.keynote.compliance.ComplianceChecker.authorises`."""
    target = threshold if threshold is not None else values.maximum
    return values.at_least(
        oracle_compliance_value(assertions, attributes, authorizers,
                                values, keystore), target)

"""A naive, set-theoretic reference for the extended RBAC model (Section 2).

This is the executable version of the paper's relational reading — the
λ-RBAC idea of a small reference semantics one can check by inspection:

- ``HasPermission``  ⊆ Domain × Role × ObjectType × Permission
- ``UserAssignment`` ⊆ User × Domain × Role
- ``≥`` (RBAC1)      ⊆ (Domain × Role) × (Domain × Role), senior → junior

and the decision::

    check_access(u, ot, p)  ⇔  ∃ (d, r) ∈ roles*(u) .
                                   (d, r, ot, p) ∈ HasPermission

where ``roles*`` closes the user's direct assignments downward over the
hierarchy.  Everything is computed from the raw relation tuples on every
call: no indexes, no memoisation, no derived structures kept in sync.  The
transitive closure is an iterate-until-stable loop rather than a graph
search, so it is correct for any (even cyclic) edge set the differ throws
at it.  Slowness is the point — this module is the spec the fast paths in
:mod:`repro.rbac.policy` and the middleware interpretations are diffed
against.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.rbac.policy import RBACPolicy

#: (domain, role)
DomainRolePair = Tuple[str, str]
#: (domain, role, object_type, permission)
GrantTuple = Tuple[str, str, str, str]
#: (user, domain, role)
AssignmentTuple = Tuple[str, str, str]
#: ((senior domain, senior role), (junior domain, junior role))
EdgeTuple = Tuple[DomainRolePair, DomainRolePair]


class RBACOracle:
    """Reference decisions over plain relation tuples.

    >>> oracle = RBACOracle(
    ...     grants=[("Finance", "Clerk", "SalariesDB", "write")],
    ...     assignments=[("Alice", "Finance", "Manager")],
    ...     hierarchy=[(("Finance", "Manager"), ("Finance", "Clerk"))])
    >>> oracle.check_access("Alice", "SalariesDB", "write")
    True
    >>> oracle.check_access("Alice", "SalariesDB", "read")
    False
    """

    def __init__(self, grants: Iterable[Sequence[str]] = (),
                 assignments: Iterable[Sequence[str]] = (),
                 hierarchy: Iterable[Sequence[Sequence[str]]] = ()) -> None:
        self.grants: list[GrantTuple] = [
            (g[0], g[1], g[2], g[3]) for g in grants]
        self.assignments: list[AssignmentTuple] = [
            (a[0], a[1], a[2]) for a in assignments]
        self.hierarchy: list[EdgeTuple] = [
            ((e[0][0], e[0][1]), (e[1][0], e[1][1])) for e in hierarchy]

    @classmethod
    def from_policy(cls, policy: RBACPolicy) -> "RBACOracle":
        """Flatten a production :class:`~repro.rbac.policy.RBACPolicy` into
        oracle tuples (hierarchy edges included)."""
        return cls(
            grants=[(g.domain, g.role, g.object_type, g.permission)
                    for g in policy.sorted_grants()],
            assignments=[(a.user, a.domain, a.role)
                         for a in policy.sorted_assignments()],
            hierarchy=[((s.domain, s.role), (j.domain, j.role))
                       for s, j in policy.hierarchy.edges()])

    # -- hierarchy closure (iterate until stable) ---------------------------

    def juniors_of(self, domain: str, role: str) -> set[DomainRolePair]:
        """All (domain, role) pairs dominated by the given pair, exclusive."""
        closed: set[DomainRolePair] = set()
        changed = True
        while changed:
            changed = False
            for senior, junior in self.hierarchy:
                if senior == (domain, role) or senior in closed:
                    if junior not in closed and junior != (domain, role):
                        closed.add(junior)
                        changed = True
        return closed

    def seniors_of(self, domain: str, role: str) -> set[DomainRolePair]:
        """All (domain, role) pairs dominating the given pair, exclusive."""
        return {pair for pair in self._all_pairs()
                if pair != (domain, role)
                and (domain, role) in self.juniors_of(*pair)}

    def _all_pairs(self) -> set[DomainRolePair]:
        pairs = {(g[0], g[1]) for g in self.grants}
        pairs |= {(a[1], a[2]) for a in self.assignments}
        for senior, junior in self.hierarchy:
            pairs.add(senior)
            pairs.add(junior)
        return pairs

    # -- derived relations --------------------------------------------------

    def roles_of(self, user: str) -> set[DomainRolePair]:
        """Direct assignments of ``user``, closed downward over ``≥``."""
        closed: set[DomainRolePair] = set()
        for assigned_user, domain, role in self.assignments:
            if assigned_user == user:
                closed.add((domain, role))
                closed |= self.juniors_of(domain, role)
        return closed

    def members_of(self, domain: str, role: str) -> set[str]:
        """Users holding (domain, role) directly or via a senior role."""
        qualifying = {(domain, role)} | self.seniors_of(domain, role)
        return {user for user, d, r in self.assignments
                if (d, r) in qualifying}

    def role_has_permission(self, domain: str, role: str, object_type: str,
                            permission: str) -> bool:
        """True if (domain, role) holds the grant directly or via a junior."""
        qualifying = {(domain, role)} | self.juniors_of(domain, role)
        return any((d, r) in qualifying and ot == object_type
                   and p == permission for d, r, ot, p in self.grants)

    # -- decisions ----------------------------------------------------------

    def check_access(self, user: str, object_type: str,
                     permission: str) -> bool:
        """The Section-2 decision, spelled as the set comprehension above."""
        roles = self.roles_of(user)
        return any((d, r) in roles and ot == object_type and p == permission
                   for d, r, ot, p in self.grants)

    def authorised_users(self, object_type: str, permission: str) -> set[str]:
        """Every user the oracle would allow for (object_type, permission)."""
        return {user for user, _d, _r in self.assignments
                if self.check_access(user, object_type, permission)}

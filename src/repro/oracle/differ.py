"""Differential testing of the authorisation plane against the oracle.

Four check families, one per generator in :mod:`repro.oracle.gen`:

``middleware``
    Each backend's native mediation (``check_invocation``) and the
    production :class:`~repro.rbac.policy.RBACPolicy` decision are diffed
    against :class:`~repro.oracle.rbac_oracle.RBACOracle` on the backend's
    Section-2 interpretation.  EJB ``<unchecked/>`` methods allow any
    principal but have no RBAC reading — those mismatches are *known
    lossy*, not failures.

``compliance``
    The cached :class:`~repro.keynote.compliance.ComplianceChecker`, a
    freshly built naive checker (``memoise=False``: no memo, no decision
    cache) and the Kleene-iteration oracle must give the same compliance
    value for every query — cold, warm (decision-cache hits), and across
    add/revoke churn phases that bump the generation stamp.  The
    :class:`~repro.translate.imprecise.ImpreciseChecker` rides along:
    exact results must agree with the oracle; similarity-substituted
    authorisations are reported known-lossy.

``roundtrip``
    Decision preservation through translation: backend → KeyNote
    (``encode_full`` / ``comprehend_credentials``) → backend, and backend →
    backend via :func:`~repro.translate.migrate.migrate_policy`.  A
    migration that remapped vocabulary (COM's closed Launch/Access/RunAs)
    or dropped facts is known-lossy; everything else must preserve every
    probe's decision.

``stack``
    Full :meth:`~repro.webcom.stack.AuthorisationStack.mediate` against
    the conjunction of per-layer oracle verdicts — cold cache, warm cache,
    after TM credential churn, and degraded (fail-closed must never allow;
    fail-static must serve exactly the last-known-good verdict, marked
    stale, and never let the TTL cache re-serve it as fresh).

Any non-lossy disagreement is shrunk greedily — drop one grant /
assignment / credential / probe at a time while the mismatch persists —
and the minimal case dict is serialised into the report for replay via
:func:`replay_case`.
"""

from __future__ import annotations

import json
import random
from typing import Mapping

from repro.crypto.keystore import Keystore
from repro.errors import DeploymentError, UnknownComponentError
from repro.keynote.api import KeyNoteSession
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.middleware.base import Middleware
from repro.middleware.complus import COM_PERMISSIONS, ComPlusCatalogue
from repro.middleware.corba import CorbaOrb
from repro.middleware.ejb import EJBServer
from repro.oracle.gen import GENERATORS
from repro.oracle.keynote_oracle import oracle_compliance_value
from repro.oracle.rbac_oracle import RBACOracle
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.policy import RBACPolicy
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.imprecise import ImpreciseChecker
from repro.translate.migrate import DomainMapping, migrate_policy
from repro.translate.to_keynote import encode_full
from repro.util.clock import SimulatedClock
from repro.webcom.faults import (
    LayerFaultInjector,
    LayerFaultPlan,
    LayerFaultRule,
)
from repro.webcom.health import DegradedMode
from repro.webcom.stack import AuthorisationStack, Layer, MediationRequest

CHECK_ORDER = ("middleware", "compliance", "roundtrip", "stack")

#: list-valued case fields the shrinker may drop elements from
SHRINKABLE_FIELDS = ("grants", "assignments", "credentials", "probes",
                     "requests", "queries", "unchecked", "excluded",
                     "churn", "denied_ops")

_KEYSTORE: Keystore | None = None


def _keystore() -> Keystore:
    """One process-wide keystore for the encode/comprehend legs; the user
    vocabulary is tiny, so key generation is paid once per name."""
    global _KEYSTORE
    if _KEYSTORE is None:
        _KEYSTORE = Keystore()
    return _KEYSTORE


# -- subject builders ---------------------------------------------------------

def build_policy(case: Mapping) -> RBACPolicy:
    """The case's relations as a production policy object."""
    return RBACPolicy.from_relations(
        case.get("label") or "case",
        [tuple(g) for g in case["grants"]],
        [tuple(a) for a in case["assignments"]])


def build_backend(case: Mapping, kind: str | None = None,
                  policy: RBACPolicy | None = None) -> Middleware:
    """A fresh backend of the case's (or the given) kind with the case's
    policy applied through the normal ``apply_rbac`` path."""
    kind = kind or case["kind"]
    backend: Middleware
    if kind == "corba":
        backend = CorbaOrb(machine=case.get("machine", "orbhost"),
                           orb_name=case.get("orb", "orb1"))
    elif kind == "ejb":
        backend = EJBServer(host=case.get("host", "ejbhost"),
                            server_name=case.get("server", "ejb1"))
    else:
        backend = ComPlusCatalogue(case.get("machine", "winbox"),
                                   WindowsSecurity())
    backend.apply_rbac(policy if policy is not None else build_policy(case))
    if kind == "ejb":
        server = backend  # type: ignore[assignment]
        for domain, bean, method in case.get("unchecked", ()):
            _apply_descriptor(server, domain, bean, method,
                              EJBServer.add_unchecked)
        for domain, bean, method in case.get("excluded", ()):
            _apply_descriptor(server, domain, bean, method,
                              EJBServer.add_exclude)
    return backend


def _apply_descriptor(server: EJBServer, domain: str, bean: str, method: str,
                      adder) -> None:
    """Apply an unchecked/exclude descriptor, tolerating beans the shrinker
    removed from the grant set."""
    try:
        adder(server, server.container_of_domain(domain), bean, method)
    except (DeploymentError, UnknownComponentError):
        pass


def _native_principals(kind: str, domains: list[str], user: str) -> list[str]:
    """The principals a backend invocation must use for an RBAC user: COM+
    qualifies with the NT domain, the others use the bare name."""
    if kind == "complus":
        return [f"{domain}\\{user}" for domain in domains]
    return [user]


def _invoke(backend: Middleware, kind: str, domains: list[str], user: str,
            object_type: str, operation: str) -> bool:
    return any(backend.invoke(principal, object_type, operation)
               for principal in _native_principals(kind, domains, user))


# -- check: middleware --------------------------------------------------------

def eval_middleware(case: Mapping) -> dict:
    backend = build_backend(case)
    interpreted = backend.extract_rbac()
    oracle = RBACOracle.from_policy(interpreted)
    unchecked = {(bean, method)
                 for _domain, bean, method in case.get("unchecked", ())}
    comparisons = 0
    disagreements = []
    for user, object_type, operation in case["probes"]:
        expected = oracle.check_access(user, object_type, operation)
        production = interpreted.check_access(user, object_type, operation)
        actual = _invoke(backend, case["kind"], case["domains"], user,
                         object_type, operation)
        comparisons += 2
        if production != expected:
            disagreements.append({
                "comparison": "rbacpolicy-vs-oracle",
                "probe": [user, object_type, operation],
                "expected": expected, "actual": production, "lossy": False})
        if actual != expected:
            lossy = actual and (object_type, operation) in unchecked
            disagreements.append({
                "comparison": "backend-vs-oracle",
                "probe": [user, object_type, operation],
                "expected": expected, "actual": actual, "lossy": lossy})
    return {"comparisons": comparisons, "disagreements": disagreements}


# -- check: compliance --------------------------------------------------------

def _apply_compliance_churn(ops, cached: ComplianceChecker,
                            current: list[Credential]) -> None:
    for op in ops:
        if op["op"] == "revoke":
            if not current:
                continue
            credential = current.pop(op["index"] % len(current))
            cached.revoke_assertion(credential)
        else:
            credential = Credential.from_text(op["credential"])
            current.append(credential)
            cached.add_assertion(credential)


def eval_compliance(case: Mapping) -> dict:
    credentials = [Credential.from_text(t) for t in case["credentials"]]
    cached = ComplianceChecker(list(credentials), verify_signatures=False)
    current = list(credentials)
    comparisons = 0
    disagreements = []

    phases = [[]] + list(case.get("churn", ()))
    for phase_no, ops in enumerate(phases):
        _apply_compliance_churn(ops, cached, current)
        oracle_values = []
        for attributes, authorizers in case["queries"]:
            oracle_value = oracle_compliance_value(current, attributes,
                                                   authorizers)
            oracle_values.append(oracle_value)
            naive = ComplianceChecker(list(current), verify_signatures=False,
                                      memoise=False)
            comparisons += 2
            for name, checker in (("cached", cached), ("naive", naive)):
                value = checker.query(attributes, authorizers)
                if value != oracle_value:
                    disagreements.append({
                        "comparison": f"{name}-vs-oracle", "phase": phase_no,
                        "query": [attributes, list(authorizers)],
                        "expected": oracle_value, "actual": value,
                        "lossy": False})
        # Second pass within the phase: identical queries must now be
        # served by the decision cache with identical values.
        for (attributes, authorizers), oracle_value in zip(case["queries"],
                                                           oracle_values):
            comparisons += 1
            value = cached.query(attributes, authorizers)
            if value != oracle_value:
                disagreements.append({
                    "comparison": "cached-warm-vs-oracle", "phase": phase_no,
                    "query": [attributes, list(authorizers)],
                    "expected": oracle_value, "actual": value,
                    "lossy": False})

    # Imprecise checking over the initial assertion set: exact answers must
    # match the oracle, similarity-substituted ones are known-lossy.
    imprecise = ImpreciseChecker(list(credentials), verify_signatures=False)
    for attributes, authorizers in case["queries"]:
        comparisons += 1
        result = imprecise.query(attributes, authorizers)
        oracle_value = oracle_compliance_value(credentials, attributes,
                                               authorizers)
        if result.is_exact():
            if result.authorized != (oracle_value == "true"):
                disagreements.append({
                    "comparison": "imprecise-exact-vs-oracle",
                    "query": [attributes, list(authorizers)],
                    "expected": oracle_value,
                    "actual": result.compliance_value, "lossy": False})
        else:
            disagreements.append({
                "comparison": "imprecise-substituted",
                "query": [attributes, list(authorizers)],
                "expected": oracle_value,
                "actual": result.compliance_value,
                "substitutions": dict(result.substitutions), "lossy": True})
    return {"comparisons": comparisons, "disagreements": disagreements}


# -- check: roundtrip ---------------------------------------------------------

def _migration_plan(case: Mapping) -> tuple[DomainMapping,
                                            "tuple[str, ...] | None", dict]:
    """Domain mapping, closed target vocabulary (if any) and the fresh
    target backend's constructor hints for the case's direction."""
    dst = case["dst_kind"]
    if dst == "ejb":
        mapping = DomainMapping(default=lambda d: (
            "mighost:migejb/" + d.replace("/", "_").replace(":", "_")))
        return mapping, None, {"host": "mighost", "server": "migejb"}
    if dst == "corba":
        return (DomainMapping.to_single("migmach/migorb"), None,
                {"machine": "migmach", "orb": "migorb"})
    mapping = DomainMapping(default=lambda d: (
        "MIG_" + d.replace("/", "_").replace(":", "_").upper()))
    return mapping, COM_PERMISSIONS, {"machine": "migwin"}


def eval_roundtrip(case: Mapping) -> dict:
    policy = build_policy(case)
    oracle = RBACOracle.from_policy(policy)
    source = build_backend(case, kind=case["src_kind"], policy=policy)
    comparisons = 0
    disagreements = []

    # Leg A: backend -> KeyNote credentials -> backend.
    keystore = _keystore()
    policy_cred, memberships = encode_full(source.extract_rbac(), "KWebCom",
                                           keystore)
    recovered = comprehend_credentials([policy_cred] + memberships,
                                       keystore=keystore)
    rebuilt = build_backend(case, kind=case["src_kind"], policy=recovered)
    for user, object_type, permission in case["probes"]:
        comparisons += 1
        expected = oracle.check_access(user, object_type, permission)
        actual = _invoke(rebuilt, case["src_kind"], case["domains"], user,
                         object_type, permission)
        if actual != expected:
            disagreements.append({
                "comparison": "keynote-roundtrip",
                "probe": [user, object_type, permission],
                "expected": expected, "actual": actual, "lossy": False})

    # Leg B: backend -> backend via migrate_policy.
    mapping, target_permissions, hints = _migration_plan(case)
    target = build_backend(dict(hints, grants=[], assignments=[]),
                           kind=case["dst_kind"])
    report = migrate_policy(source, target, mapping,
                            target_permissions=target_permissions)
    lossy_case = bool(report.vocabulary_map) or bool(report.dropped)
    mapped_domains = sorted({mapping.map(d) for d in case["domains"]})
    for user, object_type, permission in case["probes"]:
        comparisons += 1
        expected = oracle.check_access(user, object_type, permission)
        effective = report.vocabulary_map.get(permission, permission)
        actual = _invoke(target, case["dst_kind"], mapped_domains, user,
                         object_type, effective)
        if actual != expected:
            disagreements.append({
                "comparison": "migration",
                "direction": [case["src_kind"], case["dst_kind"]],
                "probe": [user, object_type, permission],
                "expected": expected, "actual": actual,
                "lossy": lossy_case})
    return {"comparisons": comparisons, "disagreements": disagreements}


# -- check: stack -------------------------------------------------------------

def _make_session(credentials: list[Credential],
                  clock: SimulatedClock) -> KeyNoteSession:
    session = KeyNoteSession(keystore=None, verify_signatures=False,
                             clock=clock)
    for credential in credentials:
        if credential.is_policy:
            session.add_policy(credential)
        else:
            session.add_credential(credential)
    return session


def _make_stack(case: Mapping, clock: SimulatedClock,
                session: KeyNoteSession, middleware: Middleware,
                **kwargs) -> AuthorisationStack:
    denied = set(case["denied_ops"])
    stack = AuthorisationStack(clock=clock, **kwargs)
    stack.plug_application(lambda req: req.operation not in denied)
    stack.plug_trust_management(session)
    stack.plug_middleware(middleware)
    return stack


def eval_stack(case: Mapping) -> dict:
    credentials = [Credential.from_text(t) for t in case["credentials"]]
    middleware = build_backend(dict(case, kind="corba"), kind="corba")
    mw_oracle = RBACOracle.from_policy(middleware.extract_rbac())
    denied = set(case["denied_ops"])
    requests = [MediationRequest(user=u, user_key=k, object_type=ot,
                                 operation=op)
                for u, k, ot, op in case["requests"]]
    comparisons = 0
    disagreements = []

    def expected_verdict(request: MediationRequest, assertions,
                         clock: SimulatedClock) -> bool:
        """Conjunction of per-layer oracle verdicts (the stack's contract:
        allowed iff every configured layer allows)."""
        app_ok = request.operation not in denied
        attributes = {"op": request.operation,
                      "_cur_time": repr(clock.now())}
        tm_ok = oracle_compliance_value(assertions, attributes,
                                        [request.user_key]) == "true"
        mw_ok = mw_oracle.check_access(request.user, request.object_type,
                                       request.operation)
        return app_ok and tm_ok and mw_ok

    def diff(phase: str, request: MediationRequest, actual: bool,
             expected: bool) -> None:
        nonlocal comparisons
        comparisons += 1
        if actual != expected:
            disagreements.append({
                "comparison": f"stack-{phase}",
                "request": [request.user, request.user_key,
                            request.object_type, request.operation],
                "expected": expected, "actual": actual, "lossy": False})

    # Healthy: cold cache, warm cache, then TM churn.
    clock = SimulatedClock()
    session = _make_session(credentials, clock)
    stack = _make_stack(case, clock, session, middleware, cache_ttl=300.0)
    current = list(credentials)
    for request in requests:
        diff("cold", request, stack.mediate(request).allowed,
             expected_verdict(request, current, clock))
    for request in requests:
        diff("warm", request, stack.mediate(request).allowed,
             expected_verdict(request, current, clock))
    for op in case.get("churn", ()):
        live = session.credentials
        if not live:
            continue
        doomed = live[op["index"] % len(live)]
        session.revoke_credential(doomed)
        current.remove(doomed)
    for request in requests:
        diff("churn", request, stack.mediate(request).allowed,
             expected_verdict(request, current, clock))

    # Degraded, fail-closed: with TM timing out, nothing the stack consults
    # may widen authorisation — every mediation must deny.
    clock2 = SimulatedClock()
    session2 = _make_session(credentials, clock2)
    injector = LayerFaultInjector(LayerFaultPlan(seed=0, rules=(
        LayerFaultRule(layer="TRUST_MANAGEMENT", fail=1.0),)))
    stack2 = _make_stack(case, clock2, session2, middleware,
                         layer_faults=injector)
    for request in requests:
        decision = stack2.mediate(request)
        diff("fail-closed", request, decision.allowed, False)

    # Degraded, fail-static: healthy mediations seed the last-known-good
    # store; once the fault window opens (and the TTL cache has lapsed) the
    # stack must serve exactly those verdicts, marked stale — and must not
    # re-cache them as fresh.
    clock3 = SimulatedClock()
    session3 = _make_session(credentials, clock3)
    injector3 = LayerFaultInjector(LayerFaultPlan(seed=0, rules=(
        LayerFaultRule(layer="TRUST_MANAGEMENT", fail=1.0, start=100.0),)))
    stack3 = _make_stack(case, clock3, session3, middleware,
                         cache_ttl=30.0, layer_faults=injector3)
    stack3.set_degraded_mode(Layer.TRUST_MANAGEMENT, DegradedMode.FAIL_STATIC)
    healthy: dict[MediationRequest, bool] = {}
    for request in requests:
        decision = stack3.mediate(request)
        healthy[request] = decision.allowed
        diff("static-healthy", request, decision.allowed,
             expected_verdict(request, credentials, clock3))
    clock3.advance(150.0)
    for request in requests:
        decision = stack3.mediate(request)
        consulted_tm = request.operation not in denied
        diff("static-outage", request, decision.allowed, healthy[request])
        if consulted_tm:
            comparisons += 2
            if not decision.stale:
                disagreements.append({
                    "comparison": "stack-static-unmarked",
                    "request": list(case["requests"][
                        requests.index(request)]),
                    "expected": True, "actual": False, "lossy": False})
            second = stack3.mediate(request)
            if not second.stale:
                disagreements.append({
                    "comparison": "stack-static-cached-as-fresh",
                    "request": list(case["requests"][
                        requests.index(request)]),
                    "expected": True, "actual": False, "lossy": False})
    return {"comparisons": comparisons, "disagreements": disagreements}


# -- harness ------------------------------------------------------------------

EVALUATORS = {
    "middleware": eval_middleware,
    "compliance": eval_compliance,
    "roundtrip": eval_roundtrip,
    "stack": eval_stack,
}


def evaluate_case(case: Mapping) -> dict:
    """Run one case against every subject it describes.

    Returns ``{"comparisons": int, "disagreements": [dict, ...]}`` where
    each disagreement carries ``lossy=True`` when it falls under a
    documented lossy translation rather than a conformance failure.
    """
    return EVALUATORS[case["check"]](case)


def replay_case(case: Mapping) -> dict:
    """Re-run a serialised (possibly shrunk) case — the replay entry point
    for checked-in counterexample fixtures."""
    return evaluate_case(case)


def _still_fails(case: Mapping) -> bool:
    """Does the case still produce a non-lossy disagreement?  Evaluation
    errors count as 'no' so the shrinker never trades a conformance
    failure for a crash."""
    try:
        result = evaluate_case(case)
    except Exception:
        return False
    return any(not d["lossy"] for d in result["disagreements"])


def shrink_case(case: Mapping) -> dict:
    """Greedy delta-debugging: drop one element of one list field at a
    time while a non-lossy disagreement persists, to a local minimum."""
    case = json.loads(json.dumps(case))
    changed = True
    while changed:
        changed = False
        for field in SHRINKABLE_FIELDS:
            items = case.get(field)
            if not isinstance(items, list):
                continue
            index = 0
            while index < len(items):
                candidate = dict(case)
                candidate[field] = items[:index] + items[index + 1:]
                if _still_fails(candidate):
                    case = candidate
                    items = case[field]
                    changed = True
                else:
                    index += 1
    return case


def run_conformance(seed: int, cases: int, shrink: bool = True) -> dict:
    """Run ``cases`` generated cases (cycling through the four check
    families) and build the ``CONFORMANCE_5`` report."""
    per_check = {check: {"cases": 0, "comparisons": 0, "agreements": 0,
                         "known_lossy": 0, "counterexamples": 0}
                 for check in CHECK_ORDER}
    counterexamples = []
    for index in range(cases):
        check = CHECK_ORDER[index % len(CHECK_ORDER)]
        rng = random.Random(f"{seed}:{index}")
        case = GENERATORS[check](rng, label=f"case-{index}")
        result = evaluate_case(case)
        lossy = [d for d in result["disagreements"] if d["lossy"]]
        real = [d for d in result["disagreements"] if not d["lossy"]]
        stats = per_check[check]
        stats["cases"] += 1
        stats["comparisons"] += result["comparisons"]
        stats["agreements"] += (result["comparisons"]
                                - len(result["disagreements"]))
        stats["known_lossy"] += len(lossy)
        if real:
            stats["counterexamples"] += 1
            minimal = shrink_case(case) if shrink else dict(case)
            counterexamples.append({
                "check": check, "seed": seed, "index": index,
                "case": minimal,
                "disagreements": [d for d
                                  in evaluate_case(minimal)["disagreements"]
                                  if not d["lossy"]] or real,
            })
    return {
        "report": "CONFORMANCE_5",
        "description": "differential conformance of backends, caches, "
                       "translators and stack mediation against the "
                       "naive oracle",
        "seed": seed,
        "cases": cases,
        "comparisons": sum(s["comparisons"] for s in per_check.values()),
        "agreements": sum(s["agreements"] for s in per_check.values()),
        "known_lossy": sum(s["known_lossy"] for s in per_check.values()),
        "counterexamples": counterexamples,
        "per_check": per_check,
    }

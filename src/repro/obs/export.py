"""Trace and metrics export: JSON bundles and flamegraph-style text.

The JSON form is what CI archives per commit (perf trajectory); the text
form is what ``repro trace`` prints — one indented tree per correlation id,
each line showing the span's interval on the simulated clock, its duration,
verdict and attributes, e.g.::

    trace corr-1
    └─ master.run_graph                   [0.00 → 12.00]  12.00s ok
       └─ master.schedule                 [0.00 →  4.00]   4.00s ok node=n000
          ├─ net.execute                  [0.00 →  1.00]   1.00s ok
          ├─ client.execute               [1.00 →  1.00]   0.00s ok
          │  └─ stack.mediate             [1.00 →  1.00]   0.00s allow
          └─ net.result                   [1.00 →  2.00]   1.00s ok
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.trace import Span
from repro.util.text import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.obs.metrics import MetricsRegistry


def spans_to_dicts(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Serialise spans (start order preserved)."""
    return [{
        "span_id": s.span_id,
        "name": s.name,
        "correlation_id": s.correlation_id,
        "parent_id": s.parent_id,
        "start": s.start,
        "end": s.end,
        "duration": s.duration,
        "status": s.status,
        "attributes": dict(s.attributes),
    } for s in spans]


def metrics_to_dict(registry: "MetricsRegistry") -> dict[str, Any]:
    """Serialise a metrics registry (sorted by instrument name)."""
    return registry.snapshot()


def export_bundle(obs: "Observability") -> dict[str, Any]:
    """The full observability state of one run as plain data."""
    return {
        "clock": obs.clock.now(),
        "trace": spans_to_dicts(obs.tracer.spans),
        "metrics": metrics_to_dict(obs.metrics),
    }


def export_json(obs: "Observability", indent: int = 2) -> str:
    """The bundle as a JSON document."""
    return json.dumps(export_bundle(obs), indent=indent, sort_keys=False)


# -- text rendering --------------------------------------------------------


def _format_attributes(span: Span) -> str:
    parts = [f"{key}={value}" for key, value in span.attributes.items()]
    return " ".join(parts)


def _render_span(span: Span, children: dict[str | None, list[Span]],
                 prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    end = span.end if span.end is not None else span.start
    duration = span.duration if span.duration is not None else 0.0
    label = f"{prefix}{connector}{span.name}"
    timing = (f"[{span.start:.2f} → {end:.2f}] "
              f"{duration:7.2f}s {span.status}")
    attrs = _format_attributes(span)
    lines.append(f"{label:<44} {timing}" + (f" {attrs}" if attrs else ""))
    child_prefix = prefix + ("   " if is_last else "│  ")
    kids = children.get(span.span_id, [])
    for index, child in enumerate(kids):
        _render_span(child, children, child_prefix,
                     index == len(kids) - 1, lines)


def render_trace(spans: Iterable[Span],
                 correlation_id: str | None = None) -> str:
    """Render spans as one indented tree per correlation id.

    Spans whose parent is unknown locally (remote parents whose side of the
    trace was filtered out) are promoted to roots of their correlation
    group rather than dropped.
    """
    spans = [s for s in spans
             if correlation_id is None or s.correlation_id == correlation_id]
    if not spans:
        return "(no spans)"
    known = {s.span_id for s in spans}
    children: dict[str | None, list[Span]] = {}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        parent = span.parent_id if span.parent_id in known else None
        children.setdefault(parent, []).append(span)
    lines: list[str] = []
    by_correlation: dict[str, list[Span]] = {}
    for root in children.get(None, []):
        by_correlation.setdefault(root.correlation_id, []).append(root)
    for corr, roots in by_correlation.items():
        lines.append(f"trace {corr}")
        for index, root in enumerate(roots):
            _render_span(root, children, "", index == len(roots) - 1, lines)
    return "\n".join(lines)


def render_metrics(registry: "MetricsRegistry") -> str:
    """Render a registry as a table: one row per instrument."""
    rows = []
    for instrument in registry:
        data = instrument.as_dict()
        if data["type"] == "histogram":
            if data["count"]:
                value = (f"n={data['count']} mean={data['mean']:.3f} "
                         f"p95={data['p95']:.3f} max={data['max']:.3f}")
            else:
                value = "n=0"
        else:
            value = str(data["value"])
        rows.append((data["name"], data["type"], value))
    if not rows:
        return "(no metrics)"
    return format_table(["Metric", "Type", "Value"], rows)

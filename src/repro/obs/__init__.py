"""Cross-cutting observability: tracing, metrics and export.

The stacked-authorisation story of the paper (Section 5, Figure 10) is only
operationally credible when every decision is attributable: which layer
denied, under which credentials, at what simulated time, at what cost.  This
package provides the three pieces the rest of the framework threads through
its decision paths:

- :mod:`repro.obs.trace` — spans with parent/child structure and correlation
  ids, so a master-side scheduling decision, the network delivery and the
  client-side stack mediation it triggered share one trace;
- :mod:`repro.obs.metrics` — counters, gauges and histograms keyed on the
  simulated clock (memo hits, per-layer verdicts, node firing latency);
- :mod:`repro.obs.export` — JSON and flamegraph-style text export.

Everything is driven by the :class:`~repro.util.clock.SimulatedClock`, so
traces are deterministic and replayable, exactly like the network they
observe.
"""

from __future__ import annotations

from repro.obs.export import (
    export_bundle,
    export_json,
    metrics_to_dict,
    render_metrics,
    render_trace,
    spans_to_dicts,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.util.clock import SimulatedClock


class Observability:
    """One tracer + one metrics registry over one simulated clock.

    This is the object the WebCom environment, network, master, clients and
    sessions all share: because they observe through the same instance, their
    spans interleave into one correlated trace.

    >>> obs = Observability()
    >>> with obs.tracer.span("demo"):
    ...     _ = obs.metrics.counter("demo.events").inc()
    >>> obs.metrics.counter("demo.events").value
    1
    """

    def __init__(self, clock: SimulatedClock | None = None) -> None:
        self.clock = clock or SimulatedClock()
        self.tracer = Tracer(self.clock)
        self.metrics = MetricsRegistry(self.clock)

    def reset(self) -> None:
        """Drop all recorded spans and metric values (the clock runs on)."""
        self.tracer.reset()
        self.metrics.reset()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "export_bundle",
    "export_json",
    "metrics_to_dict",
    "render_metrics",
    "render_trace",
    "spans_to_dicts",
]

"""Spans and tracers.

A :class:`Span` is one timed operation on the simulated clock; spans nest
through ``parent_id`` and group into end-to-end stories through
``correlation_id``.  The :class:`Tracer` keeps an active-span stack so that
code deep inside a decision path (a compliance-checker query inside a stack
mediation inside a client execute) parents itself correctly without any
plumbing: whatever span is currently open is the implicit parent, and its
correlation id is inherited.

Remote parenting is explicit: WebCom messages carry ``correlation_id`` and
``span_id`` in their payload, and the receiving side opens its span with
those as ``correlation_id=`` / ``parent_id=``, stitching the two processes'
work into one trace even though (in a real deployment) they would not share
an active-span stack.

Ids are deterministic (per-prefix counters), so traces are byte-for-byte
reproducible — the same property the simulated network guarantees.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.clock import SimulatedClock
from repro.util.ids import IdGenerator


@dataclass
class Span:
    """One timed, attributed operation.

    :param span_id: unique id of this span.
    :param name: operation name, e.g. ``"stack.layer.TRUST_MANAGEMENT"``.
    :param correlation_id: groups every span of one end-to-end story.
    :param parent_id: the enclosing span, or None for a root.
    :param start: simulated time the operation began.
    :param end: simulated time it finished (None while open).
    :param status: ``"ok"`` / ``"error"`` / free-form verdicts.
    :param attributes: structured payload (verdicts, node ids, op names...).
    """

    span_id: str
    name: str
    correlation_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Elapsed simulated seconds, or None while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self


class Tracer:
    """Creates, nests and stores spans on a simulated clock.

    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner") as inner:
    ...         pass
    >>> inner.parent_id == outer.span_id
    True
    >>> inner.correlation_id == outer.correlation_id
    True
    """

    def __init__(self, clock: SimulatedClock | None = None) -> None:
        self.clock = clock or SimulatedClock()
        self.spans: list[Span] = []
        self._ids = IdGenerator()
        self._stack: list[Span] = []

    # -- context ----------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def current_correlation(self) -> str | None:
        """The correlation id of the innermost open span, if any."""
        span = self.current()
        return span.correlation_id if span is not None else None

    def new_correlation_id(self) -> str:
        """Mint a fresh correlation id for a new end-to-end story."""
        return self._ids.next("corr")

    # -- span lifecycle ---------------------------------------------------

    def start(self, name: str, *, correlation_id: str | None = None,
              parent_id: str | None = None, **attributes: Any) -> Span:
        """Open a span (manual lifecycle; prefer :meth:`span`).

        The parent defaults to the currently open span and the correlation
        id to the parent's (or a fresh one for a root).  Pass both
        explicitly to parent onto a *remote* span carried in a message
        payload.
        """
        parent = self.current()
        if parent_id is None and parent is not None:
            parent_id = parent.span_id
        if correlation_id is None:
            correlation_id = (parent.correlation_id if parent is not None
                              else self.new_correlation_id())
        span = Span(span_id=self._ids.next("span"), name=name,
                    correlation_id=correlation_id, parent_id=parent_id,
                    start=self.clock.now(), attributes=dict(attributes))
        self.spans.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span, status: str | None = None) -> Span:
        """Close a span (stamps ``end``; pops it if it is the innermost)."""
        span.end = self.clock.now()
        if status is not None:
            span.status = status
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        return span

    @contextmanager
    def span(self, name: str, *, correlation_id: str | None = None,
             parent_id: str | None = None,
             **attributes: Any) -> Iterator[Span]:
        """Open a span for the duration of a ``with`` block.

        An escaping exception marks the span ``status="error"`` with the
        exception's repr attached.
        """
        opened = self.start(name, correlation_id=correlation_id,
                            parent_id=parent_id, **attributes)
        try:
            yield opened
        except BaseException as exc:
            opened.status = "error"
            opened.attributes.setdefault("error", repr(exc))
            raise
        finally:
            self.finish(opened, status=opened.status)

    def record(self, name: str, start: float, end: float, *,
               correlation_id: str | None = None,
               parent_id: str | None = None, status: str = "ok",
               **attributes: Any) -> Span:
        """Record an already-elapsed span retroactively.

        The simulated network uses this: a message's flight time is only
        known at delivery, so the ``net.*`` span is recorded after the fact
        with ``start=sent_at`` / ``end=arrives_at``.
        """
        span = Span(span_id=self._ids.next("span"), name=name,
                    correlation_id=correlation_id or self.new_correlation_id(),
                    parent_id=parent_id, start=start, end=end, status=status,
                    attributes=dict(attributes))
        self.spans.append(span)
        return span

    # -- queries ----------------------------------------------------------

    def find(self, name: str | None = None,
             correlation_id: str | None = None) -> list[Span]:
        """Spans matching every given filter, in start order."""
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (correlation_id is None
                     or s.correlation_id == correlation_id)]

    def correlations(self) -> list[str]:
        """Distinct correlation ids, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.correlation_id)
        return list(seen)

    def reset(self) -> None:
        """Drop recorded spans (open spans on the stack are kept live)."""
        self.spans = list(self._stack)

    def __len__(self) -> int:
        return len(self.spans)

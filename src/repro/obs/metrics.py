"""Counters, gauges and histograms on the simulated clock.

Instruments are named (dotted names, e.g. ``keynote.memo.hit``) and created
lazily through a :class:`MetricsRegistry`.  Every update is stamped with the
registry clock's current simulated time, so the metrics line up with trace
spans and audit records from the same run; histogram samples keep their
timestamps, which lets the export show *when* latency was paid, not just how
much.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.util.clock import SimulatedClock


class Counter:
    """A monotonically increasing count.

    >>> c = Counter("requests")
    >>> _ = c.inc(); _ = c.inc(2)
    >>> c.value
    3
    """

    def __init__(self, name: str, clock: SimulatedClock | None = None) -> None:
        self.name = name
        self.clock = clock or SimulatedClock()
        self.value = 0
        self.updated_at: float | None = None

    def inc(self, amount: int = 1) -> int:
        """Add ``amount`` (must be non-negative); returns the new value."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        self.updated_at = self.clock.now()
        return self.value

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value,
                "updated_at": self.updated_at}


class Gauge:
    """A value that can move both ways (pool sizes, queue depths)."""

    def __init__(self, name: str, clock: SimulatedClock | None = None) -> None:
        self.name = name
        self.clock = clock or SimulatedClock()
        self.value: float = 0.0
        self.updated_at: float | None = None

    def set(self, value: float) -> float:
        self.value = float(value)
        self.updated_at = self.clock.now()
        return self.value

    def add(self, delta: float) -> float:
        return self.set(self.value + delta)

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "name": self.name, "value": self.value,
                "updated_at": self.updated_at}


class Histogram:
    """A distribution of observations, each stamped with simulated time.

    >>> h = Histogram("latency")
    >>> for v in (1.0, 2.0, 3.0):
    ...     _ = h.observe(v)
    >>> h.count, h.mean(), h.percentile(50)
    (3, 2.0, 2.0)
    """

    def __init__(self, name: str, clock: SimulatedClock | None = None) -> None:
        self.name = name
        self.clock = clock or SimulatedClock()
        #: (observed_at, value) pairs in observation order
        self.samples: list[tuple[float, float]] = []

    def observe(self, value: float) -> float:
        self.samples.append((self.clock.now(), float(value)))
        return value

    @property
    def count(self) -> int:
        return len(self.samples)

    def total(self) -> float:
        return sum(v for _t, v in self.samples)

    def minimum(self) -> float:
        return min((v for _t, v in self.samples), default=math.nan)

    def maximum(self) -> float:
        return max((v for _t, v in self.samples), default=math.nan)

    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return self.total() / len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``0 <= p <= 100``."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.samples:
            return math.nan
        ordered = sorted(v for _t, v in self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def as_dict(self) -> dict[str, Any]:
        summary = {"type": "histogram", "name": self.name,
                   "count": self.count}
        if self.samples:
            summary.update(
                total=self.total(), min=self.minimum(), max=self.maximum(),
                mean=self.mean(), p50=self.percentile(50),
                p95=self.percentile(95), p99=self.percentile(99),
                samples=[{"at": t, "value": v} for t, v in self.samples])
        return summary


class MetricsRegistry:
    """Lazily creates and holds named instruments over one clock.

    Asking for an existing name returns the existing instrument; asking for
    a name already held by a *different* instrument kind raises, so
    ``keynote.memo.hit`` can never silently be both a counter and a gauge.
    """

    def __init__(self, clock: SimulatedClock | None = None) -> None:
        self.clock = clock or SimulatedClock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, self.clock)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def time(self, name: str):
        """Context manager observing the block's simulated duration into
        histogram ``name`` (zero when nothing advanced the clock)."""
        return _HistogramTimer(self.histogram(name), self.clock)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> "Counter | Gauge | Histogram | None":
        return self._instruments.get(name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Name -> serialised instrument, sorted by name."""
        return {name: self._instruments[name].as_dict()
                for name in self.names()}

    def reset(self) -> None:
        """Forget every instrument (callers re-create them lazily)."""
        self._instruments.clear()

    def __iter__(self) -> Iterator["Counter | Gauge | Histogram"]:
        return iter(self._instruments[name] for name in self.names())

    def __len__(self) -> int:
        return len(self._instruments)


class _HistogramTimer:
    def __init__(self, histogram: Histogram, clock: SimulatedClock) -> None:
        self.histogram = histogram
        self.clock = clock
        self.started_at: float | None = None

    def __enter__(self) -> "_HistogramTimer":
        self.started_at = self.clock.now()
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        assert self.started_at is not None
        self.histogram.observe(self.clock.now() - self.started_at)

"""Primality testing and prime search (Miller-Rabin).

Used to generate Schnorr group parameters.  The default group shipped in
:mod:`repro.crypto.group` was produced with these routines; the functions stay
public so tests can regenerate parameters and verify them.
"""

from __future__ import annotations

import hashlib

# Deterministic witness set: for n < 3.3e24 these witnesses make Miller-Rabin
# exact, and for larger n they give an error bound far below 2^-80 when
# combined with the derived witnesses added in is_probable_prime.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _miller_rabin_round(n: int, d: int, r: int, a: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime' for witness a."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def _derived_witnesses(n: int, count: int) -> list[int]:
    """Deterministically derive extra witnesses from n itself."""
    witnesses: list[int] = []
    counter = 0
    while len(witnesses) < count:
        h = hashlib.sha256(f"mr-witness:{n}:{counter}".encode()).digest()
        a = int.from_bytes(h, "big") % (n - 3) + 2
        witnesses.append(a)
        counter += 1
    return witnesses


def is_probable_prime(n: int, extra_rounds: int = 8) -> bool:
    """Return True if ``n`` is (probably) prime.

    Deterministic for n < 3.3e24 via fixed witnesses; beyond that, additional
    witnesses derived from ``n`` push the error probability below 2^-100.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        if not _miller_rabin_round(n, d, r, a % n):
            return False
    if n.bit_length() > 82:
        for a in _derived_witnesses(n, extra_rounds):
            if not _miller_rabin_round(n, d, r, a):
                return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def find_schnorr_parameters(q_bits: int, p_bits: int, seed: str) -> tuple[int, int, int]:
    """Find Schnorr group parameters (p, q, g) deterministically from ``seed``.

    ``q`` is a ``q_bits`` prime, ``p = k*q + 1`` is a ``p_bits`` prime, and
    ``g`` generates the order-``q`` subgroup of Z_p^*.

    This is slow for large sizes; the library ships a precomputed default
    group and only calls this in tests.
    """
    if q_bits >= p_bits:
        raise ValueError("q_bits must be smaller than p_bits")

    def stream(tag: str, counter: int, bits: int) -> int:
        out = b""
        block = 0
        while len(out) * 8 < bits:
            out += hashlib.sha256(f"{seed}:{tag}:{counter}:{block}".encode()).digest()
            block += 1
        val = int.from_bytes(out, "big") >> (len(out) * 8 - bits)
        return val | (1 << (bits - 1)) | 1  # force top bit and oddness

    counter = 0
    while True:
        q = stream("q", counter, q_bits)
        counter += 1
        if not is_probable_prime(q):
            continue
        # Search for k such that p = k*q + 1 is prime with the right size.
        k_lo = (1 << (p_bits - 1)) // q + 1
        k_hi = ((1 << p_bits) - 1) // q
        for dk in range(4096):
            k = k_lo + dk
            if k > k_hi:
                break
            p = k * q + 1
            if p.bit_length() != p_bits:
                continue
            if is_probable_prime(p):
                g = _find_generator(p, q)
                if g is not None:
                    return p, q, g
        # else: try a new q


def _find_generator(p: int, q: int) -> int | None:
    """Find a generator of the order-q subgroup of Z_p^*."""
    k = (p - 1) // q
    for h in range(2, 200):
        g = pow(h, k, p)
        if g not in (0, 1) and pow(g, q, p) == 1:
            return g
    return None

"""Schnorr group: a prime-order subgroup of Z_p^* used for signatures.

``DEFAULT_GROUP`` was generated with
``find_schnorr_parameters(160, 512, "repro-default-group-v1")`` and is
verified by the test suite.  512/160-bit parameters are far below modern
security margins but this is a *simulation substrate*: the framework only
needs sign/verify semantics (including rejection of forgeries), not
resistance to a funded adversary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.prime import is_probable_prime


@dataclass(frozen=True)
class SchnorrGroup:
    """Group parameters (p, q, g): g generates the order-q subgroup of Z_p^*."""

    p: int
    q: int
    g: int

    def validate(self) -> None:
        """Check the parameters are a well-formed Schnorr group.

        :raises ValueError: if any invariant fails.
        """
        if not is_probable_prime(self.p):
            raise ValueError("p is not prime")
        if not is_probable_prime(self.q):
            raise ValueError("q is not prime")
        if (self.p - 1) % self.q != 0:
            raise ValueError("q does not divide p-1")
        if not (1 < self.g < self.p):
            raise ValueError("g out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise ValueError("g does not generate an order-q subgroup")
        if self.g == 1:
            raise ValueError("g is the identity")

    def contains(self, element: int) -> bool:
        """True if ``element`` is in the order-q subgroup."""
        return 0 < element < self.p and pow(element, self.q, self.p) == 1

    def exp(self, exponent: int) -> int:
        """Return g^exponent mod p."""
        return pow(self.g, exponent, self.p)

    def hash_to_exponent(self, *parts: bytes) -> int:
        """Hash byte strings to an exponent in [0, q)."""
        h = hashlib.sha256()
        for part in parts:
            h.update(len(part).to_bytes(8, "big"))
            h.update(part)
        # Two rounds widen the digest past q's bit length to keep the
        # modular reduction bias negligible.
        first = h.digest()
        second = hashlib.sha256(first + b"\x01").digest()
        return int.from_bytes(first + second, "big") % self.q


DEFAULT_GROUP = SchnorrGroup(
    p=int(
        "8000000000000000000000000000000000000000000000000000000000000000"
        "00000000000000000000016256e6d4c7c94244bcdfa1ee1e3feead57d5f98b85",
        16,
    ),
    q=int("ac5f9a75e319c7eb85159ab1c6b3dc9b75045a7d", 16),
    g=int(
        "1494cc1e2e826c0696fd7515a8eac524001b1e4d3d4e87bfee03dcba730c3c14"
        "9c88c582158ad4caa459098a67a2fee6db6b3249f4e4d1c4c868d394a6854d07",
        16,
    ),
)

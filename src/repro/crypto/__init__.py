"""Cryptographic substrate.

The paper's trust-management layer rests on public-key signatures (KeyNote
credentials are signed, SPKI certificates are signed).  The original system
used an OpenSSL-backed KeyNote toolkit; this reproduction implements a real
Schnorr signature scheme over a prime-order subgroup in pure Python
(:mod:`hashlib` only), with deterministic keypair derivation so tests and
benchmarks are reproducible.

Public API::

    from repro.crypto import KeyPair, Keystore, SchnorrGroup

    kp = KeyPair.generate(seed="alice")
    sig = kp.sign(b"message")
    assert kp.public.verify(b"message", sig)
"""

from repro.crypto.group import DEFAULT_GROUP, SchnorrGroup
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, Signature
from repro.crypto.keystore import (
    SIGNATURE_CACHE,
    Keystore,
    SignatureVerificationCache,
)
from repro.crypto.prime import is_probable_prime, next_prime

__all__ = [
    "DEFAULT_GROUP",
    "KeyPair",
    "Keystore",
    "PrivateKey",
    "PublicKey",
    "SchnorrGroup",
    "Signature",
    "SIGNATURE_CACHE",
    "SignatureVerificationCache",
    "is_probable_prime",
    "next_prime",
]

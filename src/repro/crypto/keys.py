"""Key pairs and Schnorr signatures.

Keys serialise to the textual form KeyNote credentials embed, e.g.::

    "kn-schnorr-hex:3a91..."

which plays the role of the ``"rsa-hex:..."`` keys in RFC 2704.  Signatures
are deterministic (RFC-6979 style nonce derivation) so credential bytes are
reproducible across runs.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.group import DEFAULT_GROUP, SchnorrGroup
from repro.errors import InvalidSignatureError, KeyFormatError

KEY_PREFIX = "kn-schnorr-hex"
SIG_PREFIX = "sig-schnorr-sha256-hex"


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature (challenge e, response s)."""

    e: int
    s: int

    def encode(self) -> str:
        """Serialise to the textual form embedded in credentials."""
        return f"{SIG_PREFIX}:{self.e:040x}{self.s:040x}"

    @classmethod
    def decode(cls, text: str) -> "Signature":
        """Parse the textual form.

        :raises KeyFormatError: if the text is malformed.
        """
        prefix, _, body = text.partition(":")
        if prefix != SIG_PREFIX or len(body) != 80:
            raise KeyFormatError(f"malformed signature: {text[:40]!r}...")
        try:
            return cls(e=int(body[:40], 16), s=int(body[40:], 16))
        except ValueError as exc:
            raise KeyFormatError(f"non-hex signature body: {text!r}") from exc


@dataclass(frozen=True)
class PublicKey:
    """A public key: group element y = g^x."""

    y: int
    group: SchnorrGroup = DEFAULT_GROUP

    def encode(self) -> str:
        """Serialise to the ``kn-schnorr-hex:...`` textual form."""
        width = (self.group.p.bit_length() + 3) // 4
        return f"{KEY_PREFIX}:{self.y:0{width}x}"

    @classmethod
    def decode(cls, text: str, group: SchnorrGroup = DEFAULT_GROUP) -> "PublicKey":
        """Parse the textual form.

        :raises KeyFormatError: if the text is malformed or the point is not
            in the group.
        """
        prefix, _, body = text.partition(":")
        if prefix != KEY_PREFIX or not body:
            raise KeyFormatError(f"malformed public key: {text[:40]!r}")
        try:
            y = int(body, 16)
        except ValueError as exc:
            raise KeyFormatError(f"non-hex key body: {text!r}") from exc
        key = cls(y=y, group=group)
        if not group.contains(y):
            raise KeyFormatError("public key is not a group element")
        return key

    @staticmethod
    def looks_like_key(text: str) -> bool:
        """True if ``text`` has the serialised-key prefix."""
        return text.startswith(KEY_PREFIX + ":")

    def fingerprint(self, length: int = 16) -> str:
        """Short stable identifier for display and indexing."""
        return hashlib.sha256(self.encode().encode()).hexdigest()[:length]

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Verify a Schnorr signature over ``message``."""
        g, p, q = self.group.g, self.group.p, self.group.q
        if not (0 <= signature.e < q and 0 <= signature.s < q):
            return False
        # r' = g^s * y^e ; valid iff H(r' || m) == e
        r = (pow(g, signature.s, p) * pow(self.y, signature.e, p)) % p
        e = self.group.hash_to_exponent(_int_bytes(r, p), message)
        return e == signature.e

    def verify_or_raise(self, message: bytes, signature: Signature) -> None:
        """Like :meth:`verify`, raising on failure.

        :raises InvalidSignatureError: if the signature does not verify.
        """
        if not self.verify(message, signature):
            raise InvalidSignatureError(
                f"signature verification failed for key {self.fingerprint()}")


@dataclass(frozen=True)
class PrivateKey:
    """A private exponent x in [1, q)."""

    x: int
    group: SchnorrGroup = DEFAULT_GROUP

    def public(self) -> PublicKey:
        """Derive the corresponding public key."""
        return PublicKey(y=self.group.exp(self.x), group=self.group)

    def sign(self, message: bytes) -> Signature:
        """Produce a deterministic Schnorr signature over ``message``."""
        g, p, q = self.group.g, self.group.p, self.group.q
        k = _deterministic_nonce(self.x, message, q)
        r = pow(g, k, p)
        e = self.group.hash_to_exponent(_int_bytes(r, p), message)
        s = (k - self.x * e) % q
        return Signature(e=e, s=s)


@dataclass(frozen=True)
class KeyPair:
    """A private/public key pair."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def generate(cls, seed: str, group: SchnorrGroup = DEFAULT_GROUP) -> "KeyPair":
        """Deterministically derive a key pair from a seed string.

        Same seed + group always yields the same pair, which keeps credential
        bytes stable across test runs.
        """
        material = hashlib.sha256(f"repro-keypair:{seed}".encode()).digest()
        material += hashlib.sha256(material + b"\x01").digest()
        x = int.from_bytes(material, "big") % (group.q - 1) + 1
        private = PrivateKey(x=x, group=group)
        return cls(private=private, public=private.public())

    def sign(self, message: bytes) -> Signature:
        """Sign with the private half."""
        return self.private.sign(message)


def _int_bytes(value: int, modulus: int) -> bytes:
    """Fixed-width big-endian encoding of ``value`` for hashing."""
    width = (modulus.bit_length() + 7) // 8
    return value.to_bytes(width, "big")


def _deterministic_nonce(x: int, message: bytes, q: int) -> int:
    """Derive a per-(key, message) nonce in [1, q) via HMAC-SHA256."""
    key = x.to_bytes((q.bit_length() + 7) // 8 + 8, "big")
    counter = 0
    while True:
        mac = hmac.new(key, message + counter.to_bytes(4, "big"),
                       hashlib.sha256).digest()
        mac += hmac.new(key, mac + b"\x02", hashlib.sha256).digest()
        k = int.from_bytes(mac, "big") % q
        if k != 0:
            return k
        counter += 1

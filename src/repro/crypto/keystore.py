"""A simple PKI: named keys, lookup in both directions, and a process-wide
signature-verification cache.

The paper's figures use symbolic key names (``Kbob``, ``Kalice``,
``KWebCom``).  The keystore maps those names to real key pairs and lets
credentials be written with symbolic names while being signed with real keys.
It plays the role of the "System PKI" box in Figure 3.

:class:`SignatureVerificationCache` memoises the (deterministic) outcome of
Schnorr signature verification by ``(key, message digest, signature)``: a
credential's bytes are verified once per process, not once per
compliance-checker build.  The shared :data:`SIGNATURE_CACHE` instance is
what :meth:`Credential.verify <repro.keynote.credential.Credential.verify>`
consults; bind a metrics registry to surface ``crypto.sigverify.hit`` /
``crypto.sigverify.miss`` counters.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.crypto.keys import KeyPair, PublicKey, Signature
from repro.errors import UnknownKeyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


class SignatureVerificationCache:
    """Memoises signature-verification outcomes.

    Verification is a pure function of (public key, message, signature), so
    its result can be cached process-wide.  The message is keyed by SHA-256
    digest to bound memory; both valid and invalid outcomes are cached (an
    invalid signature stays invalid).

    The shared process-wide instance is consulted by every concurrent serve
    handler (and by test harnesses running checkers from worker threads), so
    lookups, inserts, counter bumps and :meth:`clear` are serialised under
    one lock.  The Schnorr verification itself runs *outside* the lock —
    it is pure, so two racing misses at worst both verify and store the
    same value.

    >>> cache = SignatureVerificationCache()
    >>> cache.hits, cache.misses
    (0, 0)
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[int, bytes, str], bool] = {}
        self.hits = 0
        self.misses = 0
        self._metrics: "MetricsRegistry | None" = None
        self._lock = threading.Lock()

    def bind_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Mirror future hits/misses into ``crypto.sigverify.*`` counters."""
        self._metrics = metrics

    def verify(self, public: PublicKey, message: bytes,
               signature: Signature) -> bool:
        """Cached :meth:`PublicKey.verify`."""
        key = (public.y, hashlib.sha256(message).digest(),
               f"{signature.e:x}:{signature.s:x}")
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                metrics = self._metrics
            else:
                self.misses += 1
                metrics = self._metrics
        if cached is not None:
            if metrics is not None:
                metrics.counter("crypto.sigverify.hit").inc()
            return cached
        if metrics is not None:
            metrics.counter("crypto.sigverify.miss").inc()
        result = public.verify(message, signature)
        with self._lock:
            self._cache[key] = result
        return result

    def clear(self) -> None:
        """Drop every cached outcome and zero the counters."""
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._cache), "hits": self.hits,
                    "misses": self.misses}


#: the process-wide cache credentials verify through by default
SIGNATURE_CACHE = SignatureVerificationCache()


class Keystore:
    """Registry of named key pairs.

    >>> ks = Keystore()
    >>> kp = ks.create("Kbob")
    >>> ks.public("Kbob") == kp.public
    True
    """

    def __init__(self) -> None:
        self._pairs: dict[str, KeyPair] = {}
        self._by_encoding: dict[str, str] = {}

    def create(self, name: str, seed: str | None = None) -> KeyPair:
        """Create (or return the existing) key pair for ``name``.

        :param seed: optional explicit derivation seed; defaults to the name.
        """
        if name in self._pairs:
            return self._pairs[name]
        pair = KeyPair.generate(seed if seed is not None else name)
        self._pairs[name] = pair
        self._by_encoding[pair.public.encode()] = name
        return pair

    def add(self, name: str, pair: KeyPair) -> None:
        """Register an externally created pair under ``name``."""
        self._pairs[name] = pair
        self._by_encoding[pair.public.encode()] = name

    def pair(self, name: str) -> KeyPair:
        """Return the key pair for ``name``.

        :raises UnknownKeyError: if no such name is registered.
        """
        try:
            return self._pairs[name]
        except KeyError:
            raise UnknownKeyError(f"no key named {name!r}") from None

    def public(self, name: str) -> PublicKey:
        """Return the public key for ``name``."""
        return self.pair(name).public

    def name_of(self, key: PublicKey | str) -> str:
        """Reverse lookup: the symbolic name of a public key.

        :raises UnknownKeyError: if the key is not registered.
        """
        encoding = key.encode() if isinstance(key, PublicKey) else key
        try:
            return self._by_encoding[encoding]
        except KeyError:
            raise UnknownKeyError("public key is not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._pairs

    def __iter__(self) -> Iterator[str]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def resolve(self, symbol: str) -> str:
        """Map a symbolic name to its encoded public key (identity for
        already-encoded keys)."""
        if PublicKey.looks_like_key(symbol):
            return symbol
        return self.public(symbol).encode()

    def symbol_table(self) -> Mapping[str, str]:
        """Return {symbolic name -> encoded public key} for all entries."""
        return {name: pair.public.encode() for name, pair in self._pairs.items()}

    def display(self, encoded: str) -> str:
        """Best-effort pretty name for an encoded key (falls back to a
        truncated encoding)."""
        name = self._by_encoding.get(encoded)
        if name is not None:
            return name
        return encoded[:24] + "..." if len(encoded) > 27 else encoded

"""An SPKI/SDSI backend for the decentralisation service (footnote 1).

"Secure WebCom includes support for SPKI/SDSI.  While we use KeyNote in this
paper, our results are applicable to SPKI/SDSI."

:class:`SPKIDelegationService` exposes the same surface as the KeyNote-backed
:class:`~repro.core.decentralisation.DelegationService` — ``grant_role``,
``delegate_role``, ``holds_role``, ``revoke`` — but implements it with SPKI
authorisation certificates, role tags and 5-tuple chain search.  The tests
replay the Figure-6/7 scenarios through both backends and assert identical
decisions.
"""

from __future__ import annotations

from repro.crypto.keystore import Keystore
from repro.spki.cert import AuthCert, NameCert, Validity
from repro.spki.chain import CertStore
from repro.translate.to_spki import spki_role_tag


class SPKIDelegationService:
    """Role membership and delegation over SPKI certificates.

    The administration key is the verifier's trust root (the SPKI "self"),
    so no separate admit step is needed: chains start at ``admin_key``.
    """

    def __init__(self, keystore: Keystore, admin_key: str,
                 validity: Validity = Validity()) -> None:
        self.keystore = keystore
        self.admin_key = admin_key
        self.validity = validity
        keystore.create(admin_key)
        self.store = CertStore(keystore)

    def grant_role(self, user_key: str, domain: str, role: str,
                   delegatable: bool = True) -> AuthCert:
        """Administration-signed membership (the Figure-6 analogue).

        :param delegatable: SPKI makes onward delegation explicit via the
            propagate bit; KeyNote makes it implicit.  Default True to match
            the KeyNote backend's semantics.
        """
        self.keystore.create(user_key)
        cert = AuthCert(
            issuer=self.admin_key, subject=user_key,
            tag=spki_role_tag(domain, role), delegate=delegatable,
            validity=self.validity,
        ).sign(self.keystore.pair(self.admin_key).private)
        self.store.add_auth(cert)
        # Record the SDSI name too, for auditing parity with role tables.
        name = NameCert(issuer=self.admin_key, name=f"{domain}/{role}",
                        subject=user_key, validity=self.validity,
                        ).sign(self.keystore.pair(self.admin_key).private)
        self.store.add_name(name)
        return cert

    def delegate_role(self, from_key: str, to_key: str, domain: str,
                      role: str, delegatable: bool = False) -> AuthCert:
        """User-to-user delegation (the Figure-7 analogue).

        Always issuable; only *effective* if ``from_key`` holds the role
        with the propagate bit — exactly KeyNote's monotonicity, made
        syntactic.
        """
        self.keystore.create(to_key)
        cert = AuthCert(
            issuer=from_key, subject=to_key,
            tag=spki_role_tag(domain, role), delegate=delegatable,
            validity=self.validity,
        ).sign(self.keystore.pair(from_key).private)
        self.store.add_auth(cert)
        return cert

    def holds_role(self, user_key: str, domain: str, role: str,
                   at_time: float = 0.0) -> bool:
        """Chain search from the administration root."""
        return self.store.is_authorised(self.admin_key, user_key,
                                        spki_role_tag(domain, role),
                                        at_time=at_time)

    def revoke(self, cert: AuthCert) -> bool:
        """Remove a certificate from the store (revocation-by-removal,
        matching the KeyNote backend).  Returns True if present."""
        certs = self.store.auth_certs
        if cert not in certs:
            return False
        names = self.store.name_certs
        self.store = CertStore(self.keystore)
        for other in certs:
            if other != cert:
                self.store.add_auth(other)
        for name in names:
            self.store.add_name(name)
        return True

    def members_of(self, domain: str, role: str) -> set[str]:
        """Users named into the role by the administration key (SDSI
        names; direct grants only, like a role table)."""
        return self.store.resolve_name(self.admin_key, f"{domain}/{role}")

"""A global naming service — the paper's stated limitation, implemented.

"The system as outlined above has some limitations: in order to maintain a
coherent security policy, we must have the ability to name objects in the
entire system in a consistent and reliable fashion."  (Section 7)

Each middleware names objects locally (an EJB bean name, a CORBA repository
id, a COM prog-id).  The :class:`GlobalNameService` binds those local names
to global names so the translation and consistency layers can unify object
types across systems — e.g. EJB's ``SalariesBean`` and COM's
``Payroll.Salaries`` both meaning the global ``SalariesDB``.

``canonicalise_policy`` rewrites an extracted policy's object types into
global names, which makes :func:`repro.translate.consistency.check_consistency`
meaningful across heterogeneous systems that would otherwise trivially
diverge on spelling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TranslationError
from repro.rbac.policy import RBACPolicy


@dataclass(frozen=True)
class NameBinding:
    """One binding: (system, local name) <-> global name."""

    system: str
    local_name: str
    global_name: str


class GlobalNameService:
    """Bidirectional (system, local) <-> global object-name registry."""

    def __init__(self) -> None:
        self._to_global: dict[tuple[str, str], str] = {}
        self._to_local: dict[tuple[str, str], str] = {}

    def bind(self, system: str, local_name: str, global_name: str) -> NameBinding:
        """Bind a local name to a global name.

        :raises TranslationError: if either side is already bound
            differently (bindings must stay functional both ways per
            system — that's the "consistent and reliable" requirement).
        """
        forward_key = (system, local_name)
        backward_key = (system, global_name)
        existing = self._to_global.get(forward_key)
        if existing is not None and existing != global_name:
            raise TranslationError(
                f"{system}:{local_name} already bound to {existing!r}")
        reverse = self._to_local.get(backward_key)
        if reverse is not None and reverse != local_name:
            raise TranslationError(
                f"{global_name!r} already names {system}:{reverse}")
        self._to_global[forward_key] = global_name
        self._to_local[backward_key] = local_name
        return NameBinding(system, local_name, global_name)

    def to_global(self, system: str, local_name: str) -> str:
        """Resolve a local name (identity if unbound)."""
        return self._to_global.get((system, local_name), local_name)

    def to_local(self, system: str, global_name: str) -> str:
        """Resolve a global name into a system's local name (identity if
        unbound)."""
        return self._to_local.get((system, global_name), global_name)

    def is_bound(self, system: str, local_name: str) -> bool:
        """True if the local name has an explicit binding."""
        return (system, local_name) in self._to_global

    def bindings(self) -> list[NameBinding]:
        """All bindings, sorted for display."""
        return sorted(
            (NameBinding(system, local, global_name)
             for (system, local), global_name in self._to_global.items()),
            key=lambda b: (b.system, b.local_name))

    # -- policy rewriting -------------------------------------------------------

    def canonicalise_policy(self, policy: RBACPolicy,
                            system: str) -> RBACPolicy:
        """Rewrite a policy's object types from local to global names."""
        canonical = RBACPolicy(f"{policy.name}@global")
        for grant in policy.grants:
            canonical.grant(grant.domain, grant.role,
                            self.to_global(system, grant.object_type),
                            grant.permission)
        for assignment in policy.assignments:
            canonical.add_assignment(assignment)
        return canonical

    def localise_policy(self, policy: RBACPolicy, system: str) -> RBACPolicy:
        """Rewrite a policy's object types from global to local names."""
        local = RBACPolicy(f"{policy.name}@{system}")
        for grant in policy.grants:
            local.grant(grant.domain, grant.role,
                        self.to_local(system, grant.object_type),
                        grant.permission)
        for assignment in policy.assignments:
            local.add_assignment(assignment)
        return local

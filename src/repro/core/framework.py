"""The heterogeneous middleware security framework (the paper's system).

One :class:`HeterogeneousSecurityFramework` instance represents a Secure
WebCom environment's security fabric: the PKI, the trust-management session,
the registered middleware, and the five policy services of Section 4 as
methods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keystore import Keystore
from repro.core.decentralisation import DelegationService
from repro.errors import ConstraintViolationError
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.middleware.base import Middleware
from repro.middleware.registry import MiddlewareRegistry
from repro.rbac.constraints import ConstraintSet, SoDConstraint
from repro.rbac.diff import PolicyDelta, merge_policies
from repro.rbac.policy import RBACPolicy
from repro.translate.consistency import ConsistencyReport
from repro.translate.from_keynote import comprehend_credentials
from repro.translate.migrate import DomainMapping, MigrationReport, migrate_policy
from repro.translate.propagate import PropagationEngine
from repro.translate.to_keynote import encode_full
from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog
from repro.webcom.keycom import KeyComService


@dataclass(frozen=True)
class ComprehensionResult:
    """Output of the comprehension service: the unified view, its credential
    encoding, and cross-system divergences."""

    policy: RBACPolicy
    policy_credential: Credential
    membership_credentials: tuple[Credential, ...]
    conflicts: tuple[str, ...]


class HeterogeneousSecurityFramework:
    """Facade over the whole security fabric.

    :param admin_key: name of the WebCom administration key (``KWebCom`` in
        the paper's figures).
    """

    def __init__(self, admin_key: str = "KWebCom",
                 audit: AuditLog | None = None,
                 clock: SimulatedClock | None = None) -> None:
        self.audit = audit or AuditLog()
        self.clock = clock or SimulatedClock()
        self.keystore = Keystore()
        self.admin_key = admin_key
        self.keystore.create(admin_key)
        self.session = KeyNoteSession(keystore=self.keystore,
                                      audit=self.audit, clock=self.clock)
        self.registry = MiddlewareRegistry()
        self.global_policy = RBACPolicy("global")
        self.propagation = PropagationEngine(self.global_policy,
                                             audit=self.audit)
        self.delegation = DelegationService(self.session, self.keystore,
                                            admin_key)
        self.delegation.admit_administrator()
        self._keycom: dict[str, KeyComService] = {}
        #: global invariants checked on every maintenance change
        self.constraints = ConstraintSet()

    # -- registration -----------------------------------------------------------

    def register_middleware(self, middleware: Middleware,
                            domains: set[str]) -> KeyComService:
        """Register a middleware as responsible for ``domains``; returns its
        KeyCOM administration service (Figure 8)."""
        self.registry.register(middleware)
        self.propagation.register(middleware, domains)
        service = KeyComService(middleware, self.session, audit=self.audit)
        self._keycom[middleware.name] = service
        return service

    def keycom(self, middleware_name: str) -> KeyComService:
        """The KeyCOM service of one registered middleware."""
        return self._keycom[middleware_name]

    # -- Policy Configuration (4.1) --------------------------------------------------

    def configure(self, policy: RBACPolicy) -> ConsistencyReport:
        """Commission a global policy: install it as the authoritative
        trust-management state, encode it as credentials, and push the
        relevant slice into every middleware."""
        self.propagation.set_policy(policy.copy("global"))
        self.global_policy = self.propagation.global_policy
        self._refresh_credentials()
        self.propagation.push_all()
        return self.propagation.check()

    def _refresh_credentials(self) -> None:
        """Re-derive the credential encoding from the global policy."""
        self.session.clear_credentials()
        _policy_cred, memberships = encode_full(
            self.global_policy, self.admin_key, self.keystore)
        for credential in memberships:
            self.session.add_credential(credential)

    # -- Policy Comprehension (4.2) -----------------------------------------------------

    def comprehend(self) -> ComprehensionResult:
        """Synthesise every middleware's native policy into one RBAC view and
        encode it as KeyNote credentials."""
        merged, conflicts = merge_policies(
            "comprehended", self.registry.extract_all())
        policy_cred, memberships = encode_full(
            merged, self.admin_key, self.keystore)
        return ComprehensionResult(
            policy=merged,
            policy_credential=policy_cred,
            membership_credentials=tuple(memberships),
            conflicts=tuple(str(c) for c in conflicts))

    def comprehend_from_credentials(self,
                                    credentials: list[Credential],
                                    ) -> RBACPolicy:
        """The inverse direction: read an RBAC view out of credentials."""
        return comprehend_credentials(credentials, keystore=self.keystore)

    # -- Policy Migration (4.3) -----------------------------------------------------------

    def migrate(self, source_name: str, target_name: str,
                mapping: DomainMapping,
                target_permissions: "tuple[str, ...] | None" = None,
                ) -> MigrationReport:
        """Migrate one registered middleware's policy onto another."""
        source = self.registry.get(source_name)
        target = self.registry.get(target_name)
        return migrate_policy(source, target, mapping,
                              target_permissions=target_permissions)

    # -- Policy Maintenance (4.4) ------------------------------------------------------------

    def add_constraint(self, constraint: SoDConstraint) -> None:
        """Register a global separation-of-duty invariant.

        :raises ConstraintViolationError: if the *current* policy already
            violates it (a constraint must start satisfied to be meaningful).
        """
        violations = constraint.violations(self.global_policy)
        if violations:
            raise ConstraintViolationError(
                f"{constraint} already violated by {violations}")
        self.constraints.add(constraint)

    def apply_change(self, delta: PolicyDelta) -> ConsistencyReport:
        """Change the trust-management policy and propagate down the stack
        (the paper's recommended direction for changes).

        Global SoD constraints are checked *before* anything propagates; a
        violating delta is rejected atomically.

        :raises ConstraintViolationError: if the delta would violate a
            registered constraint (nothing is applied).
        """
        candidate = delta.apply_to(self.global_policy.copy("candidate"))
        violations = self.constraints.check(candidate)
        if violations:
            raise ConstraintViolationError(
                f"change rejected; would violate {violations}")
        report = self.propagation.apply_delta(delta)
        self._refresh_credentials()
        return report

    def check_consistency(self, strict: bool = False) -> ConsistencyReport:
        """Re-verify that every middleware matches the global policy."""
        return self.propagation.check(strict=strict)

    # -- Policy Decentralisation (4.5) ------------------------------------------------------------

    def user_key(self, user: str) -> str:
        """The key-name convention for a user (``Kclaire`` for Claire)."""
        return f"K{user.lower()}"

    def check_access_by_key(self, user_key: str, domain: str, role: str,
                            object_type: str, permission: str) -> bool:
        """The end-to-end authorisation decision through the credential
        chain: is the key authorised to exercise the permission under the
        given (domain, role)?"""
        from repro.translate.common import action_attributes

        policy_cred, _ = encode_full(self.global_policy, self.admin_key,
                                     self.keystore)
        attrs = action_attributes(domain, role, object_type, permission)
        result = self.session.query(attrs, [user_key],
                                    extra_credentials=[policy_cred])
        return bool(result)

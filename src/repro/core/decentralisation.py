"""Policy Decentralisation (Section 4.5): delegation between user keys.

"Key KWebCom can delegate authorisation for role Manager in domain Finance to
Claire by writing and signing the credential shown in Figure 6. ... Claire
can delegate her role to Kfred by writing the credential shown in Figure 7."

The service issues role-membership credentials (administration → user) and
user-to-user delegations, and answers membership queries through the
compliance checker — so a delegation chain is only effective when every link
actually holds the delegated role, which is precisely what the paper's
Figure 6/7 inconsistency exercises (see DESIGN.md).
"""

from __future__ import annotations

from repro.crypto.keystore import Keystore
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.translate.common import membership_attributes
from repro.translate.to_keynote import membership_conditions


class DelegationService:
    """Issues and evaluates role-membership delegations."""

    def __init__(self, session: KeyNoteSession, keystore: Keystore,
                 admin_key: str) -> None:
        self.session = session
        self.keystore = keystore
        self.admin_key = admin_key
        keystore.create(admin_key)

    def admit_administrator(self) -> Credential:
        """Install the POLICY assertion trusting the administration key for
        *role administration* (the top of every membership chain).

        The conditions deliberately require ``Permission`` and ``ObjectType``
        to be **absent** (absent attributes evaluate to the empty string in
        KeyNote), so this root only answers membership-shaped queries —
        *action* queries must flow through the Figure-5 policy credential,
        whose conditions encode the HasPermission table.  Without this guard,
        holding any role would bypass the grant table entirely.
        """
        credential = Credential.build(
            authorizer="POLICY",
            licensees=f'"{self.admin_key}"',
            conditions=('app_domain=="WebCom" && Permission=="" '
                        '&& ObjectType==""'),
            comment="the WebCom administration key is the role authority")
        self.session.add_policy(credential)
        return credential

    def grant_role(self, user_key: str, domain: str, role: str) -> Credential:
        """Administration-signed membership (Figure 6)."""
        self.keystore.create(user_key)
        credential = Credential.build(
            authorizer=self.admin_key,
            licensees=f'"{user_key}"',
            conditions=membership_conditions(domain, role),
            comment=f"{user_key} is authorised to be a {role} "
                    f"in the {domain} domain",
        ).sign(self.keystore.pair(self.admin_key).private)
        self.session.add_credential(credential)
        return credential

    def delegate_role(self, from_key: str, to_key: str, domain: str,
                      role: str) -> Credential:
        """User-to-user delegation (Figure 7).

        The credential is always *issuable* — whether it is *effective*
        depends on whether ``from_key`` itself holds the role, which
        :meth:`holds_role` evaluates over the whole chain.
        """
        self.keystore.create(to_key)
        credential = Credential.build(
            authorizer=from_key,
            licensees=f'"{to_key}"',
            conditions=membership_conditions(domain, role),
            comment=f"{from_key} delegates {domain}/{role} to {to_key}",
        ).sign(self.keystore.pair(from_key).private)
        self.session.add_credential(credential)
        return credential

    def holds_role(self, user_key: str, domain: str, role: str) -> bool:
        """Does the chain of credentials give ``user_key`` the role?"""
        return bool(self.session.query(
            membership_attributes(domain, role), [user_key]))

    def revoke(self, credential: Credential) -> bool:
        """Drop a previously added credential (simple revocation-by-removal;
        the paper's middleware propagation handles the stores).

        Returns True if the credential was present.
        """
        creds = self.session.credentials
        if credential in creds:
            creds.remove(credential)
            self.session.clear_credentials()
            for cred in creds:
                self.session.add_credential(cred)
            return True
        return False

"""The paper's primary contribution: a framework for heterogeneous
middleware security.

:class:`~repro.core.framework.HeterogeneousSecurityFramework` is the facade a
deployment uses; it wires the substrates together and exposes the five policy
services of Section 4:

- **configuration** (4.1) — commission a global policy across every
  registered middleware, and accept credential-backed updates (KeyCOM);
- **comprehension** (4.2) — synthesise the disparate native policies into one
  RBAC view and encode it as KeyNote credentials;
- **migration** (4.3) — move policies between middleware technologies;
- **maintenance** (4.4) — apply changes at the trust-management level and
  propagate them down the stack, checking global consistency;
- **decentralisation** (4.5) — delegation of authority between user keys
  without a human administrator.

:mod:`repro.core.scenarios` builds the paper's running examples (the
Figure-1 Salaries Database and the Figure-9 four-system network).
"""

from repro.core.decentralisation import DelegationService
from repro.core.framework import HeterogeneousSecurityFramework
from repro.core.naming import GlobalNameService
from repro.core.scenarios import (
    Figure9Network,
    build_figure9_network,
    salaries_policy,
)
from repro.core.spki_backend import SPKIDelegationService

__all__ = [
    "DelegationService",
    "Figure9Network",
    "GlobalNameService",
    "HeterogeneousSecurityFramework",
    "SPKIDelegationService",
    "build_figure9_network",
    "salaries_policy",
]

"""The paper's running examples, buildable on demand.

- :func:`salaries_policy` — the Figure-1 RBAC relations for the Salaries
  Database.
- :func:`build_figure9_network` — the four interoperating systems of
  Figure 9: X (EJB over Unix), Y (COM over Windows), Z (KeyNote + COM over
  Windows) and W (KeyNote over Windows, no middleware).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.middleware.complus import ComPlusCatalogue
from repro.middleware.ejb import EJBServer
from repro.os_sec.unixlike import UnixSecurity
from repro.os_sec.windows import WindowsSecurity
from repro.rbac.policy import RBACPolicy


def salaries_policy() -> RBACPolicy:
    """The Figure-1 policy, exactly as the paper's tables read."""
    return RBACPolicy.from_relations(
        "salaries",
        grants=[
            ("Finance", "Clerk", "SalariesDB", "write"),
            ("Finance", "Manager", "SalariesDB", "read"),
            ("Finance", "Manager", "SalariesDB", "write"),
            ("Sales", "Manager", "SalariesDB", "read"),
            # Figure 1 lists "no access" for Sales/Assistant: the absence of
            # a grant *is* the encoding, so no row is added for Dave's role.
        ],
        assignments=[
            ("Alice", "Finance", "Clerk"),
            ("Bob", "Finance", "Manager"),
            ("Claire", "Sales", "Manager"),
            ("Dave", "Sales", "Assistant"),
            ("Elaine", "Sales", "Manager"),
        ],
    )


@dataclass
class Figure9Network:
    """The four systems of Figure 9 plus their OS substrates."""

    #: X: EJB middleware over a Unix-like OS — M(E), OS(U)
    system_x: EJBServer
    x_os: UnixSecurity
    #: Y: COM middleware over Windows — M(COM), OS(W)
    system_y: ComPlusCatalogue
    y_os: WindowsSecurity
    #: Z: KeyNote + COM over Windows — T(KN), M(COM), OS(W)
    system_z: ComPlusCatalogue
    z_os: WindowsSecurity
    #: W: KeyNote over Windows, no middleware — T(KN), OS(W)
    w_os: WindowsSecurity


def build_figure9_network() -> Figure9Network:
    """Construct the Figure-9 systems with Y carrying the legacy COM policy.

    Y's COM+ catalogue holds the Salaries policy natively (the "legacy"
    configuration the narrative translates outward); X and Z start empty and
    are configured through the framework's services; W has no middleware at
    all — its authorisation is KeyNote + OS only.
    """
    # --- X: EJB over Unix ---------------------------------------------------
    x_os = UnixSecurity()
    for user in ("alice", "bob", "claire", "dave", "elaine"):
        x_os.add_user(user, groups=["staff"])
    x_os.create_object("/srv/salaries.db", owner="bob", group="staff",
                       mode=0o660)
    system_x = EJBServer(host="hostx", server_name="ejb1")

    # --- Y: COM over Windows, carrying the legacy policy ----------------------
    y_os = WindowsSecurity()
    for nt_domain in ("Finance", "Sales"):
        y_os.add_domain(nt_domain)
    for nt_domain, user in (("Finance", "Alice"), ("Finance", "Bob"),
                            ("Sales", "Claire"), ("Sales", "Dave"),
                            ("Sales", "Elaine")):
        y_os.add_user(nt_domain, user)
    system_y = ComPlusCatalogue("machine-y", y_os)
    for nt_domain in ("Finance", "Sales"):
        system_y.create_application(f"Salaries-{nt_domain}",
                                    nt_domain=nt_domain)
        system_y.register_component(f"Salaries-{nt_domain}", "SalariesDB")
    # The legacy COM policy mirrors Figure 1, with COM's permission
    # vocabulary: read->Access is the interpretation the paper's similarity
    # translation produces, but natively Y simply grants Access/Launch.
    system_y.declare_role("Salaries-Finance", "Clerk")
    system_y.declare_role("Salaries-Finance", "Manager")
    system_y.declare_role("Salaries-Sales", "Manager")
    system_y.declare_role("Salaries-Sales", "Assistant")
    system_y.grant_permission("Salaries-Finance", "Clerk", "SalariesDB",
                              "Access")
    system_y.grant_permission("Salaries-Finance", "Manager", "SalariesDB",
                              "Access")
    system_y.grant_permission("Salaries-Finance", "Manager", "SalariesDB",
                              "Launch")
    system_y.grant_permission("Salaries-Sales", "Manager", "SalariesDB",
                              "Access")
    system_y.add_role_member("Salaries-Finance", "Clerk", "Finance", "Alice")
    system_y.add_role_member("Salaries-Finance", "Manager", "Finance", "Bob")
    system_y.add_role_member("Salaries-Sales", "Manager", "Sales", "Claire")
    system_y.add_role_member("Salaries-Sales", "Assistant", "Sales", "Dave")
    system_y.add_role_member("Salaries-Sales", "Manager", "Sales", "Elaine")

    # --- Z: KeyNote + COM over Windows (starts empty) ---------------------------
    z_os = WindowsSecurity()
    z_os.add_domain("Finance")
    z_os.add_domain("Sales")
    system_z = ComPlusCatalogue("machine-z", z_os)

    # --- W: KeyNote over Windows, no middleware ----------------------------------
    w_os = WindowsSecurity()
    w_os.add_domain("Sales")
    w_os.add_user("Sales", "Claire")

    return Figure9Network(system_x=system_x, x_os=x_os,
                          system_y=system_y, y_os=y_os,
                          system_z=system_z, z_os=z_os,
                          w_os=w_os)

"""Separation-of-duty constraints (RBAC2).

A static constraint limits how many of a conflicting role set one *user* may
be assigned to; a dynamic constraint limits how many may be *activated* in a
single session.  The paper's middleware models don't expose SoD, but the
framework's maintenance service (Section 4.4) uses static constraints as
global invariants to check after propagating policy changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.rbac.model import DomainRole

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rbac.policy import RBACPolicy


@dataclass(frozen=True)
class SoDConstraint:
    """At most ``cardinality`` of ``roles`` may be held/activated together.

    :param name: identifier for error messages.
    :param roles: the conflicting role set.
    :param cardinality: maximum number of conflicting roles permitted
        simultaneously (default 1, i.e. mutual exclusion).
    :param dynamic: if True the constraint applies to session activation;
        otherwise to user assignment.
    """

    name: str
    roles: frozenset[DomainRole]
    cardinality: int = 1
    dynamic: bool = False

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise ValueError("cardinality must be at least 1")
        if len(self.roles) < 2:
            raise ValueError("a SoD constraint needs at least two roles")

    @classmethod
    def exclusive(cls, name: str, roles: Iterable[tuple[str, str]],
                  *, dynamic: bool = False) -> "SoDConstraint":
        """Convenience constructor from (domain, role) tuples."""
        return cls(name=name,
                   roles=frozenset(DomainRole(d, r) for d, r in roles),
                   dynamic=dynamic)

    def permits(self, held: Iterable[DomainRole]) -> bool:
        """True if holding/activating ``held`` satisfies this constraint."""
        overlap = self.roles & set(held)
        return len(overlap) <= self.cardinality

    def violations(self, policy: "RBACPolicy") -> list[str]:
        """Users whose *assignments* violate this (static) constraint."""
        if self.dynamic:
            return []
        bad = []
        for user in sorted(policy.users()):
            if not self.permits(policy.roles_of(user)):
                bad.append(user)
        return bad

    def __str__(self) -> str:
        kind = "dynamic" if self.dynamic else "static"
        roles = ", ".join(sorted(str(r) for r in self.roles))
        return f"SoD[{self.name}; {kind}; <= {self.cardinality} of {{{roles}}}]"


@dataclass
class ConstraintSet:
    """A named collection of constraints checked as a unit."""

    constraints: list[SoDConstraint] = field(default_factory=list)

    def add(self, constraint: SoDConstraint) -> None:
        """Append a constraint."""
        self.constraints.append(constraint)

    def check(self, policy: "RBACPolicy") -> dict[str, list[str]]:
        """Return {constraint name -> violating users} for static violations."""
        report: dict[str, list[str]] = {}
        for constraint in self.constraints:
            bad = constraint.violations(policy)
            if bad:
                report[constraint.name] = bad
        return report

    def dynamic_constraints(self) -> tuple[SoDConstraint, ...]:
        """The subset enforced at session-activation time."""
        return tuple(c for c in self.constraints if c.dynamic)

"""RBAC policy serialisation (JSON).

Policies travel between administration tools, the CLI and the tests; the
JSON form is stable, sorted and round-trip exact, including role-hierarchy
edges.
"""

from __future__ import annotations

import json
from typing import Any

from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy

FORMAT_VERSION = 1


def policy_to_dict(policy: RBACPolicy) -> dict[str, Any]:
    """Serialise to a plain dict (stable ordering)."""
    return {
        "format": FORMAT_VERSION,
        "name": policy.name,
        "has_permission": [
            {"domain": g.domain, "role": g.role,
             "object_type": g.object_type, "permission": g.permission}
            for g in policy.sorted_grants()],
        "user_assignment": [
            {"user": a.user, "domain": a.domain, "role": a.role}
            for a in policy.sorted_assignments()],
        "hierarchy": [
            {"senior": str(senior), "junior": str(junior)}
            for senior, junior in policy.hierarchy.edges()],
    }


def policy_from_dict(data: dict[str, Any]) -> RBACPolicy:
    """Inverse of :func:`policy_to_dict`.

    :raises ValueError: on unknown format versions or malformed entries.
    """
    version = data.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported policy format version {version}")
    hierarchy = RoleHierarchy()
    for edge in data.get("hierarchy", []):
        hierarchy.add_inheritance(DomainRole.parse(edge["senior"]),
                                  DomainRole.parse(edge["junior"]))
    policy = RBACPolicy(data.get("name", "policy"), hierarchy=hierarchy)
    for row in data.get("has_permission", []):
        policy.grant(row["domain"], row["role"], row["object_type"],
                     row["permission"])
    for row in data.get("user_assignment", []):
        policy.assign(row["user"], row["domain"], row["role"])
    return policy


def policy_to_json(policy: RBACPolicy, indent: int = 2) -> str:
    """Serialise to a JSON string."""
    return json.dumps(policy_to_dict(policy), indent=indent, sort_keys=True)


def policy_from_json(text: str) -> RBACPolicy:
    """Parse a JSON string back into a policy.

    :raises ValueError: on malformed JSON or unsupported formats.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed policy JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError("policy JSON must be an object")
    return policy_from_dict(data)

"""Value types for the extended RBAC model.

Domains, roles, users, object types and permissions are plain strings in the
paper; here the *composite* facts are typed:

- :class:`DomainRole` — a role qualified by its domain (the paper: "the same
  role name may be present in different domains").
- :class:`Grant` — one row of the ``HasPermission`` relation.
- :class:`Assignment` — one row of the ``UserAssignment`` relation.

All are frozen, hashable and totally ordered so relations behave as sets with
deterministic iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

# Simple string domains keep parity with the paper's notation.
ObjectType = NewType("ObjectType", str)
Permission = NewType("Permission", str)


def _require_nonempty(label: str, value: str) -> None:
    if not isinstance(value, str) or not value:
        raise ValueError(f"{label} must be a non-empty string, got {value!r}")


@dataclass(frozen=True, order=True)
class DomainRole:
    """A role qualified by its domain, e.g. ``Finance/Manager``."""

    domain: str
    role: str

    def __post_init__(self) -> None:
        _require_nonempty("domain", self.domain)
        _require_nonempty("role", self.role)

    def __str__(self) -> str:
        return f"{self.domain}/{self.role}"

    @classmethod
    def parse(cls, text: str) -> "DomainRole":
        """Parse ``"Domain/Role"`` notation.

        :raises ValueError: if the text has no ``/`` separator.
        """
        domain, sep, role = text.partition("/")
        if not sep:
            raise ValueError(f"expected 'Domain/Role', got {text!r}")
        return cls(domain=domain, role=role)


@dataclass(frozen=True, order=True)
class Grant:
    """One ``HasPermission`` fact: (domain, role) holds ``permission`` on
    objects of type ``object_type``."""

    domain: str
    role: str
    object_type: str
    permission: str

    def __post_init__(self) -> None:
        _require_nonempty("domain", self.domain)
        _require_nonempty("role", self.role)
        _require_nonempty("object_type", self.object_type)
        _require_nonempty("permission", self.permission)

    @property
    def domain_role(self) -> DomainRole:
        """The (domain, role) pair this grant attaches to."""
        return DomainRole(self.domain, self.role)

    def __str__(self) -> str:
        return (f"{self.domain}/{self.role} may {self.permission} "
                f"on {self.object_type}")


@dataclass(frozen=True, order=True)
class Assignment:
    """One ``UserAssignment`` fact: ``user`` is a member of (domain, role)."""

    user: str
    domain: str
    role: str

    def __post_init__(self) -> None:
        _require_nonempty("user", self.user)
        _require_nonempty("domain", self.domain)
        _require_nonempty("role", self.role)

    @property
    def domain_role(self) -> DomainRole:
        """The (domain, role) pair this assignment attaches to."""
        return DomainRole(self.domain, self.role)

    def __str__(self) -> str:
        return f"{self.user} in {self.domain}/{self.role}"

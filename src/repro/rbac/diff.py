"""Policy diff and merge.

Policy Maintenance (Section 4.4) needs to know *what changed* between two
policy states so the change can be propagated to every other system, and to
merge policies when synthesising a global view (Policy Comprehension,
Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.rbac.model import Assignment, Grant
from repro.rbac.policy import RBACPolicy


@dataclass(frozen=True)
class PolicyDelta:
    """The difference between two policies, as four fact sets."""

    added_grants: frozenset[Grant] = frozenset()
    removed_grants: frozenset[Grant] = frozenset()
    added_assignments: frozenset[Assignment] = frozenset()
    removed_assignments: frozenset[Assignment] = frozenset()

    def is_empty(self) -> bool:
        """True if the policies were identical."""
        return not (self.added_grants or self.removed_grants
                    or self.added_assignments or self.removed_assignments)

    def __len__(self) -> int:
        return (len(self.added_grants) + len(self.removed_grants)
                + len(self.added_assignments) + len(self.removed_assignments))

    def inverse(self) -> "PolicyDelta":
        """The delta that undoes this one."""
        return PolicyDelta(
            added_grants=self.removed_grants,
            removed_grants=self.added_grants,
            added_assignments=self.removed_assignments,
            removed_assignments=self.added_assignments,
        )

    def apply_to(self, policy: RBACPolicy) -> RBACPolicy:
        """Apply this delta to ``policy`` in place and return it."""
        for g in self.removed_grants:
            policy.revoke_grant(g.domain, g.role, g.object_type, g.permission)
        for g in self.added_grants:
            policy.add_grant(g)
        for a in self.removed_assignments:
            policy.unassign(a.user, a.domain, a.role)
        for a in self.added_assignments:
            policy.add_assignment(a)
        return policy

    def summary(self) -> str:
        """One-line human summary."""
        return (f"+{len(self.added_grants)}g -{len(self.removed_grants)}g "
                f"+{len(self.added_assignments)}a -{len(self.removed_assignments)}a")


def delta_to_dict(delta: PolicyDelta) -> dict:
    """Serialise a delta as plain JSON-able lists (stable ordering) — the
    form versioned updates take in the durable store's write-ahead log."""
    def _grant(g: Grant) -> list[str]:
        return [g.domain, g.role, g.object_type, g.permission]

    def _assignment(a: Assignment) -> list[str]:
        return [a.user, a.domain, a.role]

    return {
        "added_grants": [_grant(g) for g in sorted(delta.added_grants)],
        "removed_grants": [_grant(g) for g in sorted(delta.removed_grants)],
        "added_assignments": [_assignment(a) for a
                              in sorted(delta.added_assignments)],
        "removed_assignments": [_assignment(a) for a
                                in sorted(delta.removed_assignments)],
    }


def delta_from_dict(data: dict) -> PolicyDelta:
    """Inverse of :func:`delta_to_dict`.

    :raises ValueError: on malformed entries (wrong arity rows).
    """
    try:
        return PolicyDelta(
            added_grants=frozenset(Grant(*row)
                                   for row in data.get("added_grants", [])),
            removed_grants=frozenset(
                Grant(*row) for row in data.get("removed_grants", [])),
            added_assignments=frozenset(
                Assignment(*row)
                for row in data.get("added_assignments", [])),
            removed_assignments=frozenset(
                Assignment(*row)
                for row in data.get("removed_assignments", [])),
        )
    except TypeError as exc:
        raise ValueError(f"malformed delta dict: {exc}") from exc


def diff_policies(old: RBACPolicy, new: RBACPolicy) -> PolicyDelta:
    """Compute the delta that transforms ``old`` into ``new``."""
    return PolicyDelta(
        added_grants=frozenset(new.grants - old.grants),
        removed_grants=frozenset(old.grants - new.grants),
        added_assignments=frozenset(new.assignments - old.assignments),
        removed_assignments=frozenset(old.assignments - new.assignments),
    )


@dataclass
class MergeConflict:
    """Facts present in some sources and explicitly revoked in none — merge is
    union-based, so conflicts here are *divergences* worth flagging: the same
    (domain, role, object_type) granted different permission sets."""

    key: tuple[str, str, str]
    permissions_by_source: dict[str, frozenset[str]] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ", ".join(f"{src}={sorted(perms)}"
                          for src, perms in sorted(self.permissions_by_source.items()))
        domain, role, obj = self.key
        return f"{domain}/{role} on {obj}: {parts}"


def merge_policies(name: str, sources: Iterable[RBACPolicy],
                   ) -> tuple[RBACPolicy, list[MergeConflict]]:
    """Union-merge several policies into a global view.

    Returns the merged policy plus a list of divergences (same domain/role and
    object type, different permission sets across sources).  The merged policy
    contains the union — comprehension favours completeness; the conflict list
    lets an administrator tighten afterwards.
    """
    merged = RBACPolicy(name)
    sources = list(sources)
    for policy in sources:
        for g in policy.grants:
            merged.add_grant(g)
        for a in policy.assignments:
            merged.add_assignment(a)

    conflicts: list[MergeConflict] = []
    keys = {(g.domain, g.role, g.object_type) for g in merged.grants}
    for key in sorted(keys):
        per_source: dict[str, frozenset[str]] = {}
        for policy in sources:
            perms = frozenset(g.permission for g in policy.grants
                              if (g.domain, g.role, g.object_type) == key)
            if perms:
                per_source[policy.name] = perms
        if len(set(per_source.values())) > 1:
            conflicts.append(MergeConflict(key=key,
                                           permissions_by_source=per_source))
    return merged, conflicts

"""The RBAC policy: the two relations of Section 2 plus queries.

An :class:`RBACPolicy` is the paper's canonical policy form — the common
format every middleware policy is interpreted into and translated out of.

Two query engines answer the same method signatures:

- the **set-based path** — direct comprehensions over the relation sets,
  kept as the readable reference and the differential baseline;
- the **compiled path** (default) — a lazily built
  :class:`~repro.rbac.engine.RBACEngine` that interns users/roles/
  permissions into dense ids and answers every decision with bitmask
  operations, maintained incrementally by the mutators below (O(delta)
  per grant/assign/revoke, no rebuild).

``compiled=False`` (or environment ``REPRO_COMPILED_ENGINE=0``) selects
the set-based path; the conformance differ and the engine test suites run
both and require identical answers.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import UnknownRoleError
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Assignment, DomainRole, Grant
from repro.util.text import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.rbac.engine import RBACEngine


def compiled_default() -> bool:
    """Resolve the process-wide engine default.

    ``REPRO_COMPILED_ENGINE`` forces the choice (``0``/``false``/``no``/
    ``off`` disable, anything else enables); unset means compiled on.
    """
    flag = os.environ.get("REPRO_COMPILED_ENGINE")
    if flag is None:
        return True
    return flag.strip().lower() not in ("0", "false", "no", "off", "")


class RBACPolicy:
    """HasPermission + UserAssignment relations with query support.

    >>> p = RBACPolicy()
    >>> p.grant("Finance", "Clerk", "SalariesDB", "write")
    >>> p.assign("Alice", "Finance", "Clerk")
    >>> p.check_access("Alice", "SalariesDB", "write")
    True
    >>> p.check_access("Alice", "SalariesDB", "read")
    False
    """

    def __init__(self, name: str = "policy",
                 hierarchy: RoleHierarchy | None = None,
                 compiled: bool | None = None) -> None:
        self.name = name
        self._grants: set[Grant] = set()
        self._assignments: set[Assignment] = set()
        self.hierarchy = hierarchy if hierarchy is not None else RoleHierarchy()
        #: optional durability hook ``journal(kind, **payload)`` — when
        #: bound (see :mod:`repro.store.durable`), every relation delta is
        #: written ahead to the store *before* it mutates the in-memory
        #: sets, so a crashed node replays exactly its acknowledged facts
        self.journal = None
        #: route queries through the bitset engine (set-based fallback off)
        self.compiled = compiled_default() if compiled is None else compiled
        self._engine: "RBACEngine | None" = None

    # -- engine plumbing ---------------------------------------------------

    def engine(self) -> "RBACEngine | None":
        """The live engine, built on first compiled query and kept in sync
        with the (possibly externally mutated) hierarchy; None when the
        set-based path is selected."""
        if not self.compiled:
            return None
        if self._engine is None:
            from repro.rbac.engine import RBACEngine
            self._engine = RBACEngine.from_relations(
                self._grants, self._assignments, self.hierarchy)
        else:
            self._engine.sync_hierarchy(self.hierarchy)
        return self._engine

    def engine_stats(self) -> "dict[str, int] | None":
        """Interning/maintenance counters of the live engine (None when
        set-based or not yet built) — no build is forced."""
        if self._engine is None:
            return None
        return self._engine.stats()

    # -- mutation ----------------------------------------------------------

    def _log(self, kind: str, **payload: str) -> None:
        if self.journal is not None:
            self.journal(kind, **payload)

    def grant(self, domain: str, role: str, object_type: str,
              permission: str) -> None:
        """Add a ``HasPermission`` fact."""
        g = Grant(domain, role, object_type, permission)
        if g not in self._grants:
            self._log("rbac.grant", domain=domain, role=role,
                      object_type=object_type, permission=permission)
            self._grants.add(g)
            if self._engine is not None:
                self._engine.add_grant(g)

    def revoke_grant(self, domain: str, role: str, object_type: str,
                     permission: str) -> bool:
        """Remove a ``HasPermission`` fact; return True if it was present."""
        g = Grant(domain, role, object_type, permission)
        if g in self._grants:
            self._log("rbac.revoke_grant", domain=domain, role=role,
                      object_type=object_type, permission=permission)
            self._grants.remove(g)
            if self._engine is not None:
                self._engine.remove_grant(g)
            return True
        return False

    def assign(self, user: str, domain: str, role: str) -> None:
        """Add a ``UserAssignment`` fact."""
        a = Assignment(user, domain, role)
        if a not in self._assignments:
            self._log("rbac.assign", user=user, domain=domain, role=role)
            self._assignments.add(a)
            if self._engine is not None:
                self._engine.add_assignment(a)

    def unassign(self, user: str, domain: str, role: str) -> bool:
        """Remove a ``UserAssignment`` fact; return True if it was present."""
        a = Assignment(user, domain, role)
        if a in self._assignments:
            self._log("rbac.unassign", user=user, domain=domain, role=role)
            self._assignments.remove(a)
            if self._engine is not None:
                self._engine.remove_assignment(a)
            return True
        return False

    def revoke_user(self, user: str) -> int:
        """Remove every assignment of ``user``; return how many were dropped.

        This is the RBAC administrator operation the paper highlights:
        revoking a user's rights without touching object permissions.
        """
        doomed = {a for a in self._assignments if a.user == user}
        if doomed:
            self._log("rbac.revoke_user", user=user)
            self._assignments -= doomed
            if self._engine is not None:
                self._engine.remove_user(user)
        return len(doomed)

    def add_grant(self, grant: Grant) -> None:
        """Add a pre-built :class:`Grant`."""
        if grant not in self._grants:
            self._log("rbac.grant", domain=grant.domain, role=grant.role,
                      object_type=grant.object_type,
                      permission=grant.permission)
            self._grants.add(grant)
            if self._engine is not None:
                self._engine.add_grant(grant)

    def add_assignment(self, assignment: Assignment) -> None:
        """Add a pre-built :class:`Assignment`."""
        if assignment not in self._assignments:
            self._log("rbac.assign", user=assignment.user,
                      domain=assignment.domain, role=assignment.role)
            self._assignments.add(assignment)
            if self._engine is not None:
                self._engine.add_assignment(assignment)

    # -- relations ---------------------------------------------------------

    @property
    def grants(self) -> frozenset[Grant]:
        """The ``HasPermission`` relation."""
        return frozenset(self._grants)

    @property
    def assignments(self) -> frozenset[Assignment]:
        """The ``UserAssignment`` relation."""
        return frozenset(self._assignments)

    def sorted_grants(self) -> list[Grant]:
        """Grants in deterministic order (for tables and serialisation)."""
        return sorted(self._grants)

    def sorted_assignments(self) -> list[Assignment]:
        """Assignments in deterministic order."""
        return sorted(self._assignments)

    # -- vocabulary --------------------------------------------------------

    def domains(self) -> set[str]:
        """All domains mentioned anywhere in the policy."""
        return ({g.domain for g in self._grants}
                | {a.domain for a in self._assignments})

    def domain_roles(self) -> set[DomainRole]:
        """All (domain, role) pairs mentioned anywhere in the policy."""
        return ({g.domain_role for g in self._grants}
                | {a.domain_role for a in self._assignments})

    def users(self) -> set[str]:
        """All users with at least one assignment."""
        return {a.user for a in self._assignments}

    def object_types(self) -> set[str]:
        """All object types mentioned in grants."""
        return {g.object_type for g in self._grants}

    def permissions_of(self, domain: str, role: str,
                       *, use_hierarchy: bool = True) -> set[Grant]:
        """Grants held by (domain, role), optionally via the role hierarchy."""
        engine = self.engine()
        if engine is not None:
            return engine.permissions_of(domain, role,
                                         use_hierarchy=use_hierarchy)
        pairs = {DomainRole(domain, role)}
        if use_hierarchy:
            pairs |= self.hierarchy.juniors(DomainRole(domain, role))
        return {g for g in self._grants if g.domain_role in pairs}

    def roles_of(self, user: str, *, use_hierarchy: bool = True) -> set[DomainRole]:
        """Domain-roles ``user`` is a member of (direct plus inherited)."""
        engine = self.engine()
        if engine is not None:
            return engine.roles_of(user, use_hierarchy=use_hierarchy)
        direct = {a.domain_role for a in self._assignments if a.user == user}
        if not use_hierarchy:
            return direct
        closed: set[DomainRole] = set()
        for dr in direct:
            closed.add(dr)
            closed |= self.hierarchy.juniors(dr)
        return closed

    def members_of(self, domain: str, role: str,
                   *, use_hierarchy: bool = True) -> set[str]:
        """Users assigned to (domain, role), including via senior roles."""
        engine = self.engine()
        if engine is not None:
            return engine.members_of(domain, role,
                                     use_hierarchy=use_hierarchy)
        target = DomainRole(domain, role)
        pairs = {target}
        if use_hierarchy:
            pairs |= self.hierarchy.seniors(target)
        return {a.user for a in self._assignments if a.domain_role in pairs}

    # -- decisions ---------------------------------------------------------

    def role_has_permission(self, domain: str, role: str, object_type: str,
                            permission: str, *, use_hierarchy: bool = True) -> bool:
        """True if (domain, role) holds ``permission`` on ``object_type``."""
        engine = self.engine()
        if engine is not None:
            return engine.role_has_permission(domain, role, object_type,
                                              permission,
                                              use_hierarchy=use_hierarchy)
        return any(g.object_type == object_type and g.permission == permission
                   for g in self._set_permissions_of(
                       domain, role, use_hierarchy=use_hierarchy))

    def _set_permissions_of(self, domain: str, role: str,
                            *, use_hierarchy: bool = True) -> set[Grant]:
        pairs = {DomainRole(domain, role)}
        if use_hierarchy:
            pairs |= self.hierarchy.juniors(DomainRole(domain, role))
        return {g for g in self._grants if g.domain_role in pairs}

    def check_access(self, user: str, object_type: str, permission: str,
                     *, use_hierarchy: bool = True) -> bool:
        """The fundamental RBAC decision: may ``user`` exercise
        ``permission`` on objects of ``object_type``?"""
        engine = self.engine()
        if engine is not None:
            return engine.check_access(user, object_type, permission,
                                       use_hierarchy=use_hierarchy)
        roles = self.roles_of(user, use_hierarchy=use_hierarchy)
        return any(g.domain_role in roles and g.object_type == object_type
                   and g.permission == permission for g in self._grants)

    def check_access_many(self, requests: Sequence[tuple[str, str, str]],
                          *, use_hierarchy: bool = True) -> list[bool]:
        """Batch form of :meth:`check_access`: one decision per
        ``(user, object_type, permission)`` triple, in order.

        The compiled engine shares its per-user effective-permission masks
        across the whole batch; the set-based path simply loops (it is the
        differential baseline, not a fast path).
        """
        engine = self.engine()
        if engine is not None:
            return engine.check_access_many(requests,
                                            use_hierarchy=use_hierarchy)
        return [self.check_access(user, object_type, permission,
                                  use_hierarchy=use_hierarchy)
                for user, object_type, permission in requests]

    def authorised_users(self, object_type: str, permission: str) -> set[str]:
        """All users who may exercise ``permission`` on ``object_type``.

        One hierarchy closure per call: the qualifying role set (grant
        holders plus their senior cones) is computed once and assignments
        are filtered against it — not one ``roles_of`` walk per user.
        """
        engine = self.engine()
        if engine is not None:
            return engine.authorised_users(object_type, permission)
        holders = {g.domain_role for g in self._grants
                   if g.object_type == object_type
                   and g.permission == permission}
        qualifying = set(holders)
        for dr in holders:
            qualifying |= self.hierarchy.seniors(dr)
        return {a.user for a in self._assignments
                if a.domain_role in qualifying}

    def require_role(self, domain: str, role: str) -> DomainRole:
        """Return the (domain, role) pair, raising if unknown.

        :raises UnknownRoleError: if the pair appears nowhere in the policy.
        """
        dr = DomainRole(domain, role)
        if dr not in self.domain_roles():
            raise UnknownRoleError(f"unknown domain-role {dr}")
        return dr

    # -- set-like behaviour --------------------------------------------------

    def copy(self, name: str | None = None) -> "RBACPolicy":
        """Deep copy (hierarchy included)."""
        other = RBACPolicy(name or self.name, hierarchy=self.hierarchy.copy(),
                           compiled=self.compiled)
        other._grants = set(self._grants)
        other._assignments = set(self._assignments)
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RBACPolicy):
            return NotImplemented
        return (self._grants == other._grants
                and self._assignments == other._assignments)

    def __hash__(self) -> int:  # policies are mutable; identity hash
        return id(self)

    def __len__(self) -> int:
        return len(self._grants) + len(self._assignments)

    def __iter__(self) -> Iterator[Grant | Assignment]:
        yield from self.sorted_grants()
        yield from self.sorted_assignments()

    def is_empty(self) -> bool:
        """True if both relations are empty."""
        return not self._grants and not self._assignments

    # -- bulk construction ---------------------------------------------------

    @classmethod
    def from_relations(cls, name: str,
                       grants: Iterable[tuple[str, str, str, str]],
                       assignments: Iterable[tuple[str, str, str]],
                       compiled: bool | None = None) -> "RBACPolicy":
        """Build a policy from plain tuples (as the paper's tables read)."""
        policy = cls(name, compiled=compiled)
        for domain, role, object_type, permission in grants:
            policy.grant(domain, role, object_type, permission)
        for user, domain, role in assignments:
            policy.assign(user, domain, role)
        return policy

    # -- presentation --------------------------------------------------------

    def has_permission_table(self) -> str:
        """Render the ``HasPermission`` relation as a Figure-1 style table."""
        return format_table(
            ["Domain", "Role", "ObjectType", "Permission"],
            [(g.domain, g.role, g.object_type, g.permission)
             for g in self.sorted_grants()])

    def user_assignment_table(self) -> str:
        """Render the ``UserAssignment`` relation as a Figure-1 style table."""
        return format_table(
            ["Domain", "Role", "User"],
            [(a.domain, a.role, a.user) for a in self.sorted_assignments()])

    def __repr__(self) -> str:
        return (f"RBACPolicy({self.name!r}, grants={len(self._grants)}, "
                f"assignments={len(self._assignments)})")

"""Compiled-engine benchmark (the ``BENCH_8.json`` CI artifact).

Measures the bitset RBAC engine (:mod:`repro.rbac.engine`) against the
retained set-based path of :class:`~repro.rbac.policy.RBACPolicy` on a
synthetic universe sized like the Grid-scale deployments the framework
targets: 100k users, 10k roles, a layered role hierarchy, and a Zipfian
request mix (a few hot roles/objects take most of the traffic, the long
tail keeps the closure honest).

Three timings are reported:

* **cold** — one ``check_access_many`` batch on a policy whose engine has
  never been built, so the compiled number *includes* interning and
  closure construction.  The set-based comparator answers the same
  requests one-by-one on a sampled subset (a full set-based sweep at this
  scale takes minutes) and is extrapolated per-check.
* **warm** — repeated batches once the engine (and nothing else: the
  set-based path has no cache to warm) is built.
* **oracle** — a smaller universe is swept three-way: compiled engine vs
  set-based path vs the PR 5 :class:`~repro.oracle.rbac_oracle.RBACOracle`
  reference, over ``check_access``, ``roles_of`` and ``authorised_users``.
  Any disagreement fails the ``--check`` gate.

Everything is seeded; two runs of ``repro bench-engine`` answer the same
requests over the same universe.
"""

from __future__ import annotations

import random
import time
from typing import Any, Sequence

from repro.oracle.rbac_oracle import RBACOracle
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy

#: object types in the synthetic universe (middleware-ish vocabulary)
_OBJECT_TYPES = ("invoice", "ledger", "queue", "topic", "component",
                 "interface", "method", "file")
_PERMISSIONS = ("read", "write", "invoke", "configure")


def _zipf_choices(rng: random.Random, population: Sequence[Any],
                  k: int) -> list[Any]:
    """``k`` draws from ``population`` under a Zipfian (1/rank) skew."""
    weights = [1.0 / rank for rank in range(1, len(population) + 1)]
    return rng.choices(population, weights=weights, k=k)


def build_universe(users: int, roles: int, *, domains: int = 8,
                   grants_per_role: int = 2, seed: int = 8,
                   compiled: bool, name: str = "bench") -> RBACPolicy:
    """A seeded policy universe: layered hierarchy, Zipfian assignments."""
    rng = random.Random(seed)
    hierarchy = RoleHierarchy()
    domain_names = [f"d{i}" for i in range(domains)]
    role_list = [DomainRole(domain_names[i % domains], f"r{i}")
                 for i in range(roles)]
    # Layered DAG: each role (past the first few) dominates 1-2 roles from
    # strictly earlier layers, giving deep-but-acyclic inheritance chains.
    for index in range(8, roles):
        for _ in range(rng.randint(1, 2)):
            junior = role_list[rng.randrange(0, index)]
            senior = role_list[index]
            if junior != senior:
                try:
                    hierarchy.add_inheritance(senior, junior)
                except Exception:  # pragma: no cover - layering prevents it
                    pass
    policy = RBACPolicy(name, hierarchy=hierarchy, compiled=compiled)
    for role in role_list:
        for _ in range(grants_per_role):
            policy.grant(role.domain, role.role,
                         rng.choice(_OBJECT_TYPES), rng.choice(_PERMISSIONS))
    hot_roles = _zipf_choices(rng, role_list, users)
    for index in range(users):
        role = hot_roles[index]
        policy.assign(f"u{index}", role.domain, role.role)
    return policy


def build_requests(policy: RBACPolicy, count: int,
                   seed: int = 8) -> list[tuple[str, str, str]]:
    """A Zipfian request mix over the policy's users and objects."""
    rng = random.Random(seed + 1)
    users = sorted(policy.users())
    subjects = _zipf_choices(rng, users, count)
    object_types = _zipf_choices(rng, _OBJECT_TYPES, count)
    permissions = rng.choices(_PERMISSIONS, k=count)
    return list(zip(subjects, object_types, permissions))


def _set_based_answers(policy: RBACPolicy,
                       requests: Sequence[tuple[str, str, str]]) -> list[bool]:
    saved = policy.compiled
    policy.compiled = False
    try:
        return [policy.check_access(u, ot, p) for u, ot, p in requests]
    finally:
        policy.compiled = saved


def _oracle_sweep(users: int = 300, roles: int = 60,
                  checks: int = 400, seed: int = 8) -> dict[str, Any]:
    """Three-way equivalence sweep on a universe small enough for the
    naive oracle (its closure is iterate-until-stable per query)."""
    policy = build_universe(users, roles, domains=4, seed=seed,
                            compiled=True, name="oracle-sweep")
    oracle = RBACOracle.from_policy(policy)
    requests = build_requests(policy, checks, seed=seed)
    engine_answers = policy.check_access_many(requests)
    set_answers = _set_based_answers(policy, requests)
    oracle_answers = [oracle.check_access(u, ot, p) for u, ot, p in requests]
    disagreements = sum(
        1 for e, s, o in zip(engine_answers, set_answers, oracle_answers)
        if not (e == s == o))
    rng = random.Random(seed + 2)
    for user in rng.sample(sorted(policy.users()), 25):
        engine_roles = {(dr.domain, dr.role) for dr in policy.roles_of(user)}
        if engine_roles != oracle.roles_of(user):
            disagreements += 1
    for object_type in _OBJECT_TYPES[:4]:
        for permission in _PERMISSIONS[:2]:
            if (policy.authorised_users(object_type, permission)
                    != oracle.authorised_users(object_type, permission)):
                disagreements += 1
    return {
        "users": users,
        "roles": roles,
        "check_cases": checks,
        "roles_of_cases": 25,
        "authorised_users_cases": 8,
        "disagreements": disagreements,
    }


def run_engine_bench(users: int = 100_000, roles: int = 10_000,
                     batch: int = 20_000, set_based_sample: int = 150,
                     warm_rounds: int = 3, seed: int = 8) -> dict[str, Any]:
    """Build the universe, time compiled vs set-based, sweep the oracle."""
    requests = None

    # Cold compiled: engine build + first batch, timed together.
    policy = build_universe(users, roles, seed=seed, compiled=True)
    requests = build_requests(policy, batch, seed=seed)
    start = time.perf_counter()
    compiled_answers = policy.check_access_many(requests)
    cold_compiled_s = time.perf_counter() - start

    # Cold set-based: the same requests, sampled (full sweep is O(n·batch)).
    sample = requests[:set_based_sample]
    start = time.perf_counter()
    sampled_set_answers = _set_based_answers(policy, sample)
    cold_set_s = time.perf_counter() - start
    agreement = sampled_set_answers == compiled_answers[:set_based_sample]

    per_check_compiled_us = cold_compiled_s / batch * 1e6
    per_check_set_us = cold_set_s / len(sample) * 1e6
    speedup = (per_check_set_us / per_check_compiled_us
               if per_check_compiled_us else float("inf"))

    # Warm compiled: engine already built, decision cache hot.
    warm_samples = []
    for _ in range(warm_rounds):
        start = time.perf_counter()
        policy.check_access_many(requests)
        warm_samples.append(time.perf_counter() - start)
    warm_s = min(warm_samples)

    engine_stats = policy.engine_stats() or {}
    grant_total = sum(compiled_answers)
    return {
        "bench": "BENCH_8",
        "description": "compiled bitset RBAC engine vs set-based policy "
                       "path (cold build + Zipfian batch)",
        "universe": {
            "users": users,
            "roles": roles,
            "grants": len(policy.grants),
            "assignments": len(policy.assignments),
            "hierarchy_edges": sum(1 for _ in policy.hierarchy.edges()),
        },
        "batch": {
            "requests": batch,
            "granted": grant_total,
            "denied": batch - grant_total,
        },
        "cold": {
            "compiled_total_s": round(cold_compiled_s, 6),
            "compiled_per_check_us": round(per_check_compiled_us, 3),
            "set_based_sampled_checks": len(sample),
            "set_based_per_check_us": round(per_check_set_us, 3),
            "speedup": round(speedup, 1),
            "sampled_answers_agree": agreement,
        },
        "warm": {
            "rounds": warm_rounds,
            "best_total_s": round(warm_s, 6),
            "per_check_us": round(warm_s / batch * 1e6, 3),
            "checks_per_s": round(batch / warm_s, 0) if warm_s else None,
        },
        "engine": engine_stats,
        "oracle": _oracle_sweep(seed=seed),
    }


def check_engine_bench(report: dict[str, Any],
                       min_speedup: float = 5.0) -> list[str]:
    """The ``--check`` gates; returns failure strings (empty = pass)."""
    failures: list[str] = []
    cold = report["cold"]
    if cold["speedup"] < min_speedup:
        failures.append(
            f"compiled cold path is {cold['speedup']:.1f}x over set-based, "
            f"below the required {min_speedup:.1f}x")
    if not cold["sampled_answers_agree"]:
        failures.append("compiled and set-based answers disagree on the "
                        "sampled cold batch")
    oracle = report["oracle"]
    if oracle["disagreements"]:
        failures.append(f"{oracle['disagreements']} oracle disagreement(s) "
                        f"in the three-way sweep")
    return failures

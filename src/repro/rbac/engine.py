"""A compiled, columnar RBAC engine (bitset evaluation).

The set-based query paths of :class:`~repro.rbac.policy.RBACPolicy` scan the
raw ``HasPermission`` / ``UserAssignment`` relations per decision —
``roles_of`` walks every assignment, ``check_access`` every grant.  That is
the executable spec, but it caps cold-path throughput at large universes.
This module is the engine swap ROADMAP item 3 calls for: the *service
interface stays stable* (the policy's method signatures are unchanged; it
routes here when ``compiled`` is on) while the representation underneath is
columnar:

- users, domain-roles and ``(object_type, permission)`` pairs are interned
  into dense integer ids (interning is append-only — ids never move);
- each relation row becomes one set bit: ``_role_direct_perms[rid]`` is an
  int bitmask over permission ids, ``_user_direct_roles[uid]`` and
  ``_role_members[rid]`` bitmasks over role/user ids;
- the RBAC1 hierarchy closure is two bitmask columns (``_down`` /``_up``,
  inclusive) computed once per hierarchy version in topological order
  (O(edges) big-int ORs, no per-bit iteration);
- the derived column ``_role_closed_perms[rid]`` — the permissions a role
  holds *including its juniors* — is maintained **incrementally**: a grant
  delta ORs/rebuilds only the rows of the affected role's senior cone, an
  assignment delta touches two bitmasks, and nothing recomputes the world.

Every decision is then bitwise: ``check_access`` is one AND+shift, batch
``check_access_many`` reuses a per-user effective mask cache across the
batch, and ``authorised_users`` ORs the member masks of the qualifying
roles instead of re-deriving ``roles_of`` per user.

The engine is *decision-identical* to the set-based path by construction
and by test: the PR 5 oracle differ and the hypothesis churn suite compare
the three implementations (engine, sets, naive oracle) answer by answer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Assignment, DomainRole, Grant


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class RBACEngine:
    """Bitset-compiled view of one policy's relations and hierarchy.

    Built lazily by :class:`~repro.rbac.policy.RBACPolicy` on first
    compiled query, then kept in sync by O(delta) mutation calls.  The
    hierarchy is owned by the policy and may be mutated (or replaced)
    behind the engine's back, so every query entry point goes through
    :meth:`sync_hierarchy`, which recompiles the closure columns only when
    the hierarchy object or its :attr:`~RoleHierarchy.version` changed.
    """

    def __init__(self) -> None:
        # -- interning tables (append-only: ids are stable) ---------------
        self._role_ids: dict[DomainRole, int] = {}
        self._roles: list[DomainRole] = []
        self._user_ids: dict[str, int] = {}
        self._users: list[str] = []
        self._perm_ids: dict[tuple[str, str], int] = {}
        self._perms: list[tuple[str, str]] = []
        # -- relation columns (index = interned id) -----------------------
        self._role_direct_perms: list[int] = []   # rid -> perm-id bitmask
        self._user_direct_roles: list[int] = []   # uid -> role-id bitmask
        self._role_members: list[int] = []        # rid -> user-id bitmask
        # -- hierarchy closure columns (inclusive of the role itself) -----
        self._down: list[int] = []                # rid -> dominated cone
        self._up: list[int] = []                  # rid -> dominating cone
        # -- derived column: direct perms ORed over the downward cone -----
        self._role_closed_perms: list[int] = []
        self._hierarchy: RoleHierarchy | None = None
        self._hierarchy_version = -1
        #: per-user effective permission mask, flushed on any mutation —
        #: the warm path of a Zipfian batch is one dict hit + one AND
        self._user_perm_cache: dict[int, int] = {}
        # -- observability -------------------------------------------------
        self.builds = 0
        self.hierarchy_rebuilds = 0
        self.deltas = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_relations(cls, grants: Iterable[Grant],
                       assignments: Iterable[Assignment],
                       hierarchy: RoleHierarchy) -> "RBACEngine":
        """Compile a relation snapshot (one pass, no closure yet)."""
        engine = cls()
        engine.builds += 1
        for grant in grants:
            engine._set_grant_bit(grant.domain_role,
                                  (grant.object_type, grant.permission))
        for assignment in assignments:
            engine._set_assignment_bits(assignment.user,
                                        assignment.domain_role)
        engine.sync_hierarchy(hierarchy)
        return engine

    # -- interning ---------------------------------------------------------

    def _role_id(self, role: DomainRole) -> int:
        rid = self._role_ids.get(role)
        if rid is None:
            rid = len(self._roles)
            self._role_ids[role] = rid
            self._roles.append(role)
            self._role_direct_perms.append(0)
            self._role_members.append(0)
            # A fresh role has no edges yet: its cones are itself.
            self._down.append(1 << rid)
            self._up.append(1 << rid)
            self._role_closed_perms.append(0)
        return rid

    def _user_id(self, user: str) -> int:
        uid = self._user_ids.get(user)
        if uid is None:
            uid = len(self._users)
            self._user_ids[user] = uid
            self._users.append(user)
            self._user_direct_roles.append(0)
        return uid

    def _perm_id(self, perm: tuple[str, str]) -> int:
        pid = self._perm_ids.get(perm)
        if pid is None:
            pid = len(self._perms)
            self._perm_ids[perm] = pid
            self._perms.append(perm)
        return pid

    # -- raw bit plumbing (no closure maintenance) -------------------------

    def _set_grant_bit(self, role: DomainRole, perm: tuple[str, str]) -> None:
        rid = self._role_id(role)
        self._role_direct_perms[rid] |= 1 << self._perm_id(perm)

    def _set_assignment_bits(self, user: str, role: DomainRole) -> None:
        uid = self._user_id(user)
        rid = self._role_id(role)
        self._user_direct_roles[uid] |= 1 << rid
        self._role_members[rid] |= 1 << uid

    # -- hierarchy compilation ---------------------------------------------

    def sync_hierarchy(self, hierarchy: RoleHierarchy) -> None:
        """Recompile the closure columns iff the hierarchy changed.

        Cheap in the common case: one identity check plus one integer
        compare.  On change, the closure is rebuilt in topological order —
        O(edges) big-int ORs — and the derived closed-permission column is
        re-derived the same way; relation columns are untouched.
        """
        if (self._hierarchy is hierarchy
                and self._hierarchy_version == hierarchy.version):
            return
        self._hierarchy = hierarchy
        self._hierarchy_version = hierarchy.version
        self.hierarchy_rebuilds += 1
        # Roles mentioned only in hierarchy edges still shape closures
        # (roles_of must surface junior roles that hold no grants).
        for senior, junior in hierarchy.edges():
            self._role_id(senior)
            self._role_id(junior)
        n = len(self._roles)
        down = [1 << rid for rid in range(n)]
        up = [1 << rid for rid in range(n)]
        children: list[list[int]] = [[] for _ in range(n)]
        parents: list[list[int]] = [[] for _ in range(n)]
        for senior, junior in hierarchy.edges():
            s, j = self._role_ids[senior], self._role_ids[junior]
            children[s].append(j)
            parents[j].append(s)
        for rid in self._topological(children):
            mask = down[rid]
            for child in children[rid]:
                mask |= down[child]
            down[rid] = mask
        for rid in self._topological(parents):
            mask = up[rid]
            for parent in parents[rid]:
                mask |= up[parent]
            up[rid] = mask
        self._down = down
        self._up = up
        direct = self._role_direct_perms
        closed = [0] * n
        for rid in self._topological(children):
            mask = direct[rid]
            for child in children[rid]:
                mask |= closed[child]
            closed[rid] = mask
        self._role_closed_perms = closed
        self._user_perm_cache.clear()

    @staticmethod
    def _topological(successors: list[list[int]]) -> list[int]:
        """Reverse-post-order over a DAG, iterative (hierarchies can be
        deep chains; recursion would overflow)."""
        n = len(successors)
        order: list[int] = []
        state = bytearray(n)  # 0 unvisited, 1 on stack, 2 done
        for root in range(n):
            if state[root]:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            state[root] = 1
            while stack:
                node, index = stack[-1]
                if index < len(successors[node]):
                    stack[-1] = (node, index + 1)
                    succ = successors[node][index]
                    if not state[succ]:
                        state[succ] = 1
                        stack.append((succ, 0))
                else:
                    stack.pop()
                    state[node] = 2
                    order.append(node)
        return order  # successors of a node always precede it

    # -- incremental mutation (O(delta)) -----------------------------------

    def add_grant(self, grant: Grant) -> None:
        """One new ``HasPermission`` bit: OR it into the affected role and
        every role in its senior cone (monotone — no recompute)."""
        rid = self._role_id(grant.domain_role)
        bit = 1 << self._perm_id((grant.object_type, grant.permission))
        self._role_direct_perms[rid] |= bit
        for senior in _iter_bits(self._up[rid]):
            self._role_closed_perms[senior] |= bit
        self._user_perm_cache.clear()
        self.deltas += 1

    def remove_grant(self, grant: Grant) -> None:
        """Revocation is not monotone: re-derive the closed column for the
        senior cone of the affected role only (everything else is
        untouched)."""
        rid = self._role_ids.get(grant.domain_role)
        pid = self._perm_ids.get((grant.object_type, grant.permission))
        if rid is None or pid is None:
            return
        self._role_direct_perms[rid] &= ~(1 << pid)
        direct = self._role_direct_perms
        down = self._down
        for senior in _iter_bits(self._up[rid]):
            mask = 0
            for member in _iter_bits(down[senior]):
                mask |= direct[member]
            self._role_closed_perms[senior] = mask
        self._user_perm_cache.clear()
        self.deltas += 1

    def add_assignment(self, assignment: Assignment) -> None:
        """One new ``UserAssignment`` bit (two bitmask ORs)."""
        self._set_assignment_bits(assignment.user, assignment.domain_role)
        uid = self._user_ids[assignment.user]
        self._user_perm_cache.pop(uid, None)
        self.deltas += 1

    def remove_assignment(self, assignment: Assignment) -> None:
        """Clear one ``UserAssignment`` bit."""
        uid = self._user_ids.get(assignment.user)
        rid = self._role_ids.get(assignment.domain_role)
        if uid is None or rid is None:
            return
        self._user_direct_roles[uid] &= ~(1 << rid)
        self._role_members[rid] &= ~(1 << uid)
        self._user_perm_cache.pop(uid, None)
        self.deltas += 1

    def remove_user(self, user: str) -> None:
        """Drop every assignment of ``user`` (the paper's revocation op)."""
        uid = self._user_ids.get(user)
        if uid is None:
            return
        mask = self._user_direct_roles[uid]
        for rid in _iter_bits(mask):
            self._role_members[rid] &= ~(1 << uid)
        self._user_direct_roles[uid] = 0
        self._user_perm_cache.pop(uid, None)
        self.deltas += 1

    # -- queries -----------------------------------------------------------

    def _user_perm_mask(self, uid: int) -> int:
        """Effective permission mask of a user (memoised per mutation
        epoch): OR of the closed columns of the directly assigned roles."""
        cached = self._user_perm_cache.get(uid)
        if cached is not None:
            return cached
        mask = 0
        closed = self._role_closed_perms
        for rid in _iter_bits(self._user_direct_roles[uid]):
            mask |= closed[rid]
        self._user_perm_cache[uid] = mask
        return mask

    def check_access(self, user: str, object_type: str, permission: str,
                     use_hierarchy: bool = True) -> bool:
        """The fundamental decision as one AND+shift."""
        uid = self._user_ids.get(user)
        pid = self._perm_ids.get((object_type, permission))
        if uid is None or pid is None:
            return False
        if use_hierarchy:
            return (self._user_perm_mask(uid) >> pid) & 1 == 1
        mask = 0
        direct = self._role_direct_perms
        for rid in _iter_bits(self._user_direct_roles[uid]):
            mask |= direct[rid]
        return (mask >> pid) & 1 == 1

    def check_access_many(self, requests: Sequence[tuple[str, str, str]],
                          use_hierarchy: bool = True) -> list[bool]:
        """Batch decisions; the per-user mask cache is shared across the
        batch, so repeated (Zipfian) users pay the OR once."""
        if not use_hierarchy:
            return [self.check_access(u, ot, p, use_hierarchy=False)
                    for u, ot, p in requests]
        user_ids = self._user_ids
        perm_ids = self._perm_ids
        perm_mask = self._user_perm_mask
        results: list[bool] = []
        append = results.append
        for user, object_type, permission in requests:
            uid = user_ids.get(user)
            pid = perm_ids.get((object_type, permission))
            if uid is None or pid is None:
                append(False)
            else:
                append((perm_mask(uid) >> pid) & 1 == 1)
        return results

    def roles_of(self, user: str, use_hierarchy: bool = True
                 ) -> set[DomainRole]:
        """Direct assignments, optionally closed downward."""
        uid = self._user_ids.get(user)
        if uid is None:
            return set()
        mask = self._user_direct_roles[uid]
        if use_hierarchy:
            closed = 0
            down = self._down
            for rid in _iter_bits(mask):
                closed |= down[rid]
            mask = closed
        roles = self._roles
        return {roles[rid] for rid in _iter_bits(mask)}

    def permissions_of(self, domain: str, role: str,
                       use_hierarchy: bool = True) -> set[Grant]:
        """Grant rows held by (domain, role), optionally via juniors.

        Rows keep their *own* domain/role (a senior sees the junior's
        grant as the junior's row), matching the set-based semantics.
        """
        rid = self._role_ids.get(DomainRole(domain, role))
        if rid is None:
            return set()
        cone = self._down[rid] if use_hierarchy else (1 << rid)
        grants: set[Grant] = set()
        roles = self._roles
        perms = self._perms
        direct = self._role_direct_perms
        for member in _iter_bits(cone):
            holder = roles[member]
            for pid in _iter_bits(direct[member]):
                object_type, permission = perms[pid]
                grants.add(Grant(holder.domain, holder.role,
                                 object_type, permission))
        return grants

    def role_has_permission(self, domain: str, role: str, object_type: str,
                            permission: str,
                            use_hierarchy: bool = True) -> bool:
        """Single-bit probe of the (closed) role-permission column."""
        rid = self._role_ids.get(DomainRole(domain, role))
        pid = self._perm_ids.get((object_type, permission))
        if rid is None or pid is None:
            return False
        column = (self._role_closed_perms if use_hierarchy
                  else self._role_direct_perms)
        return (column[rid] >> pid) & 1 == 1

    def members_of(self, domain: str, role: str,
                   use_hierarchy: bool = True) -> set[str]:
        """Users assigned to (domain, role) or (optionally) a senior."""
        rid = self._role_ids.get(DomainRole(domain, role))
        if rid is None:
            return set()
        cone = self._up[rid] if use_hierarchy else (1 << rid)
        mask = 0
        members = self._role_members
        for senior in _iter_bits(cone):
            mask |= members[senior]
        users = self._users
        return {users[uid] for uid in _iter_bits(mask)}

    def authorised_users(self, object_type: str, permission: str) -> set[str]:
        """All users allowed (object_type, permission): OR the member masks
        of every role whose closed column holds the bit — one pass over
        roles, no per-user closure."""
        pid = self._perm_ids.get((object_type, permission))
        if pid is None:
            return set()
        mask = 0
        members = self._role_members
        for rid, closed in enumerate(self._role_closed_perms):
            if (closed >> pid) & 1:
                mask |= members[rid]
        users = self._users
        return {users[uid] for uid in _iter_bits(mask)}

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Interning sizes and maintenance counters (for ``status`` and
        the bench artifact)."""
        return {
            "users": len(self._users),
            "roles": len(self._roles),
            "perms": len(self._perms),
            "builds": self.builds,
            "hierarchy_rebuilds": self.hierarchy_rebuilds,
            "deltas": self.deltas,
            "cached_user_masks": len(self._user_perm_cache),
        }

"""A compiled, columnar RBAC engine (bitset evaluation).

The set-based query paths of :class:`~repro.rbac.policy.RBACPolicy` scan the
raw ``HasPermission`` / ``UserAssignment`` relations per decision —
``roles_of`` walks every assignment, ``check_access`` every grant.  That is
the executable spec, but it caps cold-path throughput at large universes.
This module is the engine swap ROADMAP item 3 calls for: the *service
interface stays stable* (the policy's method signatures are unchanged; it
routes here when ``compiled`` is on) while the representation underneath is
columnar:

- users, domain-roles and ``(object_type, permission)`` pairs are interned
  into dense integer ids (interning is append-only — ids never move);
- each relation row becomes one set bit: ``_role_direct_perms[rid]`` is an
  int bitmask over permission ids, ``_user_direct_roles[uid]`` and
  ``_role_members[rid]`` bitmasks over role/user ids;
- the RBAC1 hierarchy closure is two bitmask columns (``_down`` /``_up``,
  inclusive) computed in topological order (O(edges) big-int ORs, no
  per-bit iteration) and then maintained **per edge delta**: the
  hierarchy's bounded delta log is replayed so an edge change touches only
  the cones it connects, not the world;
- the derived column ``_role_closed_perms[rid]`` — the permissions a role
  holds *including its juniors* — is maintained **incrementally**: a grant
  delta ORs/rebuilds only the rows of the affected role's senior cone, an
  assignment delta touches two bitmasks, an edge delta only the affected
  cones, and every mutation evicts only the cached user masks of users
  holding an affected role.

Every decision is then bitwise: ``check_access`` is one AND+shift, batch
``check_access_many`` reuses a per-user effective mask cache across the
batch, and ``authorised_users`` ORs the member masks of the qualifying
roles instead of re-deriving ``roles_of`` per user.

The engine is *decision-identical* to the set-based path by construction
and by test: the PR 5 oracle differ and the hypothesis churn suite compare
the three implementations (engine, sets, naive oracle) answer by answer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Assignment, DomainRole, Grant


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class RBACEngine:
    """Bitset-compiled view of one policy's relations and hierarchy.

    Built lazily by :class:`~repro.rbac.policy.RBACPolicy` on first
    compiled query, then kept in sync by O(delta) mutation calls.  The
    hierarchy is owned by the policy and may be mutated (or replaced)
    behind the engine's back, so every query entry point goes through
    :meth:`sync_hierarchy`, which recompiles the closure columns only when
    the hierarchy object or its :attr:`~RoleHierarchy.version` changed.
    """

    def __init__(self) -> None:
        # -- interning tables (append-only: ids are stable) ---------------
        self._role_ids: dict[DomainRole, int] = {}
        self._roles: list[DomainRole] = []
        self._user_ids: dict[str, int] = {}
        self._users: list[str] = []
        self._perm_ids: dict[tuple[str, str], int] = {}
        self._perms: list[tuple[str, str]] = []
        # -- relation columns (index = interned id) -----------------------
        self._role_direct_perms: list[int] = []   # rid -> perm-id bitmask
        self._user_direct_roles: list[int] = []   # uid -> role-id bitmask
        self._role_members: list[int] = []        # rid -> user-id bitmask
        # -- hierarchy closure columns (inclusive of the role itself) -----
        self._down: list[int] = []                # rid -> dominated cone
        self._up: list[int] = []                  # rid -> dominating cone
        # -- direct hierarchy adjacency (kept so edge deltas can replay
        #    without re-reading the whole edge set) ------------------------
        self._children: list[list[int]] = []
        self._parents: list[list[int]] = []
        # -- derived column: direct perms ORed over the downward cone -----
        self._role_closed_perms: list[int] = []
        self._hierarchy: RoleHierarchy | None = None
        self._hierarchy_version = -1
        #: per-user effective permission mask; mutations evict only the
        #: masks of users holding an affected role — the warm path of a
        #: Zipfian batch is one dict hit + one AND, and it survives
        #: unrelated churn
        self._user_perm_cache: dict[int, int] = {}
        # -- observability -------------------------------------------------
        self.builds = 0
        self.hierarchy_rebuilds = 0
        self.deltas = 0
        self.edge_deltas = 0
        self.mask_evictions = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_relations(cls, grants: Iterable[Grant],
                       assignments: Iterable[Assignment],
                       hierarchy: RoleHierarchy) -> "RBACEngine":
        """Compile a relation snapshot (one pass, no closure yet)."""
        engine = cls()
        engine.builds += 1
        for grant in grants:
            engine._set_grant_bit(grant.domain_role,
                                  (grant.object_type, grant.permission))
        for assignment in assignments:
            engine._set_assignment_bits(assignment.user,
                                        assignment.domain_role)
        engine.sync_hierarchy(hierarchy)
        return engine

    # -- interning ---------------------------------------------------------

    def _role_id(self, role: DomainRole) -> int:
        rid = self._role_ids.get(role)
        if rid is None:
            rid = len(self._roles)
            self._role_ids[role] = rid
            self._roles.append(role)
            self._role_direct_perms.append(0)
            self._role_members.append(0)
            # A fresh role has no edges yet: its cones are itself.
            self._down.append(1 << rid)
            self._up.append(1 << rid)
            self._children.append([])
            self._parents.append([])
            self._role_closed_perms.append(0)
        return rid

    def _user_id(self, user: str) -> int:
        uid = self._user_ids.get(user)
        if uid is None:
            uid = len(self._users)
            self._user_ids[user] = uid
            self._users.append(user)
            self._user_direct_roles.append(0)
        return uid

    def _perm_id(self, perm: tuple[str, str]) -> int:
        pid = self._perm_ids.get(perm)
        if pid is None:
            pid = len(self._perms)
            self._perm_ids[perm] = pid
            self._perms.append(perm)
        return pid

    # -- raw bit plumbing (no closure maintenance) -------------------------

    def _set_grant_bit(self, role: DomainRole, perm: tuple[str, str]) -> None:
        rid = self._role_id(role)
        self._role_direct_perms[rid] |= 1 << self._perm_id(perm)

    def _set_assignment_bits(self, user: str, role: DomainRole) -> None:
        uid = self._user_id(user)
        rid = self._role_id(role)
        self._user_direct_roles[uid] |= 1 << rid
        self._role_members[rid] |= 1 << uid

    # -- hierarchy compilation ---------------------------------------------

    def sync_hierarchy(self, hierarchy: RoleHierarchy) -> None:
        """Bring the closure columns up to date with the hierarchy.

        Cheap in the common case: one identity check plus one integer
        compare.  When the same hierarchy object advanced by a few
        versions, its bounded delta log is replayed edge-by-edge —
        O(delta) cone updates, and only the user masks of affected roles
        are evicted.  Only when the hierarchy object was swapped out (or
        the log no longer reaches back) is the closure rebuilt in
        topological order — O(edges) big-int ORs; relation columns are
        untouched either way.
        """
        if (self._hierarchy is hierarchy
                and self._hierarchy_version == hierarchy.version):
            return
        if self._hierarchy is hierarchy:
            deltas = hierarchy.deltas_since(self._hierarchy_version)
            if deltas is not None:
                for _version, op, senior, junior in deltas:
                    if op == "add":
                        self._apply_edge_add(senior, junior)
                    else:
                        self._apply_edge_remove(senior, junior)
                self._hierarchy_version = hierarchy.version
                return
        self._hierarchy = hierarchy
        self._hierarchy_version = hierarchy.version
        self.hierarchy_rebuilds += 1
        # Roles mentioned only in hierarchy edges still shape closures
        # (roles_of must surface junior roles that hold no grants).
        for senior, junior in hierarchy.edges():
            self._role_id(senior)
            self._role_id(junior)
        n = len(self._roles)
        down = [1 << rid for rid in range(n)]
        up = [1 << rid for rid in range(n)]
        children: list[list[int]] = [[] for _ in range(n)]
        parents: list[list[int]] = [[] for _ in range(n)]
        for senior, junior in hierarchy.edges():
            s, j = self._role_ids[senior], self._role_ids[junior]
            children[s].append(j)
            parents[j].append(s)
        for rid in self._topological(children):
            mask = down[rid]
            for child in children[rid]:
                mask |= down[child]
            down[rid] = mask
        for rid in self._topological(parents):
            mask = up[rid]
            for parent in parents[rid]:
                mask |= up[parent]
            up[rid] = mask
        self._down = down
        self._up = up
        self._children = children
        self._parents = parents
        direct = self._role_direct_perms
        closed = [0] * n
        for rid in self._topological(children):
            mask = direct[rid]
            for child in children[rid]:
                mask |= closed[child]
            closed[rid] = mask
        self._role_closed_perms = closed
        self._user_perm_cache.clear()

    def _apply_edge_add(self, senior: DomainRole, junior: DomainRole) -> None:
        """Incremental closure under one new edge ``senior -> junior``: the
        new domination pairs are exactly up(senior) x down(junior), so the
        down cones and closed-permission rows of senior's up-cone absorb
        junior's, and the up cones of junior's down-cone absorb senior's.
        The two cones are disjoint (the hierarchy rejected cycles), so the
        absorbed masks are stable while the loops run."""
        s = self._role_id(senior)
        j = self._role_id(junior)
        if j in self._children[s]:
            # Re-declared edge: the hierarchy bumped its version but the
            # closure is already correct.
            return
        self._children[s].append(j)
        self._parents[j].append(s)
        up_s = self._up[s]
        down_j = self._down[j]
        closed_j = self._role_closed_perms[j]
        down = self._down
        up = self._up
        closed = self._role_closed_perms
        for ancestor in _iter_bits(up_s):
            down[ancestor] |= down_j
            closed[ancestor] |= closed_j
        for descendant in _iter_bits(down_j):
            up[descendant] |= up_s
        self._evict_user_masks(up_s)
        self.edge_deltas += 1
        self.deltas += 1

    def _apply_edge_remove(self, senior: DomainRole,
                           junior: DomainRole) -> None:
        """Incremental closure under one removed edge: re-derive the down
        cones and closed rows of senior's (old) up-cone and the up cones of
        junior's (old) down-cone, in topological order over the affected
        set only.  Both affected sets are path-closed (any node on a
        hierarchy path between two affected nodes is itself affected), so
        cone values of non-affected neighbours are already final."""
        s = self._role_ids.get(senior)
        j = self._role_ids.get(junior)
        if s is None or j is None or j not in self._children[s]:
            return
        self._children[s].remove(j)
        self._parents[j].remove(s)
        ancestors = self._up[s]      # old up-cone of senior, inclusive
        descendants = self._down[j]  # old down-cone of junior, inclusive
        down = self._down
        closed = self._role_closed_perms
        direct = self._role_direct_perms
        children = self._children
        for rid in self._topological_subset(children, ancestors):
            down_mask = 1 << rid
            closed_mask = direct[rid]
            for child in children[rid]:
                down_mask |= down[child]
                closed_mask |= closed[child]
            down[rid] = down_mask
            closed[rid] = closed_mask
        up = self._up
        parents = self._parents
        for rid in self._topological_subset(parents, descendants):
            mask = 1 << rid
            for parent in parents[rid]:
                mask |= up[parent]
            up[rid] = mask
        self._evict_user_masks(ancestors)
        self.edge_deltas += 1
        self.deltas += 1

    @staticmethod
    def _topological(successors: list[list[int]]) -> list[int]:
        """Reverse-post-order over a DAG, iterative (hierarchies can be
        deep chains; recursion would overflow)."""
        n = len(successors)
        order: list[int] = []
        state = bytearray(n)  # 0 unvisited, 1 on stack, 2 done
        for root in range(n):
            if state[root]:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            state[root] = 1
            while stack:
                node, index = stack[-1]
                if index < len(successors[node]):
                    stack[-1] = (node, index + 1)
                    succ = successors[node][index]
                    if not state[succ]:
                        state[succ] = 1
                        stack.append((succ, 0))
                else:
                    stack.pop()
                    state[node] = 2
                    order.append(node)
        return order  # successors of a node always precede it

    def _topological_subset(self, successors: list[list[int]],
                            member_mask: int) -> list[int]:
        """Reverse-post-order over the subgraph induced by ``member_mask``
        (successors outside the set are skipped — their values are final).
        Same iterative shape as :meth:`_topological`, but O(affected cone)
        instead of O(roles)."""
        order: list[int] = []
        state: dict[int, int] = {}
        for root in _iter_bits(member_mask):
            if root in state:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            state[root] = 1
            while stack:
                node, index = stack[-1]
                succs = successors[node]
                while (index < len(succs)
                       and not (member_mask >> succs[index]) & 1):
                    index += 1
                if index < len(succs):
                    stack[-1] = (node, index + 1)
                    succ = succs[index]
                    if succ not in state:
                        state[succ] = 1
                        stack.append((succ, 0))
                else:
                    stack.pop()
                    state[node] = 2
                    order.append(node)
        return order

    def _evict_user_masks(self, role_mask: int) -> None:
        """Selective `_user_perm_cache` eviction: only users directly
        assigned to a role whose closed row changed can have a stale
        mask.  Iterates whichever side is smaller — the affected-user
        bitset or the cache itself."""
        cache = self._user_perm_cache
        if not cache:
            return
        affected = 0
        members = self._role_members
        for rid in _iter_bits(role_mask):
            affected |= members[rid]
        if not affected:
            return
        evicted = 0
        if affected.bit_count() < len(cache):
            for uid in _iter_bits(affected):
                if cache.pop(uid, None) is not None:
                    evicted += 1
        else:
            stale = [uid for uid in cache if (affected >> uid) & 1]
            for uid in stale:
                del cache[uid]
            evicted = len(stale)
        self.mask_evictions += evicted

    # -- incremental mutation (O(delta)) -----------------------------------

    def add_grant(self, grant: Grant) -> None:
        """One new ``HasPermission`` bit: OR it into the affected role and
        every role in its senior cone (monotone — no recompute)."""
        rid = self._role_id(grant.domain_role)
        bit = 1 << self._perm_id((grant.object_type, grant.permission))
        self._role_direct_perms[rid] |= bit
        for senior in _iter_bits(self._up[rid]):
            self._role_closed_perms[senior] |= bit
        self._evict_user_masks(self._up[rid])
        self.deltas += 1

    def remove_grant(self, grant: Grant) -> None:
        """Revocation is not monotone: re-derive the closed column for the
        senior cone of the affected role only (everything else is
        untouched)."""
        rid = self._role_ids.get(grant.domain_role)
        pid = self._perm_ids.get((grant.object_type, grant.permission))
        if rid is None or pid is None:
            return
        self._role_direct_perms[rid] &= ~(1 << pid)
        direct = self._role_direct_perms
        down = self._down
        for senior in _iter_bits(self._up[rid]):
            mask = 0
            for member in _iter_bits(down[senior]):
                mask |= direct[member]
            self._role_closed_perms[senior] = mask
        self._evict_user_masks(self._up[rid])
        self.deltas += 1

    def add_assignment(self, assignment: Assignment) -> None:
        """One new ``UserAssignment`` bit (two bitmask ORs)."""
        self._set_assignment_bits(assignment.user, assignment.domain_role)
        uid = self._user_ids[assignment.user]
        self._user_perm_cache.pop(uid, None)
        self.deltas += 1

    def remove_assignment(self, assignment: Assignment) -> None:
        """Clear one ``UserAssignment`` bit."""
        uid = self._user_ids.get(assignment.user)
        rid = self._role_ids.get(assignment.domain_role)
        if uid is None or rid is None:
            return
        self._user_direct_roles[uid] &= ~(1 << rid)
        self._role_members[rid] &= ~(1 << uid)
        self._user_perm_cache.pop(uid, None)
        self.deltas += 1

    def remove_user(self, user: str) -> None:
        """Drop every assignment of ``user`` (the paper's revocation op)."""
        uid = self._user_ids.get(user)
        if uid is None:
            return
        mask = self._user_direct_roles[uid]
        for rid in _iter_bits(mask):
            self._role_members[rid] &= ~(1 << uid)
        self._user_direct_roles[uid] = 0
        self._user_perm_cache.pop(uid, None)
        self.deltas += 1

    # -- queries -----------------------------------------------------------

    def _user_perm_mask(self, uid: int) -> int:
        """Effective permission mask of a user (memoised per mutation
        epoch): OR of the closed columns of the directly assigned roles."""
        cached = self._user_perm_cache.get(uid)
        if cached is not None:
            return cached
        mask = 0
        closed = self._role_closed_perms
        for rid in _iter_bits(self._user_direct_roles[uid]):
            mask |= closed[rid]
        self._user_perm_cache[uid] = mask
        return mask

    def check_access(self, user: str, object_type: str, permission: str,
                     use_hierarchy: bool = True) -> bool:
        """The fundamental decision as one AND+shift."""
        uid = self._user_ids.get(user)
        pid = self._perm_ids.get((object_type, permission))
        if uid is None or pid is None:
            return False
        if use_hierarchy:
            return (self._user_perm_mask(uid) >> pid) & 1 == 1
        mask = 0
        direct = self._role_direct_perms
        for rid in _iter_bits(self._user_direct_roles[uid]):
            mask |= direct[rid]
        return (mask >> pid) & 1 == 1

    def check_access_many(self, requests: Sequence[tuple[str, str, str]],
                          use_hierarchy: bool = True) -> list[bool]:
        """Batch decisions; the per-user mask cache is shared across the
        batch, so repeated (Zipfian) users pay the OR once."""
        if not use_hierarchy:
            return [self.check_access(u, ot, p, use_hierarchy=False)
                    for u, ot, p in requests]
        user_ids = self._user_ids
        perm_ids = self._perm_ids
        perm_mask = self._user_perm_mask
        results: list[bool] = []
        append = results.append
        for user, object_type, permission in requests:
            uid = user_ids.get(user)
            pid = perm_ids.get((object_type, permission))
            if uid is None or pid is None:
                append(False)
            else:
                append((perm_mask(uid) >> pid) & 1 == 1)
        return results

    def roles_of(self, user: str, use_hierarchy: bool = True
                 ) -> set[DomainRole]:
        """Direct assignments, optionally closed downward."""
        uid = self._user_ids.get(user)
        if uid is None:
            return set()
        mask = self._user_direct_roles[uid]
        if use_hierarchy:
            closed = 0
            down = self._down
            for rid in _iter_bits(mask):
                closed |= down[rid]
            mask = closed
        roles = self._roles
        return {roles[rid] for rid in _iter_bits(mask)}

    def permissions_of(self, domain: str, role: str,
                       use_hierarchy: bool = True) -> set[Grant]:
        """Grant rows held by (domain, role), optionally via juniors.

        Rows keep their *own* domain/role (a senior sees the junior's
        grant as the junior's row), matching the set-based semantics.
        """
        rid = self._role_ids.get(DomainRole(domain, role))
        if rid is None:
            return set()
        cone = self._down[rid] if use_hierarchy else (1 << rid)
        grants: set[Grant] = set()
        roles = self._roles
        perms = self._perms
        direct = self._role_direct_perms
        for member in _iter_bits(cone):
            holder = roles[member]
            for pid in _iter_bits(direct[member]):
                object_type, permission = perms[pid]
                grants.add(Grant(holder.domain, holder.role,
                                 object_type, permission))
        return grants

    def role_has_permission(self, domain: str, role: str, object_type: str,
                            permission: str,
                            use_hierarchy: bool = True) -> bool:
        """Single-bit probe of the (closed) role-permission column."""
        rid = self._role_ids.get(DomainRole(domain, role))
        pid = self._perm_ids.get((object_type, permission))
        if rid is None or pid is None:
            return False
        column = (self._role_closed_perms if use_hierarchy
                  else self._role_direct_perms)
        return (column[rid] >> pid) & 1 == 1

    def members_of(self, domain: str, role: str,
                   use_hierarchy: bool = True) -> set[str]:
        """Users assigned to (domain, role) or (optionally) a senior."""
        rid = self._role_ids.get(DomainRole(domain, role))
        if rid is None:
            return set()
        cone = self._up[rid] if use_hierarchy else (1 << rid)
        mask = 0
        members = self._role_members
        for senior in _iter_bits(cone):
            mask |= members[senior]
        users = self._users
        return {users[uid] for uid in _iter_bits(mask)}

    def authorised_users(self, object_type: str, permission: str) -> set[str]:
        """All users allowed (object_type, permission): OR the member masks
        of every role whose closed column holds the bit — one pass over
        roles, no per-user closure."""
        pid = self._perm_ids.get((object_type, permission))
        if pid is None:
            return set()
        mask = 0
        members = self._role_members
        for rid, closed in enumerate(self._role_closed_perms):
            if (closed >> pid) & 1:
                mask |= members[rid]
        users = self._users
        return {users[uid] for uid in _iter_bits(mask)}

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Interning sizes and maintenance counters (for ``status`` and
        the bench artifact)."""
        return {
            "users": len(self._users),
            "roles": len(self._roles),
            "perms": len(self._perms),
            "builds": self.builds,
            "hierarchy_rebuilds": self.hierarchy_rebuilds,
            "deltas": self.deltas,
            "edge_deltas": self.edge_deltas,
            "mask_evictions": self.mask_evictions,
            "cached_user_masks": len(self._user_perm_cache),
        }

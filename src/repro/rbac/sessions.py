"""RBAC sessions (RBAC96): users activate subsets of their roles.

The WebCom scheduler uses sessions to model the (domain, role, user) execution
context a component is scheduled under (Section 6): a client executes a
component inside a session that has activated exactly the roles the IDE's
placement specification names.
"""

from __future__ import annotations

from repro.errors import ConstraintViolationError, SessionError
from repro.rbac.constraints import SoDConstraint
from repro.rbac.model import DomainRole
from repro.rbac.policy import RBACPolicy


class Session:
    """A user's session with a set of activated roles."""

    def __init__(self, session_id: str, user: str, policy: RBACPolicy,
                 constraints: tuple[SoDConstraint, ...] = ()) -> None:
        self.session_id = session_id
        self.user = user
        self._policy = policy
        self._constraints = constraints
        self._active: set[DomainRole] = set()
        self._closed = False

    @property
    def active_roles(self) -> frozenset[DomainRole]:
        """Roles currently activated in this session."""
        return frozenset(self._active)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise SessionError(f"session {self.session_id} is closed")

    def activate(self, domain: str, role: str) -> None:
        """Activate a role the user is assigned to.

        :raises SessionError: if the user lacks the assignment or the session
            is closed.
        :raises ConstraintViolationError: if activation would violate a
            dynamic separation-of-duty constraint.
        """
        self._require_open()
        dr = DomainRole(domain, role)
        if dr not in self._policy.roles_of(self.user):
            raise SessionError(
                f"user {self.user!r} is not assigned to {dr}")
        candidate = self._active | {dr}
        for constraint in self._constraints:
            if constraint.dynamic and not constraint.permits(candidate):
                raise ConstraintViolationError(
                    f"activating {dr} violates {constraint}")
        self._active.add(dr)

    def deactivate(self, domain: str, role: str) -> None:
        """Deactivate a role (no-op if not active)."""
        self._require_open()
        self._active.discard(DomainRole(domain, role))

    def check_access(self, object_type: str, permission: str) -> bool:
        """Decision over *activated* roles only (least privilege)."""
        self._require_open()
        active = set(self._active)
        for dr in list(active):
            active |= self._policy.hierarchy.juniors(dr)
        return any(g.domain_role in active
                   and g.object_type == object_type
                   and g.permission == permission
                   for g in self._policy.grants)

    def close(self) -> None:
        """Terminate the session; further operations raise."""
        self._active.clear()
        self._closed = True

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"active={sorted(map(str, self._active))}"
        return f"Session({self.session_id!r}, user={self.user!r}, {state})"


class SessionManager:
    """Creates and tracks sessions against one policy."""

    def __init__(self, policy: RBACPolicy,
                 constraints: tuple[SoDConstraint, ...] = ()) -> None:
        self.policy = policy
        self.constraints = constraints
        self._sessions: dict[str, Session] = {}
        self._counter = 0

    def open_session(self, user: str,
                     roles: tuple[tuple[str, str], ...] = ()) -> Session:
        """Open a session for ``user``, optionally activating roles.

        :raises SessionError: if any requested role is not assigned.
        """
        self._counter += 1
        session = Session(f"sess-{self._counter}", user, self.policy,
                          self.constraints)
        for domain, role in roles:
            session.activate(domain, role)
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        """Look up a session by id.

        :raises SessionError: if unknown.
        """
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def close_all(self, user: str | None = None) -> int:
        """Close all sessions (optionally only those of ``user``)."""
        count = 0
        for session in self._sessions.values():
            if not session.closed and (user is None or session.user == user):
                session.close()
                count += 1
        return count

    def open_sessions(self) -> list[Session]:
        """All sessions that are still open."""
        return [s for s in self._sessions.values() if not s.closed]

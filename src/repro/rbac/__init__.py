"""The paper's extended RBAC model (Section 2).

RBAC extended with ``Domain`` and ``ObjectType``::

    HasPermission  ⊆ Domain × Role × ObjectType × Permission
    UserAssignment ⊆ User × Domain × Role

where ``HasPermission(d, r, t, p)`` means role ``r`` in domain ``d`` holds
permission ``p`` on objects of type ``t``, and ``UserAssignment(u, d, r)``
means user ``u`` is assigned to the domain-role pair ``(d, r)``.

This package also provides the standard RBAC machinery the paper's middleware
substrates rely on: role hierarchies, sessions, separation-of-duty
constraints, and policy diff/merge for maintenance.
"""

from repro.rbac.constraints import SoDConstraint
from repro.rbac.diff import PolicyDelta, diff_policies, merge_policies
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import (
    Assignment,
    DomainRole,
    Grant,
    ObjectType,
    Permission,
)
from repro.rbac.policy import RBACPolicy
from repro.rbac.sessions import Session, SessionManager

__all__ = [
    "Assignment",
    "DomainRole",
    "Grant",
    "ObjectType",
    "Permission",
    "PolicyDelta",
    "RBACPolicy",
    "RoleHierarchy",
    "Session",
    "SessionManager",
    "SoDConstraint",
    "diff_policies",
    "merge_policies",
]

"""Role hierarchies (RBAC1).

A senior role inherits the permissions of its juniors, and a member of a
senior role is implicitly a member of the juniors.  The paper's middleware
models are flat, but hierarchies are part of the standard RBAC machinery
([26]) that the framework's comprehension layer can target, and the COM+
simulator uses a small hierarchy for its built-in Administrators role.

Both edge directions are indexed: ``_juniors`` (senior → junior, as
declared) and ``_seniors`` (the transpose, maintained alongside), so both
:meth:`RoleHierarchy.juniors` and :meth:`RoleHierarchy.seniors` are a single
BFS over an adjacency map rather than a repeated-scan fixpoint, and
:meth:`RoleHierarchy.dominates` stops the walk as soon as the target is
reached instead of materialising the full closure.  A :attr:`version`
counter is bumped on every edge change; the compiled RBAC engine
(:mod:`repro.rbac.engine`) keys its cached hierarchy closure on it.

Each edge change is also appended to a bounded *delta log*, so a closure
consumer that last synced at version ``v`` can ask
:meth:`RoleHierarchy.deltas_since` for the exact edge operations between
``v`` and now and replay them incrementally — O(delta) instead of an
O(edges) rebuild.  The log keeps the most recent
:data:`DELTA_LOG_LIMIT` entries; a consumer that fell further behind gets
``None`` and must rebuild.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

#: how many edge deltas the replay log retains; syncs further behind than
#: this fall back to a full closure rebuild
DELTA_LOG_LIMIT = 256

from repro.errors import HierarchyError
from repro.rbac.model import DomainRole


def _bfs(adjacency: dict[DomainRole, set[DomainRole]],
         start: DomainRole) -> set[DomainRole]:
    """Transitive closure of ``start`` over ``adjacency`` (exclusive)."""
    seen: set[DomainRole] = set()
    stack = list(adjacency.get(start, ()))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(adjacency.get(current, ()))
    return seen


class RoleHierarchy:
    """A DAG over :class:`DomainRole` where edges point senior → junior."""

    def __init__(self) -> None:
        self._juniors: dict[DomainRole, set[DomainRole]] = {}
        self._seniors: dict[DomainRole, set[DomainRole]] = {}
        self._version = 0
        #: (version after the op, "add" | "remove", senior, junior)
        self._delta_log: deque[tuple[int, str, DomainRole, DomainRole]] = (
            deque(maxlen=DELTA_LOG_LIMIT))

    @property
    def version(self) -> int:
        """Bumped on every edge addition/removal (closure-cache key)."""
        return self._version

    def add_inheritance(self, senior: DomainRole, junior: DomainRole) -> None:
        """Declare that ``senior`` inherits from (dominates) ``junior``.

        :raises HierarchyError: if the edge would create a cycle or a
            self-loop.
        """
        if senior == junior:
            raise HierarchyError(f"role {senior} cannot inherit from itself")
        if self.dominates(junior, senior):
            raise HierarchyError(
                f"edge {senior} -> {junior} would create a cycle")
        self._juniors.setdefault(senior, set()).add(junior)
        self._seniors.setdefault(junior, set()).add(senior)
        self._version += 1
        self._delta_log.append((self._version, "add", senior, junior))

    def remove_inheritance(self, senior: DomainRole, junior: DomainRole) -> bool:
        """Remove a direct edge; return True if it existed."""
        juniors = self._juniors.get(senior)
        if juniors and junior in juniors:
            juniors.remove(junior)
            if not juniors:
                del self._juniors[senior]
            seniors = self._seniors[junior]
            seniors.remove(senior)
            if not seniors:
                del self._seniors[junior]
            self._version += 1
            self._delta_log.append((self._version, "remove", senior, junior))
            return True
        return False

    def deltas_since(self, version: int
                     ) -> "list[tuple[int, str, DomainRole, DomainRole]] | None":
        """Edge operations between ``version`` (exclusive) and now.

        Returns an empty list when already current and ``None`` when the
        bounded log no longer reaches back to ``version`` (the caller must
        fall back to a full rebuild).  Versions advance by exactly one per
        edge operation, so the log is contiguous."""
        if version == self._version:
            return []
        if version > self._version or version < 0:
            return None
        log = self._delta_log
        if not log or log[0][0] > version + 1:
            return None
        return [entry for entry in log if entry[0] > version]

    def direct_juniors(self, role: DomainRole) -> frozenset[DomainRole]:
        """Roles directly dominated by ``role``."""
        return frozenset(self._juniors.get(role, frozenset()))

    def direct_seniors(self, role: DomainRole) -> frozenset[DomainRole]:
        """Roles directly dominating ``role``."""
        return frozenset(self._seniors.get(role, frozenset()))

    def juniors(self, role: DomainRole) -> set[DomainRole]:
        """Transitive closure of roles dominated by ``role`` (exclusive)."""
        return _bfs(self._juniors, role)

    def seniors(self, role: DomainRole) -> set[DomainRole]:
        """Transitive closure of roles that dominate ``role`` (exclusive)."""
        return _bfs(self._seniors, role)

    def dominates(self, senior: DomainRole, junior: DomainRole) -> bool:
        """True if ``senior`` equals or transitively dominates ``junior``.

        Early-exit search: stops as soon as ``junior`` is reached rather
        than materialising the full downward closure of ``senior``.
        """
        if senior == junior:
            return True
        seen: set[DomainRole] = set()
        stack = list(self._juniors.get(senior, ()))
        while stack:
            current = stack.pop()
            if current == junior:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._juniors.get(current, ()))
        return False

    def edges(self) -> Iterable[tuple[DomainRole, DomainRole]]:
        """All direct (senior, junior) edges in deterministic order."""
        for senior in sorted(self._juniors):
            for junior in sorted(self._juniors[senior]):
                yield senior, junior

    def is_empty(self) -> bool:
        """True if no inheritance edges exist."""
        return not self._juniors

    def copy(self) -> "RoleHierarchy":
        """Deep copy."""
        other = RoleHierarchy()
        other._juniors = {k: set(v) for k, v in self._juniors.items()}
        other._seniors = {k: set(v) for k, v in self._seniors.items()}
        other._version = self._version
        other._delta_log = deque(self._delta_log, maxlen=DELTA_LOG_LIMIT)
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoleHierarchy):
            return NotImplemented
        return self._juniors == other._juniors

    def __repr__(self) -> str:
        return f"RoleHierarchy(edges={sum(len(v) for v in self._juniors.values())})"

"""Role hierarchies (RBAC1).

A senior role inherits the permissions of its juniors, and a member of a
senior role is implicitly a member of the juniors.  The paper's middleware
models are flat, but hierarchies are part of the standard RBAC machinery
([26]) that the framework's comprehension layer can target, and the COM+
simulator uses a small hierarchy for its built-in Administrators role.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import HierarchyError
from repro.rbac.model import DomainRole


class RoleHierarchy:
    """A DAG over :class:`DomainRole` where edges point senior → junior."""

    def __init__(self) -> None:
        self._juniors: dict[DomainRole, set[DomainRole]] = {}

    def add_inheritance(self, senior: DomainRole, junior: DomainRole) -> None:
        """Declare that ``senior`` inherits from (dominates) ``junior``.

        :raises HierarchyError: if the edge would create a cycle or a
            self-loop.
        """
        if senior == junior:
            raise HierarchyError(f"role {senior} cannot inherit from itself")
        if senior in self.juniors(junior) or senior == junior:
            raise HierarchyError(
                f"edge {senior} -> {junior} would create a cycle")
        self._juniors.setdefault(senior, set()).add(junior)

    def remove_inheritance(self, senior: DomainRole, junior: DomainRole) -> bool:
        """Remove a direct edge; return True if it existed."""
        juniors = self._juniors.get(senior)
        if juniors and junior in juniors:
            juniors.remove(junior)
            if not juniors:
                del self._juniors[senior]
            return True
        return False

    def direct_juniors(self, role: DomainRole) -> frozenset[DomainRole]:
        """Roles directly dominated by ``role``."""
        return frozenset(self._juniors.get(role, frozenset()))

    def juniors(self, role: DomainRole) -> set[DomainRole]:
        """Transitive closure of roles dominated by ``role`` (exclusive)."""
        seen: set[DomainRole] = set()
        stack = list(self._juniors.get(role, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._juniors.get(current, ()))
        return seen

    def seniors(self, role: DomainRole) -> set[DomainRole]:
        """Transitive closure of roles that dominate ``role`` (exclusive)."""
        result: set[DomainRole] = set()
        changed = True
        while changed:
            changed = False
            for senior, juniors in self._juniors.items():
                if senior in result:
                    continue
                if juniors & (result | {role}):
                    result.add(senior)
                    changed = True
        return result

    def dominates(self, senior: DomainRole, junior: DomainRole) -> bool:
        """True if ``senior`` equals or transitively dominates ``junior``."""
        return senior == junior or junior in self.juniors(senior)

    def edges(self) -> Iterable[tuple[DomainRole, DomainRole]]:
        """All direct (senior, junior) edges in deterministic order."""
        for senior in sorted(self._juniors):
            for junior in sorted(self._juniors[senior]):
                yield senior, junior

    def is_empty(self) -> bool:
        """True if no inheritance edges exist."""
        return not self._juniors

    def copy(self) -> "RoleHierarchy":
        """Deep copy."""
        other = RoleHierarchy()
        other._juniors = {k: set(v) for k, v in self._juniors.items()}
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoleHierarchy):
            return NotImplemented
        return self._juniors == other._juniors

    def __repr__(self) -> str:
        return f"RoleHierarchy(edges={sum(len(v) for v in self._juniors.values())})"

"""The recovery path: latest valid snapshot + WAL tail replay.

Recovery is the inverse of the write path and the property the whole store
exists for: after *any* crash, a restarted node must reassemble exactly the
acknowledged state — no acknowledged update lost, no torn garbage applied,
and a refusal (:class:`~repro.errors.CorruptLogError`) when acknowledged
mid-log history was damaged in place.

The contract, in order:

1. the newest snapshot that parses and passes its checksum is loaded
   (half-written or bit-flipped snapshots are skipped — the store retains
   enough older snapshots that the log always reaches back to one);
2. the WAL is opened, which itself truncates any torn tail and rejects
   corrupt mid-log records;
3. the tail — records with LSN at or past the snapshot's ``wal_lsn`` — is
   replayed on top of the snapshot state by the component restore functions
   (:mod:`repro.store.durable`).

Everything a recovered node serves is derived from this triple; in-memory
caches (decision caches, mediation caches, compiled checkers) are rebuilt
cold so no pre-crash cache entry can be served as fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import RecoveryError
from repro.store.snapshot import SnapshotStore
from repro.store.wal import WriteAheadLog


@dataclass
class RecoveredState:
    """Everything recovery reassembled from disk."""

    #: the snapshot state, or {} when recovering from the log alone
    state: dict[str, Any] = field(default_factory=dict)
    #: WAL payloads past the snapshot, in append (LSN) order
    tail: list[dict] = field(default_factory=list)
    #: LSN the snapshot covers (0 without a snapshot)
    snapshot_lsn: int = 0
    #: snapshot sequence number used (0 without a snapshot)
    snapshot_seq: int = 0
    #: torn-tail bytes the WAL open discarded
    truncated_bytes: int = 0
    #: snapshots skipped as unreadable/corrupt before one loaded
    skipped_snapshots: int = 0
    #: the LSN the next append will get
    next_lsn: int = 0

    def used_snapshot(self) -> bool:
        return self.snapshot_seq > 0


def recover(wal: WriteAheadLog, snapshots: SnapshotStore) -> RecoveredState:
    """Assemble the recovered state from an *opened* WAL and its snapshots.

    :raises RecoveryError: when the log was compacted past every usable
        snapshot (acknowledged history is unreachable) — a configuration
        the compact-to-oldest-retained rule prevents, checked anyway.
    :raises CorruptLogError: propagated from the WAL open for corrupt
        mid-log records (callers open the WAL first).
    """
    loaded = snapshots.load_latest()
    if loaded is None:
        if wal.base_lsn > 0:
            raise RecoveryError(
                f"log {wal.path} was compacted to lsn {wal.base_lsn} but "
                f"no snapshot is loadable")
        return RecoveredState(
            state={}, tail=[payload for _lsn, payload in wal.records()],
            truncated_bytes=wal.truncated_bytes,
            skipped_snapshots=snapshots.skipped,
            next_lsn=wal.next_lsn)
    if loaded.wal_lsn < wal.base_lsn:
        raise RecoveryError(
            f"snapshot {loaded.path.name} covers lsn {loaded.wal_lsn} but "
            f"log {wal.path} starts at {wal.base_lsn}")
    tail = [payload for lsn, payload in wal.records()
            if lsn >= loaded.wal_lsn]
    return RecoveredState(
        state=dict(loaded.state), tail=tail, snapshot_lsn=loaded.wal_lsn,
        snapshot_seq=loaded.seq, truncated_bytes=wal.truncated_bytes,
        skipped_snapshots=snapshots.skipped, next_lsn=wal.next_lsn)

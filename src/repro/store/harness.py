"""The seeded kill-at-every-write-site durability sweep.

``repro durability`` drives this module: for each seed it first *profiles*
a deterministic policy-plane workload (counting how often every durable
write site is visited), then for **every** site kills the process at a
seeded visit of that site, restarts the node through the recovery path,
and verifies three properties:

1. **zero acknowledged-update loss** — the recovered state is
   byte-identical (canonical JSON) to a model node that replayed exactly
   the acknowledged operations, or to that model plus the single in-flight
   operation (an op whose record reached the medium before the crash may
   legitimately survive it);
2. **zero post-recovery oracle disagreements** — the recovered node's
   decisions (KeyNote compliance values, RBAC access checks for both the
   standalone policy and the propagated global policy) are re-mediated
   against the naive oracles of PR 5 and must agree exactly;
3. **replica convergence and cold caches** — every middleware replica's
   digest matches its authoritative slice after recovery, and the
   recovered session starts with no compiled checker (caches are rebuilt,
   never restored).

The sweep's aggregate is the ``DURABILITY_6.json`` artifact; its
``--check`` gate fails on any acknowledged loss or oracle disagreement.
"""

from __future__ import annotations

import json
import random
import tempfile
from pathlib import Path
from typing import Any, Callable

from repro.errors import CorruptLogError, RecoveryError, SimulatedCrashError
from repro.keynote.credential import Credential
from repro.middleware.ejb import EJBServer
from repro.oracle.keynote_oracle import oracle_compliance_value
from repro.oracle.rbac_oracle import RBACOracle
from repro.rbac.diff import PolicyDelta
from repro.rbac.model import Assignment, Grant
from repro.store.durable import DurablePolicyNode, DurableStore
from repro.store.wal import HEADER_SIZE, encode_header, encode_record
from repro.webcom.faults import CrashPointInjector, CrashPointPlan
from repro.webcom.keycom import PolicyUpdateRequest

DOMAIN_A = "hostA:ejb/DurA"
DOMAIN_B = "hostB:ejb/DurB"
KEYCOM_DOMAIN = "hostC:ejb/KeyCom"
GRAPH = "payroll"
USERS = ("Alice", "Bob", "Carol", "Dave")
ROLES = ("Manager", "Clerk")
OBJECTS = ("SalariesDB", "ReportSvc", "PrintSvc")
PERMISSIONS = ("read", "write")

#: the workload's trust roots: delegation root for plain queries, and the
#: KeyCom administration key (licensed for WebCom membership attributes)
ROOT_POLICY = ('Authorizer: POLICY\nLicensees: "Kroot"\n'
               'Conditions: app_domain=="db";')
ADMIN_POLICY = ('Authorizer: POLICY\nLicensees: "Kadmin"\n'
                'Conditions: app_domain=="WebCom";')


def _fresh_components() -> tuple[list, EJBServer]:
    """Fresh replicas and KeyCom middleware (names stable across builds)."""
    replicas = [(EJBServer("hostA", "ejb"), {DOMAIN_A}),
                (EJBServer("hostB", "ejb"), {DOMAIN_B})]
    keycom_middleware = EJBServer("hostC", "ejb")
    return replicas, keycom_middleware


def _recover_node(root: "Path | str",
                  crash: Callable[[str], None] | None = None,
                  ) -> DurablePolicyNode:
    replicas, keycom_middleware = _fresh_components()
    return DurablePolicyNode.recover(
        root, crash=crash, replicas=replicas,
        keycom_middleware=keycom_middleware, graph_names=(GRAPH,),
        verify_signatures=False)


# -- the deterministic workload ----------------------------------------------

def build_ops(seed: int, count: int) -> list[tuple]:
    """The seeded op stream: plain-data tuples so the crash run and the
    post-crash model replays apply byte-identical operations."""
    rng = random.Random(f"durability:{seed}")
    ops: list[tuple] = [("policy", ROOT_POLICY), ("policy", ADMIN_POLICY),
                        ("push",)]
    live_keys: list[str] = []
    #: subject key -> expiry instant, mirrored by the runtime session
    expiries: dict[str, float] = {}
    next_expiry = 100.0
    rids: list[str] = []
    kinds = ("credential", "credential", "grant", "assign", "delta",
             "keycom", "mark", "revoke", "unassign", "sweep", "snapshot")
    for i in range(count):
        kind = rng.choice(kinds)
        if kind == "credential":
            key = f"Ku{i}"
            expires = next_expiry if rng.random() < 0.5 else None
            if expires is not None:
                expiries[key] = expires
                next_expiry += 10.0
            ops.append(("credential", key, expires))
            live_keys.append(key)
        elif kind == "revoke" and live_keys:
            key = rng.choice(live_keys)
            live_keys.remove(key)
            expiries.pop(key, None)
            ops.append(("revoke", key))
        elif kind == "grant":
            ops.append(("grant", rng.choice((DOMAIN_A, DOMAIN_B)),
                        rng.choice(ROLES), rng.choice(OBJECTS),
                        rng.choice(PERMISSIONS)))
        elif kind == "assign":
            ops.append(("assign", rng.choice(USERS),
                        rng.choice((DOMAIN_A, DOMAIN_B)),
                        rng.choice(ROLES)))
        elif kind == "unassign":
            ops.append(("unassign", rng.choice(USERS),
                        rng.choice((DOMAIN_A, DOMAIN_B)),
                        rng.choice(ROLES)))
        elif kind == "delta":
            domain = rng.choice((DOMAIN_A, DOMAIN_B))
            ops.append(("delta",
                        [[domain, rng.choice(ROLES), rng.choice(OBJECTS),
                          rng.choice(PERMISSIONS)]],
                        [[rng.choice(USERS), domain, rng.choice(ROLES)]],
                        f"u{seed}:{i}"))
        elif kind == "keycom":
            if rids and rng.random() < 0.25:
                rid = rng.choice(rids)  # duplicate delivery (retry)
            else:
                rid = f"r{seed}:{i}"
                rids.append(rid)
            ops.append(("keycom", rng.choice(USERS), KEYCOM_DOMAIN,
                        rng.choice(ROLES), rid))
        elif kind == "mark":
            ops.append(("mark", f"n{i}", rng.randint(0, 99)))
        elif kind == "sweep" and expiries:
            # Expire exactly one credential per sweep: instants are spaced
            # 10 apart and the sweep clock stops just past the earliest.
            key = min(expiries, key=lambda k: expiries[k])
            instant = expiries.pop(key)
            if key in live_keys:
                live_keys.remove(key)
            ops.append(("sweep", instant + 1.0))
        else:
            ops.append(("snapshot",))
    return ops


def _credential_text(key: str) -> str:
    return Credential.build(authorizer="Kroot", licensees=f'"{key}"',
                            conditions='app_domain=="db"').to_text()


def apply_op(node: DurablePolicyNode, op: tuple) -> None:
    """Apply one workload op to a node (live run and model replays share
    this, so acknowledged histories are comparable byte-for-byte)."""
    kind = op[0]
    if kind == "policy":
        node.session.add_policy(op[1])
    elif kind == "push":
        node.engine.push_all()
    elif kind == "credential":
        node.session.add_credential(_credential_text(op[1]),
                                    expires_at=op[2])
    elif kind == "revoke":
        node.session.revoke_credential(
            Credential.from_text(_credential_text(op[1])))
    elif kind == "grant":
        node.local_policy.grant(*op[1:])
    elif kind == "assign":
        node.local_policy.assign(*op[1:])
    elif kind == "unassign":
        node.local_policy.unassign(*op[1:])
    elif kind == "delta":
        node.engine.apply_delta(PolicyDelta(
            added_grants=frozenset(Grant(*row) for row in op[1]),
            added_assignments=frozenset(Assignment(*row) for row in op[2])),
            update_id=op[3])
    elif kind == "keycom":
        node.keycom.submit(PolicyUpdateRequest(
            user=op[1], user_key="Kadmin", domain=op[2], role=op[3],
            credentials=(), request_id=op[4]))
    elif kind == "mark":
        node.checkpoints[GRAPH].mark(op[1], op[2])
    elif kind == "sweep":
        node.session.clock.advance_to(op[1])
        node.session.sweep_expired()
    elif kind == "snapshot":
        node.snapshot()
    else:  # pragma: no cover - generator and applier move together
        raise ValueError(f"unknown workload op {op!r}")


def run_workload(root: "Path | str", seed: int, ops_count: int,
                 crash: Callable[[str], None] | None = None,
                 ) -> tuple[list[tuple], "tuple | None", bool]:
    """Run the seeded workload at ``root``; returns ``(acked, in_flight,
    crashed)``.  An op is *acknowledged* only once it returns; the op that
    was executing when the injector fired (if any) is the in-flight op."""
    node = _recover_node(root, crash=crash)
    acked: list[tuple] = []
    in_flight: "tuple | None" = None
    crashed = False
    try:
        for op in build_ops(seed, ops_count):
            in_flight = op
            apply_op(node, op)
            acked.append(op)
            in_flight = None
    except SimulatedCrashError:
        crashed = True
    finally:
        node.close()
    return acked, in_flight, crashed


# -- verification ------------------------------------------------------------

def _canonical_state(node: DurablePolicyNode) -> str:
    return json.dumps(node.state(), sort_keys=True, separators=(",", ":"))


def _replay_model(root: Path, acked: list[tuple]) -> DurablePolicyNode:
    node = _recover_node(root)
    for op in acked:
        apply_op(node, op)
    return node


def _oracle_probes(node: DurablePolicyNode) -> list[dict]:
    """Re-mediate the full probe set on a recovered node against the
    oracles; returns the disagreements."""
    disagreements: list[dict] = []
    assertions = node.session.policies + node.session.credentials
    subjects = sorted(
        {principal for c in node.session.credentials
         for principal in c.principals()} | {"Kroot", "Kadmin", "Kghost"})
    attributes = {"app_domain": "db",
                  "_cur_time": repr(node.session.clock.now())}
    for key in subjects:
        actual = node.session.query(attributes, [key]).compliance_value
        expected = oracle_compliance_value(assertions, attributes, [key])
        if actual != expected:
            disagreements.append({
                "layer": "keynote", "subject": key,
                "actual": actual, "expected": expected})
    for label, policy in (("rbac.local", node.local_policy),
                          ("rbac.global", node.engine.global_policy)):
        oracle = RBACOracle.from_policy(policy)
        for user in USERS:
            for obj in OBJECTS:
                for permission in PERMISSIONS:
                    actual = policy.check_access(user, obj, permission)
                    expected = oracle.check_access(user, obj, permission)
                    if actual != expected:
                        disagreements.append({
                            "layer": label, "subject": user,
                            "object": obj, "permission": permission,
                            "actual": actual, "expected": expected})
    return disagreements


def verify_recovery(root: "Path | str", acked: list[tuple],
                    in_flight: "tuple | None",
                    scratch: "Path | str") -> dict:
    """Recover the crashed node at ``root`` and check the sweep's three
    properties against model replays built under ``scratch``."""
    scratch = Path(scratch)
    result: dict[str, Any] = {"matched": None, "acked_loss": False,
                              "oracle_disagreements": [], "failures": [],
                              "cold_caches": False, "replicas_converged": True}
    try:
        node = _recover_node(root)
    except (CorruptLogError, RecoveryError) as exc:
        result["failures"].append({"kind": "recovery_refused",
                                   "error": type(exc).__name__,
                                   "detail": str(exc)})
        result["acked_loss"] = True
        return result
    result["cold_caches"] = node.session._checker is None
    recovered = _canonical_state(node)
    model = _replay_model(scratch / "model-acked", acked)
    if recovered == _canonical_state(model):
        result["matched"] = "acked"
    elif in_flight is not None:
        alt = _replay_model(scratch / "model-inflight",
                            acked + [in_flight])
        if recovered == _canonical_state(alt):
            result["matched"] = "acked+inflight"
        alt.close()
    model.close()
    if result["matched"] is None:
        result["acked_loss"] = True
        result["failures"].append({
            "kind": "acked_loss",
            "detail": "recovered state matches neither the acknowledged "
                      "model nor acknowledged+in-flight",
            "acked_ops": len(acked), "in_flight": bool(in_flight)})
    for name in sorted(node.engine.applied_versions):
        if node.engine.replica_digest(name) != node.engine.expected_digest(name):
            result["replicas_converged"] = False
            result["failures"].append({"kind": "replica_divergence",
                                       "replica": name})
    disagreements = _oracle_probes(node)
    result["oracle_disagreements"] = disagreements
    if disagreements:
        result["failures"].append({"kind": "oracle_disagreement",
                                   "count": len(disagreements)})
    if not result["cold_caches"]:
        result["failures"].append({"kind": "warm_cache",
                                   "detail": "recovered session carried a "
                                             "compiled checker"})
    node.close()
    return result


# -- the sweep ---------------------------------------------------------------

def run_durability_sweep(seeds: int = 10, ops: int = 24,
                         base_dir: "Path | str | None" = None) -> dict:
    """Kill at every write site across ``seeds`` seeds and build the
    ``DURABILITY_6`` report."""
    sites: dict[str, dict[str, int]] = {}
    failures: list[dict] = []
    crash_runs = 0
    crashes = 0
    with tempfile.TemporaryDirectory(dir=base_dir) as tmp:
        base = Path(tmp)
        for seed in range(seeds):
            profiler = CrashPointInjector()
            _acked, _in_flight, crashed = run_workload(
                base / f"s{seed}-profile", seed, ops,
                crash=profiler.reached)
            assert not crashed, "profiling run must not crash"
            for site, visits in sorted(profiler.counts.items()):
                stats = sites.setdefault(site, {
                    "visits": 0, "runs": 0, "crashes": 0,
                    "acked_loss": 0, "oracle_disagreements": 0,
                    "matched_inflight": 0})
                stats["visits"] += visits
                plan = CrashPointPlan.seeded_hit(seed, site, visits)
                injector = CrashPointInjector(plan)
                root = base / f"s{seed}-{site}"
                acked, in_flight, crashed = run_workload(
                    root, seed, ops, crash=injector.reached)
                crash_runs += 1
                stats["runs"] += 1
                if crashed:
                    crashes += 1
                    stats["crashes"] += 1
                outcome = verify_recovery(
                    root, acked, in_flight if crashed else None,
                    base / f"s{seed}-{site}-models")
                if outcome["matched"] == "acked+inflight":
                    stats["matched_inflight"] += 1
                if outcome["acked_loss"]:
                    stats["acked_loss"] += 1
                stats["oracle_disagreements"] += \
                    len(outcome["oracle_disagreements"])
                for failure in outcome["failures"]:
                    failures.append({"seed": seed, "site": site,
                                     "hit": plan.points[0].hit, **failure})
    acked_loss_total = sum(s["acked_loss"] for s in sites.values())
    disagreement_total = sum(s["oracle_disagreements"]
                             for s in sites.values())
    return {
        "report": "DURABILITY_6",
        "description": "kill-at-every-write-site crash sweep: recovery "
                       "must lose no acknowledged update and re-mediate "
                       "byte-identically to the oracles",
        "seeds": seeds,
        "ops": ops,
        "write_sites": sorted(sites),
        "crash_runs": crash_runs,
        "crashes": crashes,
        "acked_loss_total": acked_loss_total,
        "oracle_disagreements_total": disagreement_total,
        "failures": failures,
        "ok": acked_loss_total == 0 and disagreement_total == 0
              and not failures,
        "sites": {site: stats for site, stats in sorted(sites.items())},
    }


# -- shrunk recovery-fixture replay ------------------------------------------

def replay_recovery_case(case: dict, base_dir: "Path | str | None" = None,
                         ) -> dict:
    """Replay one shrunk recovery fixture (``tests/store/cases/``).

    A fixture describes a byte-level on-disk scenario — WAL records plus an
    optional damaged tail, and snapshot documents (optionally raw/corrupt
    text) — and the expected recovery verdict.  Returns ``{"ok": bool,
    "observed": ..., "expected": ...}``.
    """
    expected = case.get("expect", {})
    observed: dict[str, Any] = {}
    with tempfile.TemporaryDirectory(dir=base_dir) as tmp:
        root = Path(tmp) / "store"
        root.mkdir()
        wal_spec = case.get("wal", {})
        data = encode_header(int(wal_spec.get("base_lsn", 0)))
        for payload in wal_spec.get("records", []):
            data += encode_record(payload)
        flips = wal_spec.get("flip_bytes", [])
        if flips:
            mutable = bytearray(data)
            for offset in flips:
                mutable[HEADER_SIZE + int(offset)] ^= 0xFF
            data = bytes(mutable)
        data += bytes.fromhex(wal_spec.get("tail_hex", ""))
        (root / "wal.log").write_bytes(data)
        snap_dir = root / "snapshots"
        for entry in case.get("snapshots", []):
            snap_dir.mkdir(exist_ok=True)
            name = f"snapshot-{int(entry['seq']):010d}.json"
            if "raw" in entry:
                (snap_dir / name).write_text(entry["raw"], encoding="utf-8")
            else:
                (snap_dir / name).write_text(json.dumps(entry["doc"]),
                                             encoding="utf-8")
        store = DurableStore(root)
        try:
            recovered = store.open()
        except (CorruptLogError, RecoveryError) as exc:
            observed = {"error": type(exc).__name__}
        else:
            observed = {
                "error": None,
                "records": len(recovered.tail),
                "truncated": recovered.truncated_bytes > 0,
                "snapshot_seq": recovered.snapshot_seq,
                "skipped_snapshots": recovered.skipped_snapshots,
                "state": recovered.state,
            }
        finally:
            store.close()
    trimmed = {key: observed.get(key) for key in expected}
    return {"name": case.get("name", "?"), "ok": trimmed == expected,
            "observed": observed, "expected": expected}

"""Durable, crash-recoverable storage for the policy plane (PR 6).

- :mod:`repro.store.wal` — checksummed, length-prefixed append-only log;
- :mod:`repro.store.snapshot` — periodic snapshots with atomic rename;
- :mod:`repro.store.recovery` — snapshot + tail-replay recovery path;
- :mod:`repro.store.durable` — the :class:`DurableStore` facade, component
  restore functions and the :class:`DurablePolicyNode` composition;
- :mod:`repro.store.harness` — the seeded kill-at-every-write-site sweep
  behind ``repro durability``.
"""

from repro.store.durable import DurablePolicyNode, DurableStore
from repro.store.recovery import RecoveredState, recover
from repro.store.snapshot import LoadedSnapshot, SnapshotStore
from repro.store.wal import ScanResult, WriteAheadLog, scan_records

__all__ = [
    "DurablePolicyNode", "DurableStore",
    "RecoveredState", "recover",
    "LoadedSnapshot", "SnapshotStore",
    "ScanResult", "WriteAheadLog", "scan_records",
]

"""Periodic snapshots with atomic rename.

A snapshot is the full policy-plane state (credentials, RBAC relations,
KeyCom install history, propagation log and version vectors, graph
checkpoints) serialised as canonical JSON together with the WAL position it
covers.  Snapshots bound recovery time — recovery loads the newest valid
snapshot and replays only the WAL tail past its ``wal_lsn`` — and let the
log be compacted.

Durability discipline:

- the snapshot is written to a ``.tmp`` file first and atomically
  ``os.replace``d into place, so a crash mid-write never damages an
  existing snapshot;
- the state body carries its own CRC, so a snapshot bit-flipped at rest is
  *skipped* (recovery falls back to the previous one) rather than loaded;
- the previous ``keep - 1`` snapshots are retained, and the WAL is only
  compacted up to the *oldest retained* snapshot, so falling back never
  strands recovery past the log's base.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.store.wal import CrashHook, _no_crash

FORMAT_VERSION = 1
_NAME = re.compile(r"^snapshot-(\d{10})\.json$")


def _canonical(state: dict[str, Any]) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class LoadedSnapshot:
    """One successfully loaded snapshot."""

    seq: int
    wal_lsn: int
    state: dict[str, Any]
    path: Path


class SnapshotStore:
    """Numbered snapshots in one directory (``snapshot-NNNNNNNNNN.json``).

    :param directory: where snapshots live (created on demand).
    :param crash: crash hook consulted at every write site.
    :param keep: how many snapshots to retain (>= 1).
    """

    def __init__(self, directory: "Path | str",
                 crash: CrashHook | None = None, keep: int = 2) -> None:
        self.directory = Path(directory)
        self.crash: CrashHook = crash or _no_crash
        self.keep = max(1, keep)
        #: snapshots skipped as unreadable/corrupt by the last load
        self.skipped = 0

    # -- enumeration ---------------------------------------------------------

    def _entries(self) -> list[tuple[int, Path]]:
        if not self.directory.is_dir():
            return []
        entries = []
        for path in self.directory.iterdir():
            match = _NAME.match(path.name)
            if match:
                entries.append((int(match.group(1)), path))
        return sorted(entries)

    def next_seq(self) -> int:
        entries = self._entries()
        return entries[-1][0] + 1 if entries else 1

    # -- writes --------------------------------------------------------------

    def save(self, state: dict[str, Any], wal_lsn: int) -> Path:
        """Write one snapshot atomically; returns its final path.

        The document embeds ``wal_lsn`` (the log position the state
        covers) and a CRC of the canonical state text, verified on load.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        seq = self.next_seq()
        final = self.directory / f"snapshot-{seq:010d}.json"
        tmp = final.with_suffix(".json.tmp")
        body = _canonical(state)
        document = json.dumps({
            "format": FORMAT_VERSION,
            "seq": seq,
            "wal_lsn": wal_lsn,
            "checksum": zlib.crc32(body.encode("utf-8")),
            "state": state,
        }, sort_keys=True)
        self.crash("snapshot.begin")
        with open(tmp, "w", encoding="utf-8") as handle:
            half = len(document) // 2
            handle.write(document[:half])
            handle.flush()
            self.crash("snapshot.tmp_partial")
            handle.write(document[half:])
            handle.flush()
            os.fsync(handle.fileno())
        self.crash("snapshot.tmp_written")
        os.replace(tmp, final)
        self.crash("snapshot.renamed")
        self._prune()
        return final

    def _prune(self) -> None:
        entries = self._entries()
        for _seq, path in entries[:-self.keep]:
            path.unlink(missing_ok=True)
        for path in self.directory.glob("*.json.tmp"):
            path.unlink(missing_ok=True)

    # -- reads ---------------------------------------------------------------

    def load_latest(self) -> LoadedSnapshot | None:
        """The newest snapshot that parses and passes its checksum.

        Unreadable or corrupt snapshots are skipped (counted in
        :attr:`skipped`) and the previous one is tried — a half-written or
        bit-flipped snapshot must degrade recovery, never block it.
        """
        self.skipped = 0
        for seq, path in reversed(self._entries()):
            loaded = self._load_one(seq, path)
            if loaded is not None:
                return loaded
            self.skipped += 1
        return None

    def retained_floor(self) -> int | None:
        """The smallest ``wal_lsn`` among *valid* retained snapshots — the
        compaction bound that keeps every fallback snapshot usable."""
        floors = []
        for seq, path in self._entries():
            loaded = self._load_one(seq, path)
            if loaded is not None:
                floors.append(loaded.wal_lsn)
        return min(floors) if floors else None

    @staticmethod
    def _load_one(seq: int, path: Path) -> LoadedSnapshot | None:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("format") != FORMAT_VERSION:
            return None
        state = document.get("state")
        wal_lsn = document.get("wal_lsn")
        if not isinstance(state, dict) or not isinstance(wal_lsn, int):
            return None
        if zlib.crc32(_canonical(state).encode("utf-8")) != \
                document.get("checksum"):
            return None
        return LoadedSnapshot(seq=seq, wal_lsn=wal_lsn, state=state,
                              path=path)

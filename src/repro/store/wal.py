"""Checksummed, length-prefixed append-only write-ahead log.

The durable substrate under the policy plane: every mutation of
authorisation state (credentials, RBAC facts, KeyCom installs, versioned
propagation updates, graph checkpoints) is appended here *before* it is
applied in memory, so a crashed node can replay its acknowledged history.

On-disk layout::

    file   := header record*
    header := magic(8) base_lsn(>Q) crc32(header[:16])(>I)      ; 20 bytes
    record := length(>I) crc32(payload)(>I) payload             ; 8 + n bytes

Payloads are canonical JSON objects (sorted keys, UTF-8).  The log sequence
number (LSN) of a record is ``base_lsn + its index``; ``base_lsn`` advances
when the log is compacted after a snapshot.

Recovery semantics (:func:`scan_records`):

- a **torn tail** — a trailing record whose header or body is incomplete,
  or whose checksum fails with nothing valid after it — is the normal
  residue of a crash mid-append and is cleanly truncated;
- a **corrupt mid-log record** — checksum or decode failure with at least
  one structurally valid record after it — means acknowledged history was
  damaged in place, and recovery raises a structured
  :class:`~repro.errors.CorruptLogError` instead of silently dropping it.

Crash points: every write site calls the injected hook (``wal.append.*``,
``wal.compact.*``) so the seeded sweep can kill the process between any two
bytes reaching the medium.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import CorruptLogError, StoreError

#: crash hook protocol: called with a site name; raises SimulatedCrashError
#: to kill the process there (the default hook does nothing)
CrashHook = Callable[[str], None]

MAGIC = b"REPROWAL"
HEADER_SIZE = 20
RECORD_HEADER = struct.Struct(">II")
#: sanity bound on a single record body (a corrupted length field almost
#: always lands far above this)
MAX_RECORD_SIZE = 1 << 26


def _no_crash(_site: str) -> None:
    return None


def encode_record(payload: dict[str, Any]) -> bytes:
    """One payload as its on-disk record bytes (header + canonical JSON)."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


def encode_header(base_lsn: int) -> bytes:
    """The 20-byte file header for a log whose first record is ``base_lsn``."""
    prefix = MAGIC + struct.pack(">Q", base_lsn)
    return prefix + struct.pack(">I", zlib.crc32(prefix))


def _record_at(data: bytes, offset: int) -> "tuple[dict, int] | None":
    """Decode the record starting at ``offset``; None if it is not a
    structurally valid record (short, oversized, bad checksum, bad JSON)."""
    if len(data) - offset < RECORD_HEADER.size:
        return None
    length, crc = RECORD_HEADER.unpack_from(data, offset)
    body_start = offset + RECORD_HEADER.size
    if length > MAX_RECORD_SIZE or len(data) - body_start < length:
        return None
    body = data[body_start:body_start + length]
    if zlib.crc32(body) != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload, body_start + length


def _valid_record_follows(data: bytes, offset: int) -> bool:
    """True if a structurally valid record starts exactly at ``offset`` —
    the discriminator between a torn tail and mid-log corruption."""
    return _record_at(data, offset) is not None


@dataclass
class ScanResult:
    """What one pass over a log's record area found."""

    records: list[dict] = field(default_factory=list)
    #: byte length (within the record area) of the clean prefix
    clean_length: int = 0
    #: bytes of torn/corrupt tail discarded by truncation
    truncated_bytes: int = 0


def scan_records(data: bytes, path: str = "",
                 area_offset: int = 0) -> ScanResult:
    """Decode a record area, truncating a torn tail.

    :param data: the record area bytes (after the file header).
    :param path: file name for error messages.
    :param area_offset: absolute offset of ``data[0]`` in the file, so
        :class:`~repro.errors.CorruptLogError` carries a file offset.
    :raises CorruptLogError: on a corrupt record that is provably mid-log
        (a valid record follows it).
    """
    result = ScanResult()
    offset = 0
    n = len(data)
    while offset < n:
        if n - offset < RECORD_HEADER.size:
            break  # torn header at the tail
        length, crc = RECORD_HEADER.unpack_from(data, offset)
        body_start = offset + RECORD_HEADER.size
        if length > MAX_RECORD_SIZE or n - body_start < length:
            break  # claimed body runs past EOF: torn tail
        body = data[body_start:body_start + length]
        end = body_start + length
        if zlib.crc32(body) != crc:
            if _valid_record_follows(data, end):
                raise CorruptLogError(
                    f"corrupt mid-log record at byte "
                    f"{area_offset + offset} of {path or 'log'}: "
                    f"checksum mismatch",
                    path=path, offset=area_offset + offset,
                    reason="checksum")
            break  # bit-flipped trailing record: truncate
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("record payload is not an object")
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError):
            if _valid_record_follows(data, end):
                raise CorruptLogError(
                    f"corrupt mid-log record at byte "
                    f"{area_offset + offset} of {path or 'log'}: "
                    f"undecodable payload",
                    path=path, offset=area_offset + offset,
                    reason="decode") from None
            break
        result.records.append(payload)
        offset = end
    result.clean_length = offset
    result.truncated_bytes = n - offset
    return result


class WriteAheadLog:
    """One append-only log file with crash-point instrumentation.

    :param path: the log file (created on first open).
    :param crash: crash hook consulted at every write site.
    :param sync: fsync after each append (off by default: the simulated
        crash model kills the process, not the kernel page cache).
    :ivar base_lsn: LSN of the first record in the file.
    :ivar truncated_bytes: torn-tail bytes discarded by the last open.
    """

    def __init__(self, path: "Path | str", crash: CrashHook | None = None,
                 sync: bool = False) -> None:
        self.path = Path(path)
        self.crash: CrashHook = crash or _no_crash
        self.sync = sync
        self.base_lsn = 0
        self.truncated_bytes = 0
        self._records: list[dict] = []
        self._file = None

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> "WriteAheadLog":
        """Open (and recover) the log: parse the header, scan the record
        area, truncate any torn tail, and position for appends.

        :raises CorruptLogError: on a damaged header followed by valid
            records, or a corrupt mid-log record.
        """
        stale_tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        if stale_tmp.exists():  # leftover of a crash mid-compaction
            stale_tmp.unlink()
        data = self.path.read_bytes() if self.path.exists() else b""
        if not data:
            self.base_lsn = 0
            self._records = []
            self.truncated_bytes = 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_bytes(encode_header(0))
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
            return self
        self.base_lsn, header_ok = self._parse_header(data)
        if not header_ok:
            if _valid_record_follows(data, HEADER_SIZE):
                raise CorruptLogError(
                    f"corrupt header of {self.path} with intact records "
                    f"after it", path=str(self.path), offset=0,
                    reason="header")
            # Torn header (crash during creation): restart empty.
            self.base_lsn = 0
            self._records = []
            self.truncated_bytes = len(data)
            self.path.write_bytes(encode_header(0))
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
            return self
        scan = scan_records(data[HEADER_SIZE:], path=str(self.path),
                            area_offset=HEADER_SIZE)
        self._records = scan.records
        self.truncated_bytes = scan.truncated_bytes
        clean_end = HEADER_SIZE + scan.clean_length
        self._file = open(self.path, "r+b")
        if scan.truncated_bytes:
            self._file.truncate(clean_end)
        self._file.seek(clean_end)
        return self

    @staticmethod
    def _parse_header(data: bytes) -> tuple[int, bool]:
        if len(data) < HEADER_SIZE:
            return 0, False
        if data[:8] != MAGIC:
            return 0, False
        (base_lsn,) = struct.unpack_from(">Q", data, 8)
        (crc,) = struct.unpack_from(">I", data, 16)
        if zlib.crc32(data[:16]) != crc:
            return 0, False
        return base_lsn, True

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self.open()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- reads ---------------------------------------------------------------

    def records(self) -> list[tuple[int, dict]]:
        """Every (lsn, payload) currently in the log, in append order."""
        return [(self.base_lsn + i, dict(r))
                for i, r in enumerate(self._records)]

    @property
    def next_lsn(self) -> int:
        """The LSN the next append will get."""
        return self.base_lsn + len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- writes --------------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> int:
        """Durably append one record; returns its LSN.

        The append is *acknowledged* only when this method returns: a crash
        at any internal write site leaves at worst a torn tail that
        recovery truncates, and the caller knows the update may be lost.
        """
        if self._file is None:
            raise StoreError(f"log {self.path} is not open")
        record = encode_record(payload)
        header, body = record[:RECORD_HEADER.size], record[RECORD_HEADER.size:]
        self.crash("wal.append.begin")
        self._file.write(header)
        self._file.flush()
        self.crash("wal.append.header")
        half = len(body) // 2
        self._file.write(body[:half])
        self._file.flush()
        self.crash("wal.append.body")
        self._file.write(body[half:])
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())
        self.crash("wal.append.synced")
        lsn = self.next_lsn
        self._records.append(dict(payload))
        return lsn

    def compact(self, up_to_lsn: int) -> int:
        """Drop records below ``up_to_lsn`` (they are covered by a
        snapshot) by atomically rewriting the file; returns how many
        records were dropped.

        A crash before the final rename leaves the original log intact; a
        crash after it leaves the compacted log — either is recoverable.
        """
        if self._file is None:
            raise StoreError(f"log {self.path} is not open")
        keep_from = max(0, up_to_lsn - self.base_lsn)
        if keep_from == 0:
            return 0
        kept = self._records[keep_from:]
        new_base = self.base_lsn + keep_from
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.crash("wal.compact.begin")
        with open(tmp, "wb") as handle:
            handle.write(encode_header(new_base))
            for payload in kept:
                handle.write(encode_record(payload))
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        self.crash("wal.compact.tmp")
        self._file.close()
        os.replace(tmp, self.path)
        self.crash("wal.compact.renamed")
        self.base_lsn = new_base
        self._records = kept
        self._file = open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)
        return keep_from

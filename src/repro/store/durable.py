"""The durable store facade and the component restore functions.

:class:`DurableStore` composes one :class:`~repro.store.wal.WriteAheadLog`
with one :class:`~repro.store.snapshot.SnapshotStore` under a single root
directory::

    root/
      wal.log
      snapshots/snapshot-NNNNNNNNNN.json

Components journal their mutations through :meth:`DurableStore.append`
*before* touching in-memory state (write-ahead discipline); recovery loads
the newest valid snapshot, replays the WAL tail past it, and the
``restore_*`` functions in this module turn those records back into live
components.  Caches (compiled checkers, decision caches, mediation caches)
are deliberately **not** persisted: a recovered node starts cold and must
re-derive every verdict from the recovered assertions and relations — the
durability sweep (:mod:`repro.store.harness`) asserts those verdicts are
byte-identical to the pre-crash oracle's.

Record vocabulary (the ``kind`` field of every WAL payload):

========================  ====================================================
``keynote.policy``        session POLICY assertion added (``text``)
``keynote.credential``    signed credential added (``text``, ``expires_at``)
``keynote.revoke``        credential revoked / expired (``text``)
``rbac.grant`` etc.       standalone-policy relation deltas (via
                          :attr:`RBACPolicy.journal`)
``keycom.apply``          authorised KeyCom install (``user``, ``domain``,
                          ``role``, ``request_id``)
``propagate.update``      versioned global-policy update (``version``,
                          ``delta``, ``update_id``)
``propagate.applied``     per-backend version-vector advance (``system``,
                          ``version``)
``checkpoint.mark``       graph-node completion (``graph``, ``node_id``,
                          ``result``)
========================  ====================================================
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.crypto.keystore import Keystore
from repro.errors import RecoveryError
from repro.keynote.api import KeyNoteSession
from repro.keynote.credential import Credential
from repro.middleware.base import Middleware
from repro.rbac.diff import PolicyDelta, delta_from_dict, delta_to_dict
from repro.rbac.model import Assignment
from repro.rbac.policy import RBACPolicy
from repro.rbac.serialize import policy_from_dict, policy_to_dict
from repro.store.recovery import RecoveredState, recover
from repro.store.snapshot import SnapshotStore
from repro.store.wal import CrashHook, WriteAheadLog
from repro.translate.propagate import PropagationEngine, VersionedUpdate
from repro.util.clock import SimulatedClock
from repro.webcom.failover import GraphCheckpoint
from repro.webcom.keycom import KeyComService


class DurableStore:
    """One node's durability root: a WAL plus its snapshot directory.

    :param root: directory holding ``wal.log`` and ``snapshots/``.
    :param crash: crash hook threaded into every write site (the seeded
        sweep's :class:`~repro.webcom.faults.CrashPointInjector.reached`).
    :param keep: snapshots retained (the WAL is compacted only to the
        oldest retained snapshot's position).
    """

    def __init__(self, root: "Path | str", crash: CrashHook | None = None,
                 keep: int = 2, sync: bool = False) -> None:
        self.root = Path(root)
        self.wal = WriteAheadLog(self.root / "wal.log", crash=crash,
                                 sync=sync)
        self.snapshots = SnapshotStore(self.root / "snapshots", crash=crash,
                                       keep=keep)

    def open(self) -> RecoveredState:
        """Open (recovering) the log and assemble the recovered state.

        :raises CorruptLogError: for corrupt mid-log records.
        :raises RecoveryError: when the log was compacted past every
            usable snapshot.
        """
        self.wal.open()
        return recover(self.wal, self.snapshots)

    def close(self) -> None:
        self.wal.close()

    def append(self, kind: str, **payload: Any) -> int:
        """Journal one mutation record; returns its LSN.

        The record is acknowledged (and the caller may mutate memory) only
        once this returns.
        """
        return self.wal.append({"kind": kind, **payload})

    def snapshot(self, state: dict[str, Any]) -> Path:
        """Write a snapshot of ``state`` at the current WAL position, then
        compact the log up to the oldest snapshot still retained."""
        path = self.snapshots.save(state, self.wal.next_lsn)
        floor = self.snapshots.retained_floor()
        if floor is not None and floor > self.wal.base_lsn:
            self.wal.compact(floor)
        return path


def _tail(recovered: RecoveredState, kinds: Iterable[str]) -> list[dict]:
    wanted = set(kinds)
    return [r for r in recovered.tail if r.get("kind") in wanted]


# -- component restores ------------------------------------------------------
#
# Each restore builds its component *unjournalled* (store detached), replays
# the snapshot state then the WAL tail, and only then binds the store — so
# replay never re-appends the records it is reading.

def session_state(session: KeyNoteSession) -> dict[str, Any]:
    """The snapshot form of a session's assertion sets."""
    expiring = session.expiring()
    return {
        "policies": [p.to_text() for p in session.policies],
        "credentials": [[c.to_text(),
                         expiring.get(c)] for c in session.credentials],
    }


def restore_session(recovered: RecoveredState,
                    store: DurableStore | None = None,
                    **session_kwargs: Any) -> KeyNoteSession:
    """Rebuild a :class:`KeyNoteSession` from snapshot + tail.

    ``session_kwargs`` pass through to the session constructor (keystore,
    clock, values...).  The compiled compliance checker and its decision
    cache are *not* restored — the first post-recovery query rebuilds them
    from the recovered assertions.
    """
    session = KeyNoteSession(**session_kwargs)
    state = recovered.state.get("session", {})
    for text in state.get("policies", []):
        session.add_policy(text)
    for text, expires_at in state.get("credentials", []):
        session.add_credential(text, expires_at=expires_at)
    for record in _tail(recovered, ("keynote.policy", "keynote.credential",
                                    "keynote.revoke")):
        kind = record["kind"]
        if kind == "keynote.policy":
            session.add_policy(record["text"])
        elif kind == "keynote.credential":
            session.add_credential(record["text"],
                                   expires_at=record.get("expires_at"))
        else:
            session.revoke_credential(Credential.from_text(record["text"]))
    session.store = store
    return session


def restore_policy(recovered: RecoveredState, name: str = "policy",
                   journal: Any = None) -> RBACPolicy:
    """Rebuild a standalone :class:`RBACPolicy` journalled via
    :attr:`RBACPolicy.journal` (``rbac.*`` records)."""
    state = recovered.state.get("policy")
    policy = (policy_from_dict(state) if state is not None
              else RBACPolicy(name))
    for record in _tail(recovered, ("rbac.grant", "rbac.revoke_grant",
                                    "rbac.assign", "rbac.unassign",
                                    "rbac.revoke_user")):
        kind = record["kind"]
        if kind == "rbac.grant":
            policy.grant(record["domain"], record["role"],
                         record["object_type"], record["permission"])
        elif kind == "rbac.revoke_grant":
            policy.revoke_grant(record["domain"], record["role"],
                                record["object_type"], record["permission"])
        elif kind == "rbac.assign":
            policy.assign(record["user"], record["domain"], record["role"])
        elif kind == "rbac.unassign":
            policy.unassign(record["user"], record["domain"], record["role"])
        else:
            policy.revoke_user(record["user"])
    policy.journal = journal
    return policy


def keycom_state(service: KeyComService) -> dict[str, Any]:
    """The snapshot form of a KeyCom service's install history."""
    return {
        "applied_ids": sorted(service.applied_ids),
        "assignments": [[a.user, a.domain, a.role] for a in
                        sorted(service.middleware.extract_rbac()
                               .assignments)],
    }


def restore_keycom(recovered: RecoveredState, middleware: Middleware,
                   session: KeyNoteSession,
                   store: DurableStore | None = None,
                   **service_kwargs: Any) -> KeyComService:
    """Rebuild a :class:`KeyComService` and its administered middleware.

    The snapshot holds the installed assignments and the applied request
    ids; ``keycom.apply`` tail records replay on top, deduplicated by
    request id — a record whose id the service already applied (from the
    snapshot or an earlier record, e.g. a torn retry double-appended by a
    crashing client) is skipped, so replay is idempotent.
    """
    service = KeyComService(middleware, session, **service_kwargs)
    state = recovered.state.get("keycom", {})
    service.applied_ids = set(state.get("applied_ids", []))
    for user, domain, role in state.get("assignments", []):
        middleware.apply_assignment(Assignment(user, domain, role))
    for record in _tail(recovered, ("keycom.apply",)):
        request_id = record.get("request_id", "")
        if request_id and request_id in service.applied_ids:
            service.duplicates += 1
            continue
        middleware.apply_assignment(Assignment(
            record["user"], record["domain"], record["role"]))
        if request_id:
            service.applied_ids.add(request_id)
    service.store = store
    return service


def engine_state(engine: PropagationEngine) -> dict[str, Any]:
    """The snapshot form of the propagation plane: global policy, versioned
    update log and per-backend applied-version vector."""
    return {
        "global": policy_to_dict(engine.global_policy),
        "version": engine._version,
        "updates": [{"version": u.version,
                     "delta": delta_to_dict(u.delta),
                     "update_id": u.update_id} for u in engine.update_log],
        "applied_versions": dict(sorted(engine.applied_versions.items())),
    }


def restore_engine(recovered: RecoveredState,
                   store: DurableStore | None = None,
                   **engine_kwargs: Any) -> PropagationEngine:
    """Rebuild a :class:`PropagationEngine` from snapshot + tail.

    Each ``propagate.update`` tail record is replayed into the update log
    *and* the global policy (it was journalled before either mutated);
    ``propagate.applied`` records re-advance the version vectors, so
    :meth:`~repro.translate.propagate.PropagationEngine.reconcile`
    still knows exactly what every backend missed.  Replicas themselves are
    rebuilt by registering fresh middleware and running ``reconcile()``
    (its diff-repair pass converges them from any vector position).
    """
    state = recovered.state.get("engine", {})
    global_state = state.get("global")
    global_policy = (policy_from_dict(global_state)
                     if global_state is not None else RBACPolicy("global"))
    engine = PropagationEngine(global_policy, **engine_kwargs)
    engine._version = int(state.get("version", 0))
    for entry in state.get("updates", []):
        engine.update_log.append(VersionedUpdate(
            int(entry["version"]), delta_from_dict(entry["delta"]),
            entry.get("update_id", "")))
    vectors = {str(name): int(version) for name, version
               in state.get("applied_versions", {}).items()}
    for record in _tail(recovered, ("propagate.update",
                                    "propagate.applied")):
        if record["kind"] == "propagate.update":
            version = int(record["version"])
            if version <= engine._version:
                continue  # duplicate append from a torn retry
            delta = delta_from_dict(record["delta"])
            delta.apply_to(engine.global_policy)
            engine.update_log.append(VersionedUpdate(
                version, delta, record.get("update_id", "")))
            engine._version = version
        else:
            name = record["system"]
            vectors[name] = max(vectors.get(name, 0),
                                int(record["version"]))
    engine.applied_versions.update(vectors)
    engine.store = store
    return engine


def checkpoint_state(checkpoints: Iterable[GraphCheckpoint]
                     ) -> dict[str, Any]:
    """The snapshot form of a set of graph checkpoints (by graph name)."""
    return {cp.graph_name: cp.to_dict() for cp in checkpoints}


def restore_checkpoint(recovered: RecoveredState, graph_name: str,
                       store: DurableStore | None = None) -> GraphCheckpoint:
    """Rebuild one graph's :class:`GraphCheckpoint` from snapshot + tail.

    A standby master resuming a crashed master's graph reads exactly the
    frontier the crashed master acknowledged.
    """
    state = recovered.state.get("checkpoints", {}).get(graph_name)
    checkpoint = (GraphCheckpoint.from_dict(state) if state is not None
                  else GraphCheckpoint(graph_name))
    for record in _tail(recovered, ("checkpoint.mark",)):
        if record.get("graph") == graph_name:
            checkpoint.completed[record["node_id"]] = record.get("result")
    checkpoint.store = store
    return checkpoint


# -- full-node composition ---------------------------------------------------

class DurablePolicyNode:
    """One policy-plane node whose entire authorisation state is durable.

    Composes a trust-management session, a standalone local RBAC policy, a
    propagation engine with middleware replicas, a KeyCom administration
    service with its own middleware, and graph checkpoints — all journalling
    through one :class:`DurableStore`.  Construct via :meth:`recover`; call
    :meth:`snapshot` at checkpoints; after a crash, :meth:`recover` on the
    same root reassembles the acknowledged state with every cache cold.

    :param replicas: fresh ``(middleware, domains)`` pairs to register with
        the engine — recovery converges each to its authoritative slice via
        ``reconcile()``.
    :param keycom_middleware: a fresh middleware administered by KeyCom,
        kept *out* of the engine so reconciliation never undoes
        decentralised installs.
    """

    def __init__(self, store: DurableStore, session: KeyNoteSession,
                 local_policy: RBACPolicy, engine: PropagationEngine,
                 keycom: KeyComService | None,
                 checkpoints: dict[str, GraphCheckpoint],
                 recovered: RecoveredState) -> None:
        self.store = store
        self.session = session
        self.local_policy = local_policy
        self.engine = engine
        self.keycom = keycom
        self.checkpoints = checkpoints
        self.recovered = recovered

    @classmethod
    def recover(cls, root: "Path | str",
                crash: CrashHook | None = None,
                keystore: Keystore | None = None,
                clock: SimulatedClock | None = None,
                replicas: Sequence[tuple[Middleware, set[str]]] = (),
                keycom_middleware: Middleware | None = None,
                graph_names: Sequence[str] = (),
                verify_signatures: bool = True,
                keep: int = 2) -> "DurablePolicyNode":
        """Open (or create) the store at ``root`` and rebuild the node.

        :raises CorruptLogError: damaged acknowledged history.
        :raises RecoveryError: log compacted past every usable snapshot.
        """
        store = DurableStore(root, crash=crash, keep=keep)
        recovered = store.open()
        clock = clock or SimulatedClock()
        session = restore_session(
            recovered, store=store, keystore=keystore, clock=clock,
            verify_signatures=verify_signatures)
        local_policy = restore_policy(recovered, name="local",
                                      journal=None)
        local_policy.journal = store.append
        engine = restore_engine(recovered, store=store, clock=clock)
        for middleware, domains in replicas:
            engine.register(middleware, set(domains))
        if replicas:
            engine.reconcile()
        keycom = None
        if keycom_middleware is not None:
            keycom = restore_keycom(recovered, keycom_middleware, session,
                                    store=store)
        checkpoints = {name: restore_checkpoint(recovered, name, store=store)
                       for name in graph_names}
        return cls(store, session, local_policy, engine, keycom,
                   checkpoints, recovered)

    def state(self) -> dict[str, Any]:
        """The full snapshot state of every composed component."""
        state: dict[str, Any] = {
            "session": session_state(self.session),
            "policy": policy_to_dict(self.local_policy),
            "engine": engine_state(self.engine),
            "checkpoints": checkpoint_state(self.checkpoints.values()),
        }
        if self.keycom is not None:
            state["keycom"] = keycom_state(self.keycom)
        return state

    def snapshot(self) -> Path:
        """Snapshot the whole node and compact the WAL behind it."""
        return self.store.snapshot(self.state())

    def close(self) -> None:
        self.store.close()


__all__ = [
    "DurableStore", "DurablePolicyNode", "RecoveryError",
    "session_state", "restore_session",
    "restore_policy",
    "keycom_state", "restore_keycom",
    "engine_state", "restore_engine",
    "checkpoint_state", "restore_checkpoint",
]

"""Exception hierarchy for the heterogeneous middleware security framework.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch framework failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all framework errors."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignatureError(CryptoError):
    """A signature failed verification."""


class KeyFormatError(CryptoError):
    """A key string could not be decoded."""


class UnknownKeyError(CryptoError):
    """A key identifier was not found in the keystore."""


# ---------------------------------------------------------------------------
# RBAC
# ---------------------------------------------------------------------------


class RBACError(ReproError):
    """Base class for RBAC policy errors."""


class UnknownRoleError(RBACError):
    """Referenced a (domain, role) pair that is not in the policy."""


class ConstraintViolationError(RBACError):
    """An operation would violate a separation-of-duty constraint."""


class SessionError(RBACError):
    """Illegal session operation (e.g. activating an unassigned role)."""


class HierarchyError(RBACError):
    """Illegal role-hierarchy operation (e.g. introducing a cycle)."""


# ---------------------------------------------------------------------------
# KeyNote / trust management
# ---------------------------------------------------------------------------


class KeyNoteError(ReproError):
    """Base class for KeyNote errors."""


class KeyNoteSyntaxError(KeyNoteError):
    """A credential or expression failed to parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class KeyNoteEvalError(KeyNoteError):
    """A condition expression could not be evaluated."""


class CredentialError(KeyNoteError):
    """A credential is structurally invalid (missing fields, bad signature)."""


class ComplianceError(KeyNoteError):
    """The compliance checker was invoked with an inconsistent query."""


# ---------------------------------------------------------------------------
# SPKI/SDSI
# ---------------------------------------------------------------------------


class SPKIError(ReproError):
    """Base class for SPKI/SDSI errors."""


class SExpressionError(SPKIError):
    """An S-expression failed to parse or print."""


class TagError(SPKIError):
    """A tag is malformed or an intersection is undefined."""


class ChainError(SPKIError):
    """Certificate chain discovery or reduction failed."""


# ---------------------------------------------------------------------------
# OS security
# ---------------------------------------------------------------------------


class OSSecurityError(ReproError):
    """Base class for simulated OS security errors."""


class UnknownPrincipalError(OSSecurityError):
    """A user, group or SID is not registered with the OS."""


# ---------------------------------------------------------------------------
# Middleware
# ---------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """Base class for middleware simulator errors."""


class UnknownComponentError(MiddlewareError):
    """A component/bean/object reference does not exist."""


class DeploymentError(MiddlewareError):
    """A deployment descriptor or catalogue entry is invalid."""


class AccessDeniedError(MiddlewareError):
    """An invocation was denied by the middleware security policy."""


# ---------------------------------------------------------------------------
# Translation
# ---------------------------------------------------------------------------


class TranslationError(ReproError):
    """Base class for policy translation errors."""


class ComprehensionError(TranslationError):
    """A KeyNote policy could not be comprehended into RBAC relations."""


class MigrationError(TranslationError):
    """A policy could not be migrated to the target middleware."""


class InconsistentPolicyError(TranslationError):
    """Cross-system policy consistency check failed."""


# ---------------------------------------------------------------------------
# WebCom
# ---------------------------------------------------------------------------


class WebComError(ReproError):
    """Base class for WebCom errors."""


class GraphError(WebComError):
    """A condensed graph is malformed (dangling ports, bad arity)."""


class SchedulingError(WebComError):
    """The scheduler could not place an operation."""


class AuthorisationError(WebComError):
    """A scheduling or execution request was refused by security mediation."""


class NetworkError(WebComError):
    """Simulated network failure (partition, dropped peer)."""


class FaultPlanError(WebComError):
    """A fault-injection plan is malformed (bad probability, inverted
    crash window)."""


class LayerTimeoutError(WebComError):
    """A mediation layer's backend timed out or is unreachable."""


class KeyComError(WebComError):
    """The KeyCOM administration service rejected an update request."""


# ---------------------------------------------------------------------------
# Durable store
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for durability-subsystem errors."""


class CorruptLogError(StoreError):
    """A write-ahead log record in the *middle* of the log failed its
    checksum or could not be decoded.

    Torn or bit-flipped **trailing** records are expected after a crash and
    are cleanly truncated by recovery; a corrupt record with valid records
    *after* it means the medium (not a crash) damaged acknowledged history,
    which recovery must refuse to paper over.

    :ivar path: the log file.
    :ivar offset: byte offset of the bad record.
    :ivar reason: what failed (``"checksum"``, ``"decode"``, ``"header"``).
    """

    def __init__(self, message: str, path: str = "", offset: int = -1,
                 reason: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset
        self.reason = reason


class RecoveryError(StoreError):
    """Recovery could not reassemble a consistent state (e.g. every
    snapshot is unreadable and the log was compacted past the tail)."""


class SimulatedCrashError(StoreError):
    """A seeded crash point fired: the simulated process dies here.

    Raised by :class:`~repro.webcom.faults.CrashPointInjector` at a store
    write site; the durability harness treats it as the process being
    killed, restarts from disk, and verifies recovery.

    :ivar site: the write site that fired.
    :ivar hit: which visit of the site fired.
    """

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"simulated crash at {site} (hit {hit})")
        self.site = site
        self.hit = hit


# ---------------------------------------------------------------------------
# Service plane
# ---------------------------------------------------------------------------

class ServeError(ReproError):
    """Base class for service-plane (``repro serve``) errors."""


class ProtocolError(ServeError):
    """A wire message violated the newline-delimited-JSON protocol."""


class AlreadyRunningError(ServeError):
    """A live server already owns the PID file (machine-wide singleton)."""

    def __init__(self, pid: int, path: str) -> None:
        super().__init__(f"server already running (pid {pid}, {path})")
        self.pid = pid
        self.path = path


class OverloadedError(ServeError):
    """Admission control shed the request (in-flight budget exhausted or
    brownout shedding).  A shed authorisation request is a *refusal*, never
    an allow and never a silent drop; the response carries a
    ``retry_after`` hint."""


class RateLimitedError(ServeError):
    """The per-peer token bucket refused the request; the response carries
    a ``retry_after`` hint (seconds until the next token exists)."""


class DeadlineExceededError(ServeError):
    """The request's propagated absolute deadline expired — before
    dispatch (the work was never run) or before response write (the work
    ran, its recorded reply is replayable under the same request id)."""

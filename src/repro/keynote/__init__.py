"""KeyNote trust management (RFC 2704 reimplementation).

The paper (Section 3) uses KeyNote as its trust-management layer: credentials
bind *abilities* to public keys, and a compliance checker decides whether a
set of credentials authorises a request.  This package reimplements the
KeyNote engine the original system linked against:

- the credential notation (``Authorizer`` / ``Licensees`` / ``Conditions`` /
  ``Local-Constants`` / ``Comment`` / ``Signature`` fields),
- the C-like condition expression language (string, numeric and regex tests,
  ``&&``/``||``/``!``, ``->`` clause values),
- licensee expressions including ``k-of(...)`` thresholds,
- ordered compliance-value sets (beyond the default ``{false, true}``),
- signature creation/verification over canonical credential bytes, and
- the delegation-graph compliance checker.

Quickstart (the paper's Example 1)::

    from repro.crypto import Keystore
    from repro.keynote import Credential, KeyNoteSession

    ks = Keystore()
    ks.create("Kbob")
    session = KeyNoteSession(keystore=ks)
    session.add_policy('''
        Authorizer: POLICY
        Licensees: "Kbob"
        Conditions: app_domain=="SalariesDB" &&
                    (oper=="read" || oper=="write");
    ''')
    assert session.query({"app_domain": "SalariesDB", "oper": "read"},
                         authorizers=["Kbob"])
"""

from repro.keynote.api import KeyNoteSession, QueryResult
from repro.keynote.compliance import (
    ComplianceChecker,
    ComplianceStats,
    evaluate_query,
)
from repro.keynote.credential import POLICY_PRINCIPAL, Credential
from repro.keynote.parser import parse_credential, parse_credentials
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet

__all__ = [
    "ComplianceChecker",
    "ComplianceStats",
    "ComplianceValueSet",
    "Credential",
    "DEFAULT_VALUE_SET",
    "KeyNoteSession",
    "POLICY_PRINCIPAL",
    "QueryResult",
    "evaluate_query",
    "parse_credential",
    "parse_credentials",
]

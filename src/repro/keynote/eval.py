"""Evaluator for KeyNote condition expressions.

Semantics follow RFC 2704:

- Action attributes are strings; referencing an absent attribute yields the
  empty string.
- Comparisons are numeric when *both* operands are numeric (literals or
  strings that parse as numbers), otherwise lexicographic string comparisons.
- ``~=`` matches the left operand against a regular expression.
- Arithmetic on a non-numeric operand makes the enclosing *test* evaluate to
  false rather than aborting the whole query (RFC 2704 section 5: "a test
  with an invalid operand fails").
- A Conditions program evaluates to a compliance value: the join of the
  values of all clauses whose tests hold (``_MIN_TRUST`` when none do).

Two evaluation strategies share these semantics: the tree-walking
:class:`ConditionEvaluator` (one AST dispatch per node per query) and
:func:`compile_conditions`, which lowers a program once into a tree of
Python closures — literal regexes are precompiled, constants are bound —
so the hot authorisation path pays no ``isinstance`` dispatch per query.
:class:`ComplianceChecker <repro.keynote.compliance.ComplianceChecker>`
compiles every assertion's conditions at construction time.
"""

from __future__ import annotations

import re
from typing import Callable, Mapping, Union

from repro.errors import KeyNoteEvalError
from repro.keynote.ast import (
    Attribute,
    Binary,
    Clause,
    ConditionsProgram,
    Deref,
    Expr,
    NumberLit,
    StringLit,
    Unary,
)
from repro.keynote.values import ComplianceValueSet

Value = Union[str, float]


class _SoftFailure(Exception):
    """Raised when a test's operand is invalid; the test becomes false."""


def _as_number(value: Value) -> float:
    """Coerce to float or raise :class:`_SoftFailure`."""
    if isinstance(value, float):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        raise _SoftFailure(f"non-numeric operand {value!r}") from None


def _as_string(value: Value) -> str:
    """Render a value as the string KeyNote would see."""
    if isinstance(value, float):
        # Integral floats print without a trailing .0, matching KeyNote's
        # integer/float duality.
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return value


def _is_numeric(value: Value) -> bool:
    if isinstance(value, float):
        return True
    try:
        float(value)
        return True
    except (TypeError, ValueError):
        return False


_BOOL_OPS = {"&&", "||"}
_COMPARE_OPS = {"==", "!=", "<", ">", "<=", ">="}
_ARITH_OPS = {"+", "-", "*", "/", "%", "^"}


class ConditionEvaluator:
    """Evaluates expressions and Conditions programs against an action
    attribute set."""

    def __init__(self, attributes: Mapping[str, str],
                 values: ComplianceValueSet) -> None:
        self._attributes = attributes
        self._values = values

    # -- public entry points -------------------------------------------------

    def program_value(self, program: ConditionsProgram) -> str:
        """Compliance value of a full Conditions field."""
        result = self._values.minimum
        for clause in program.clauses:
            clause_value = self._clause_value(clause)
            result = self._values.join([result, clause_value])
        return result

    def test(self, expr: Expr) -> bool:
        """Evaluate ``expr`` as a boolean test (soft failures are False)."""
        try:
            return self._truth(expr)
        except _SoftFailure:
            return False

    # -- clauses ---------------------------------------------------------------

    def _clause_value(self, clause: Clause) -> str:
        if not self.test(clause.test):
            return self._values.minimum
        if clause.value is None:
            return self._values.maximum
        if isinstance(clause.value, ConditionsProgram):
            return self.program_value(clause.value)
        return self._values.resolve(clause.value)

    # -- expression evaluation ---------------------------------------------------

    def _truth(self, expr: Expr) -> bool:
        """Boolean interpretation used inside &&, ||, !."""
        if isinstance(expr, Binary) and expr.op in _BOOL_OPS:
            if expr.op == "&&":
                # Short-circuit; soft failure in either side fails the test.
                return self._truth(expr.left) and self._truth(expr.right)
            left = self._protected_truth(expr.left)
            return left or self._truth(expr.right)
        if isinstance(expr, Unary) and expr.op == "!":
            return not self._truth(expr.operand)
        if isinstance(expr, Binary) and expr.op in _COMPARE_OPS | {"~="}:
            return self._compare(expr)
        # A bare value is true iff it is the string "true" or a nonzero
        # number — mirrors KeyNote's treatment of bare tests.
        value = self._value(expr)
        if _is_numeric(value):
            return _as_number(value) != 0.0
        return value == "true"

    def _protected_truth(self, expr: Expr) -> bool:
        """Truth where a soft failure means False (for || short-circuit)."""
        try:
            return self._truth(expr)
        except _SoftFailure:
            return False

    def _compare(self, expr: Binary) -> bool:
        if expr.op == "~=":
            subject = _as_string(self._value(expr.left))
            pattern = _as_string(self._value(expr.right))
            try:
                return re.search(pattern, subject) is not None
            except re.error as exc:
                raise KeyNoteEvalError(f"bad regular expression {pattern!r}: {exc}")
        left = self._value(expr.left)
        right = self._value(expr.right)
        left_numeric, right_numeric = _is_numeric(left), _is_numeric(right)
        if left_numeric and right_numeric:
            return _NUMERIC_COMPARISONS[expr.op](_as_number(left),
                                                 _as_number(right))
        if left_numeric != right_numeric:
            # Mixed numeric/non-numeric context: the test fails (RFC 2704's
            # invalid-operand rule), except that (in)equality against a
            # non-numeric string is still a meaningful string test.
            if expr.op == "==":
                return False
            if expr.op == "!=":
                return True
            raise _SoftFailure(
                f"ordered comparison between {left!r} and {right!r}")
        lstr, rstr = _as_string(left), _as_string(right)
        return _STRING_COMPARISONS[expr.op](lstr, rstr)

    def _value(self, expr: Expr) -> Value:
        if isinstance(expr, StringLit):
            return expr.value
        if isinstance(expr, NumberLit):
            return float(expr.literal)
        if isinstance(expr, Attribute):
            return self._attributes.get(expr.name, "")
        if isinstance(expr, Deref):
            name = _as_string(self._value(expr.inner))
            return self._attributes.get(name, "")
        if isinstance(expr, Unary):
            if expr.op == "-":
                return -_as_number(self._value(expr.operand))
            if expr.op == "!":
                return "true" if not self._truth(expr.operand) else "false"
            raise KeyNoteEvalError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            if expr.op == ".":
                return (_as_string(self._value(expr.left))
                        + _as_string(self._value(expr.right)))
            if expr.op in _ARITH_OPS:
                left = _as_number(self._value(expr.left))
                right = _as_number(self._value(expr.right))
                return self._arith(expr.op, left, right)
            if expr.op in _COMPARE_OPS | {"~="} | _BOOL_OPS:
                return "true" if self._truth(expr) else "false"
            raise KeyNoteEvalError(f"unknown operator {expr.op!r}")
        raise KeyNoteEvalError(f"cannot evaluate {expr!r}")

    @staticmethod
    def _arith(op: str, left: float, right: float) -> float:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise _SoftFailure("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise _SoftFailure("modulo by zero")
            return left % right
        if op == "^":
            try:
                return float(left ** right)
            except (OverflowError, ZeroDivisionError) as exc:
                raise _SoftFailure(str(exc)) from None
        raise KeyNoteEvalError(f"unknown arithmetic operator {op!r}")


_NUMERIC_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_STRING_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


# -- compiled conditions ------------------------------------------------------

#: a compiled expression: action attributes -> value (may raise _SoftFailure)
_ValueFn = Callable[[Mapping[str, str]], Value]
#: a compiled boolean test: soft failures are already absorbed into False
_TestFn = Callable[[Mapping[str, str]], bool]


class CompiledConditions:
    """A Conditions program lowered to closures, evaluated many times.

    Built once (per assertion, at checker construction) and then invoked
    per query with just the action attribute set and the value set —
    exactly :meth:`ConditionEvaluator.program_value`, without re-walking
    the AST.  :meth:`referenced_attributes` reports which action
    attributes can influence the program's value (``None`` when a ``$``
    dereference makes the set dynamic), which is what lets the decision
    cache ignore irrelevant attributes such as an unused ``_cur_time``.
    """

    __slots__ = ("program", "_clauses", "_referenced")

    def __init__(self, program: ConditionsProgram) -> None:
        self.program = program
        self._clauses = tuple(_compile_clause(c) for c in program.clauses)
        names: set[str] = set()
        dynamic = _collect_program_attributes(program, names)
        self._referenced: "frozenset[str] | None" = (
            None if dynamic else frozenset(names))

    def value(self, attributes: Mapping[str, str],
              values: ComplianceValueSet) -> str:
        """Compliance value of the program for one attribute set."""
        result = values.minimum
        for clause in self._clauses:
            result = values.join([result, clause(attributes, values)])
        return result

    def referenced_attributes(self) -> "frozenset[str] | None":
        """Attributes the program reads, or None when ``$`` makes the set
        depend on runtime values."""
        return self._referenced


def compile_conditions(program: ConditionsProgram) -> CompiledConditions:
    """Lower a Conditions program into a :class:`CompiledConditions`."""
    return CompiledConditions(program)


def _compile_clause(clause: Clause):
    test = _compile_test(clause.test)
    if clause.value is None:
        def run_max(attrs: Mapping[str, str],
                    values: ComplianceValueSet) -> str:
            return values.maximum if test(attrs) else values.minimum
        return run_max
    if isinstance(clause.value, ConditionsProgram):
        nested = tuple(_compile_clause(c) for c in clause.value.clauses)

        def run_nested(attrs: Mapping[str, str],
                       values: ComplianceValueSet) -> str:
            if not test(attrs):
                return values.minimum
            result = values.minimum
            for fn in nested:
                result = values.join([result, fn(attrs, values)])
            return result
        return run_nested
    name = clause.value

    def run_named(attrs: Mapping[str, str],
                  values: ComplianceValueSet) -> str:
        return values.resolve(name) if test(attrs) else values.minimum
    return run_named


def _compile_test(expr: Expr) -> _TestFn:
    truth = _compile_truth(expr)

    def test(attrs: Mapping[str, str]) -> bool:
        try:
            return truth(attrs)
        except _SoftFailure:
            return False
    return test


def _compile_truth(expr: Expr) -> _TestFn:
    """Boolean interpretation; raises :class:`_SoftFailure` like
    :meth:`ConditionEvaluator._truth`."""
    if isinstance(expr, Binary) and expr.op in _BOOL_OPS:
        left = _compile_truth(expr.left)
        right = _compile_truth(expr.right)
        if expr.op == "&&":
            return lambda attrs: left(attrs) and right(attrs)

        def or_(attrs: Mapping[str, str]) -> bool:
            try:
                if left(attrs):
                    return True
            except _SoftFailure:
                pass
            return right(attrs)
        return or_
    if isinstance(expr, Unary) and expr.op == "!":
        inner = _compile_truth(expr.operand)
        return lambda attrs: not inner(attrs)
    if isinstance(expr, Binary) and expr.op in _COMPARE_OPS | {"~="}:
        return _compile_compare(expr)
    value = _compile_value(expr)

    def bare(attrs: Mapping[str, str]) -> bool:
        v = value(attrs)
        if _is_numeric(v):
            return _as_number(v) != 0.0
        return v == "true"
    return bare


def _compile_compare(expr: Binary) -> _TestFn:
    left = _compile_value(expr.left)
    right = _compile_value(expr.right)
    if expr.op == "~=":
        if isinstance(expr.right, StringLit):
            try:
                compiled = re.compile(expr.right.value)
            except re.error:
                compiled = None  # defer: raise KeyNoteEvalError at query time
            if compiled is not None:
                def match_static(attrs: Mapping[str, str]) -> bool:
                    return compiled.search(
                        _as_string(left(attrs))) is not None
                return match_static

        def match(attrs: Mapping[str, str]) -> bool:
            subject = _as_string(left(attrs))
            pattern = _as_string(right(attrs))
            try:
                return re.search(pattern, subject) is not None
            except re.error as exc:
                raise KeyNoteEvalError(
                    f"bad regular expression {pattern!r}: {exc}")
        return match
    op = expr.op
    numeric_cmp = _NUMERIC_COMPARISONS[op]
    string_cmp = _STRING_COMPARISONS[op]

    def compare(attrs: Mapping[str, str]) -> bool:
        lv = left(attrs)
        rv = right(attrs)
        left_numeric, right_numeric = _is_numeric(lv), _is_numeric(rv)
        if left_numeric and right_numeric:
            return numeric_cmp(_as_number(lv), _as_number(rv))
        if left_numeric != right_numeric:
            if op == "==":
                return False
            if op == "!=":
                return True
            raise _SoftFailure(
                f"ordered comparison between {lv!r} and {rv!r}")
        return string_cmp(_as_string(lv), _as_string(rv))
    return compare


def _compile_value(expr: Expr) -> _ValueFn:
    if isinstance(expr, StringLit):
        text = expr.value
        return lambda attrs: text
    if isinstance(expr, NumberLit):
        number = float(expr.literal)
        return lambda attrs: number
    if isinstance(expr, Attribute):
        name = expr.name
        return lambda attrs: attrs.get(name, "")
    if isinstance(expr, Deref):
        inner = _compile_value(expr.inner)
        return lambda attrs: attrs.get(_as_string(inner(attrs)), "")
    if isinstance(expr, Unary):
        if expr.op == "-":
            operand = _compile_value(expr.operand)
            return lambda attrs: -_as_number(operand(attrs))
        if expr.op == "!":
            truth = _compile_truth(expr.operand)
            return lambda attrs: "true" if not truth(attrs) else "false"
        raise KeyNoteEvalError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Binary):
        if expr.op == ".":
            left = _compile_value(expr.left)
            right = _compile_value(expr.right)
            return lambda attrs: (_as_string(left(attrs))
                                  + _as_string(right(attrs)))
        if expr.op in _ARITH_OPS:
            left = _compile_value(expr.left)
            right = _compile_value(expr.right)
            op = expr.op
            arith = ConditionEvaluator._arith
            return lambda attrs: arith(op, _as_number(left(attrs)),
                                       _as_number(right(attrs)))
        if expr.op in _COMPARE_OPS | {"~="} | _BOOL_OPS:
            truth = _compile_truth(expr)
            return lambda attrs: "true" if truth(attrs) else "false"
        raise KeyNoteEvalError(f"unknown operator {expr.op!r}")
    raise KeyNoteEvalError(f"cannot evaluate {expr!r}")


def _collect_program_attributes(program: ConditionsProgram,
                                names: set) -> bool:
    """Accumulate attribute names read by ``program``; True if dynamic."""
    dynamic = False
    for clause in program.clauses:
        dynamic |= _collect_expr_attributes(clause.test, names)
        if isinstance(clause.value, ConditionsProgram):
            dynamic |= _collect_program_attributes(clause.value, names)
    return dynamic


def _collect_expr_attributes(expr: Expr, names: set) -> bool:
    if isinstance(expr, Attribute):
        names.add(expr.name)
        return False
    if isinstance(expr, Deref):
        _collect_expr_attributes(expr.inner, names)
        return True
    if isinstance(expr, Unary):
        return _collect_expr_attributes(expr.operand, names)
    if isinstance(expr, Binary):
        left = _collect_expr_attributes(expr.left, names)
        right = _collect_expr_attributes(expr.right, names)
        return left or right
    return False

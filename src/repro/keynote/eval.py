"""Evaluator for KeyNote condition expressions.

Semantics follow RFC 2704:

- Action attributes are strings; referencing an absent attribute yields the
  empty string.
- Comparisons are numeric when *both* operands are numeric (literals or
  strings that parse as numbers), otherwise lexicographic string comparisons.
- ``~=`` matches the left operand against a regular expression.
- Arithmetic on a non-numeric operand makes the enclosing *test* evaluate to
  false rather than aborting the whole query (RFC 2704 section 5: "a test
  with an invalid operand fails").
- A Conditions program evaluates to a compliance value: the join of the
  values of all clauses whose tests hold (``_MIN_TRUST`` when none do).
"""

from __future__ import annotations

import re
from typing import Mapping, Union

from repro.errors import KeyNoteEvalError
from repro.keynote.ast import (
    Attribute,
    Binary,
    Clause,
    ConditionsProgram,
    Deref,
    Expr,
    NumberLit,
    StringLit,
    Unary,
)
from repro.keynote.values import ComplianceValueSet

Value = Union[str, float]


class _SoftFailure(Exception):
    """Raised when a test's operand is invalid; the test becomes false."""


def _as_number(value: Value) -> float:
    """Coerce to float or raise :class:`_SoftFailure`."""
    if isinstance(value, float):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        raise _SoftFailure(f"non-numeric operand {value!r}") from None


def _as_string(value: Value) -> str:
    """Render a value as the string KeyNote would see."""
    if isinstance(value, float):
        # Integral floats print without a trailing .0, matching KeyNote's
        # integer/float duality.
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return value


def _is_numeric(value: Value) -> bool:
    if isinstance(value, float):
        return True
    try:
        float(value)
        return True
    except (TypeError, ValueError):
        return False


_BOOL_OPS = {"&&", "||"}
_COMPARE_OPS = {"==", "!=", "<", ">", "<=", ">="}
_ARITH_OPS = {"+", "-", "*", "/", "%", "^"}


class ConditionEvaluator:
    """Evaluates expressions and Conditions programs against an action
    attribute set."""

    def __init__(self, attributes: Mapping[str, str],
                 values: ComplianceValueSet) -> None:
        self._attributes = attributes
        self._values = values

    # -- public entry points -------------------------------------------------

    def program_value(self, program: ConditionsProgram) -> str:
        """Compliance value of a full Conditions field."""
        result = self._values.minimum
        for clause in program.clauses:
            clause_value = self._clause_value(clause)
            result = self._values.join([result, clause_value])
        return result

    def test(self, expr: Expr) -> bool:
        """Evaluate ``expr`` as a boolean test (soft failures are False)."""
        try:
            return self._truth(expr)
        except _SoftFailure:
            return False

    # -- clauses ---------------------------------------------------------------

    def _clause_value(self, clause: Clause) -> str:
        if not self.test(clause.test):
            return self._values.minimum
        if clause.value is None:
            return self._values.maximum
        if isinstance(clause.value, ConditionsProgram):
            return self.program_value(clause.value)
        return self._values.resolve(clause.value)

    # -- expression evaluation ---------------------------------------------------

    def _truth(self, expr: Expr) -> bool:
        """Boolean interpretation used inside &&, ||, !."""
        if isinstance(expr, Binary) and expr.op in _BOOL_OPS:
            if expr.op == "&&":
                # Short-circuit; soft failure in either side fails the test.
                return self._truth(expr.left) and self._truth(expr.right)
            left = self._protected_truth(expr.left)
            return left or self._truth(expr.right)
        if isinstance(expr, Unary) and expr.op == "!":
            return not self._truth(expr.operand)
        if isinstance(expr, Binary) and expr.op in _COMPARE_OPS | {"~="}:
            return self._compare(expr)
        # A bare value is true iff it is the string "true" or a nonzero
        # number — mirrors KeyNote's treatment of bare tests.
        value = self._value(expr)
        if _is_numeric(value):
            return _as_number(value) != 0.0
        return value == "true"

    def _protected_truth(self, expr: Expr) -> bool:
        """Truth where a soft failure means False (for || short-circuit)."""
        try:
            return self._truth(expr)
        except _SoftFailure:
            return False

    def _compare(self, expr: Binary) -> bool:
        if expr.op == "~=":
            subject = _as_string(self._value(expr.left))
            pattern = _as_string(self._value(expr.right))
            try:
                return re.search(pattern, subject) is not None
            except re.error as exc:
                raise KeyNoteEvalError(f"bad regular expression {pattern!r}: {exc}")
        left = self._value(expr.left)
        right = self._value(expr.right)
        left_numeric, right_numeric = _is_numeric(left), _is_numeric(right)
        if left_numeric and right_numeric:
            return _NUMERIC_COMPARISONS[expr.op](_as_number(left),
                                                 _as_number(right))
        if left_numeric != right_numeric:
            # Mixed numeric/non-numeric context: the test fails (RFC 2704's
            # invalid-operand rule), except that (in)equality against a
            # non-numeric string is still a meaningful string test.
            if expr.op == "==":
                return False
            if expr.op == "!=":
                return True
            raise _SoftFailure(
                f"ordered comparison between {left!r} and {right!r}")
        lstr, rstr = _as_string(left), _as_string(right)
        return _STRING_COMPARISONS[expr.op](lstr, rstr)

    def _value(self, expr: Expr) -> Value:
        if isinstance(expr, StringLit):
            return expr.value
        if isinstance(expr, NumberLit):
            return float(expr.literal)
        if isinstance(expr, Attribute):
            return self._attributes.get(expr.name, "")
        if isinstance(expr, Deref):
            name = _as_string(self._value(expr.inner))
            return self._attributes.get(name, "")
        if isinstance(expr, Unary):
            if expr.op == "-":
                return -_as_number(self._value(expr.operand))
            if expr.op == "!":
                return "true" if not self._truth(expr.operand) else "false"
            raise KeyNoteEvalError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            if expr.op == ".":
                return (_as_string(self._value(expr.left))
                        + _as_string(self._value(expr.right)))
            if expr.op in _ARITH_OPS:
                left = _as_number(self._value(expr.left))
                right = _as_number(self._value(expr.right))
                return self._arith(expr.op, left, right)
            if expr.op in _COMPARE_OPS | {"~="} | _BOOL_OPS:
                return "true" if self._truth(expr) else "false"
            raise KeyNoteEvalError(f"unknown operator {expr.op!r}")
        raise KeyNoteEvalError(f"cannot evaluate {expr!r}")

    @staticmethod
    def _arith(op: str, left: float, right: float) -> float:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise _SoftFailure("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise _SoftFailure("modulo by zero")
            return left % right
        if op == "^":
            try:
                return float(left ** right)
            except (OverflowError, ZeroDivisionError) as exc:
                raise _SoftFailure(str(exc)) from None
        raise KeyNoteEvalError(f"unknown arithmetic operator {op!r}")


_NUMERIC_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_STRING_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

"""Evaluator for KeyNote condition expressions.

Semantics follow RFC 2704:

- Action attributes are strings; referencing an absent attribute yields the
  empty string.
- Comparisons are numeric when *both* operands are numeric (literals or
  strings that parse as numbers), otherwise lexicographic string comparisons.
- ``~=`` matches the left operand against a regular expression.
- Arithmetic on a non-numeric operand makes the enclosing *test* evaluate to
  false rather than aborting the whole query (RFC 2704 section 5: "a test
  with an invalid operand fails").
- A Conditions program evaluates to a compliance value: the join of the
  values of all clauses whose tests hold (``_MIN_TRUST`` when none do).

Two evaluation strategies share these semantics: the tree-walking
:class:`ConditionEvaluator` (one AST dispatch per node per query — the
readable reference the oracle uses) and :func:`compile_conditions`, which
lowers a program once into a **flat postfix bytecode** evaluated by a
small stack VM — no ``isinstance`` dispatch and no Python call tree per
query.  The compiler constant-folds every attribute-free subexpression
(including whole clauses whose tests are statically decided), precompiles
literal regexes, and emits explicit short-circuit jumps for ``&&``/``||``
and for RFC 2704's invalid-operand rule: a soft failure is a *sentinel
value* (:data:`FAIL`) that jump instructions route past the unevaluated
operand, byte-for-byte matching the tree walker's exception semantics.
:class:`ComplianceChecker <repro.keynote.compliance.ComplianceChecker>`
compiles every assertion's conditions at construction time.
"""

from __future__ import annotations

import re
from typing import Callable, Mapping, Union

from repro.errors import KeyNoteEvalError
from repro.keynote.ast import (
    Attribute,
    Binary,
    Clause,
    ConditionsProgram,
    Deref,
    Expr,
    NumberLit,
    StringLit,
    Unary,
)
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet

Value = Union[str, float]


class _SoftFailure(Exception):
    """Raised when a test's operand is invalid; the test becomes false."""


def _as_number(value: Value) -> float:
    """Coerce to float or raise :class:`_SoftFailure`."""
    if isinstance(value, float):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        raise _SoftFailure(f"non-numeric operand {value!r}") from None


def _as_string(value: Value) -> str:
    """Render a value as the string KeyNote would see."""
    if isinstance(value, float):
        # Integral floats print without a trailing .0, matching KeyNote's
        # integer/float duality.
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return value


def _is_numeric(value: Value) -> bool:
    if isinstance(value, float):
        return True
    try:
        float(value)
        return True
    except (TypeError, ValueError):
        return False


_BOOL_OPS = {"&&", "||"}
_COMPARE_OPS = {"==", "!=", "<", ">", "<=", ">="}
_ARITH_OPS = {"+", "-", "*", "/", "%", "^"}


class ConditionEvaluator:
    """Evaluates expressions and Conditions programs against an action
    attribute set."""

    def __init__(self, attributes: Mapping[str, str],
                 values: ComplianceValueSet) -> None:
        self._attributes = attributes
        self._values = values

    # -- public entry points -------------------------------------------------

    def program_value(self, program: ConditionsProgram) -> str:
        """Compliance value of a full Conditions field."""
        result = self._values.minimum
        for clause in program.clauses:
            clause_value = self._clause_value(clause)
            result = self._values.join([result, clause_value])
        return result

    def test(self, expr: Expr) -> bool:
        """Evaluate ``expr`` as a boolean test (soft failures are False)."""
        try:
            return self._truth(expr)
        except _SoftFailure:
            return False

    # -- clauses ---------------------------------------------------------------

    def _clause_value(self, clause: Clause) -> str:
        if not self.test(clause.test):
            return self._values.minimum
        if clause.value is None:
            return self._values.maximum
        if isinstance(clause.value, ConditionsProgram):
            return self.program_value(clause.value)
        return self._values.resolve(clause.value)

    # -- expression evaluation ---------------------------------------------------

    def _truth(self, expr: Expr) -> bool:
        """Boolean interpretation used inside &&, ||, !."""
        if isinstance(expr, Binary) and expr.op in _BOOL_OPS:
            if expr.op == "&&":
                # Short-circuit; soft failure in either side fails the test.
                return self._truth(expr.left) and self._truth(expr.right)
            left = self._protected_truth(expr.left)
            return left or self._truth(expr.right)
        if isinstance(expr, Unary) and expr.op == "!":
            return not self._truth(expr.operand)
        if isinstance(expr, Binary) and expr.op in _COMPARE_OPS | {"~="}:
            return self._compare(expr)
        # A bare value is true iff it is the string "true" or a nonzero
        # number — mirrors KeyNote's treatment of bare tests.
        value = self._value(expr)
        if _is_numeric(value):
            return _as_number(value) != 0.0
        return value == "true"

    def _protected_truth(self, expr: Expr) -> bool:
        """Truth where a soft failure means False (for || short-circuit)."""
        try:
            return self._truth(expr)
        except _SoftFailure:
            return False

    def _compare(self, expr: Binary) -> bool:
        if expr.op == "~=":
            subject = _as_string(self._value(expr.left))
            pattern = _as_string(self._value(expr.right))
            try:
                return re.search(pattern, subject) is not None
            except re.error as exc:
                raise KeyNoteEvalError(f"bad regular expression {pattern!r}: {exc}")
        left = self._value(expr.left)
        right = self._value(expr.right)
        left_numeric, right_numeric = _is_numeric(left), _is_numeric(right)
        if left_numeric and right_numeric:
            return _NUMERIC_COMPARISONS[expr.op](_as_number(left),
                                                 _as_number(right))
        if left_numeric != right_numeric:
            # Mixed numeric/non-numeric context: the test fails (RFC 2704's
            # invalid-operand rule), except that (in)equality against a
            # non-numeric string is still a meaningful string test.
            if expr.op == "==":
                return False
            if expr.op == "!=":
                return True
            raise _SoftFailure(
                f"ordered comparison between {left!r} and {right!r}")
        lstr, rstr = _as_string(left), _as_string(right)
        return _STRING_COMPARISONS[expr.op](lstr, rstr)

    def _value(self, expr: Expr) -> Value:
        if isinstance(expr, StringLit):
            return expr.value
        if isinstance(expr, NumberLit):
            return float(expr.literal)
        if isinstance(expr, Attribute):
            return self._attributes.get(expr.name, "")
        if isinstance(expr, Deref):
            name = _as_string(self._value(expr.inner))
            return self._attributes.get(name, "")
        if isinstance(expr, Unary):
            if expr.op == "-":
                return -_as_number(self._value(expr.operand))
            if expr.op == "!":
                return "true" if not self._truth(expr.operand) else "false"
            raise KeyNoteEvalError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            if expr.op == ".":
                return (_as_string(self._value(expr.left))
                        + _as_string(self._value(expr.right)))
            if expr.op in _ARITH_OPS:
                left = _as_number(self._value(expr.left))
                right = _as_number(self._value(expr.right))
                return self._arith(expr.op, left, right)
            if expr.op in _COMPARE_OPS | {"~="} | _BOOL_OPS:
                return "true" if self._truth(expr) else "false"
            raise KeyNoteEvalError(f"unknown operator {expr.op!r}")
        raise KeyNoteEvalError(f"cannot evaluate {expr!r}")

    @staticmethod
    def _arith(op: str, left: float, right: float) -> float:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise _SoftFailure("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise _SoftFailure("modulo by zero")
            return left % right
        if op == "^":
            try:
                # A negative base with a fractional exponent yields a
                # complex result in python; KeyNote has no complex
                # numbers, so it is an invalid operand (test fails).
                return float(left ** right)
            except (OverflowError, ZeroDivisionError, TypeError) as exc:
                raise _SoftFailure(str(exc)) from None
        raise KeyNoteEvalError(f"unknown arithmetic operator {op!r}")


_NUMERIC_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_STRING_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


# -- compiled conditions: flat postfix bytecode -------------------------------

class _Failure:
    """The soft-failure sentinel the VM routes instead of raising.

    RFC 2704's invalid-operand rule is an *exception* in the tree walker;
    in the bytecode it is a stack value, so the flat instruction stream
    needs no Python try/except per node.  Jump instructions propagate it
    past unevaluated operands exactly where the tree walker's exception
    would have unwound, and the test boundary converts it to False.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FAIL"


#: the singleton soft-failure sentinel
FAIL = _Failure()

# Opcodes.  arg meaning in brackets; stack effect after the dash.
OP_CONST = 0        # [value]        — push constant
OP_FAIL = 1         # []             — push FAIL (folded soft failure)
OP_ATTR = 2         # [name]         — push attrs.get(name, "")
OP_DEREF = 3        # []             — pop v; push attrs.get(str(v), "")
OP_NEG = 4          # []             — pop v; push -number(v)
OP_NOT = 5          # []             — pop t; push not t
OP_TRUTH = 6        # []             — pop v; push bare-value truth of v
OP_BOOL2STR = 7     # []             — pop t; push "true"/"false"
OP_CONCAT = 8       # []             — pop b, a; push str(a) + str(b)
OP_ARITH = 9        # [op]           — pop b, a; push a <op> b
OP_CMP = 10         # [op]           — pop b, a; push comparison truth
OP_MATCH = 11       # []             — pop pattern, subject; regex search
OP_MATCH_CONST = 12  # [compiled re] — pop subject; precompiled search
OP_JFALSE = 13      # [target]       — top False/FAIL: jump (keep); else pop
OP_JTRUE = 14       # [target]       — top True: jump (keep); else pop
OP_JFAIL = 15       # [target]       — top FAIL: jump (keep); else continue

OP_NAMES = {
    OP_CONST: "CONST", OP_FAIL: "PUSH_FAIL", OP_ATTR: "ATTR",
    OP_DEREF: "DEREF", OP_NEG: "NEG", OP_NOT: "NOT", OP_TRUTH: "TRUTH",
    OP_BOOL2STR: "BOOL2STR", OP_CONCAT: "CONCAT", OP_ARITH: "ARITH",
    OP_CMP: "CMP", OP_MATCH: "MATCH", OP_MATCH_CONST: "MATCH_CONST",
    OP_JFALSE: "JFALSE", OP_JTRUE: "JTRUE", OP_JFAIL: "JFAIL",
}

#: bytecode: a tuple of (opcode, arg) pairs
Code = "tuple[tuple[int, object], ...]"

_ARITH_FN = ConditionEvaluator._arith


def _run(code, attrs: Mapping[str, str]):
    """Execute one test's bytecode; returns True, False or :data:`FAIL`.

    :raises KeyNoteEvalError: for a malformed *dynamic* regex pattern —
        the one hard error the tree walker also raises at query time.
    """
    stack: list = []
    push = stack.append
    pop = stack.pop
    pc = 0
    size = len(code)
    while pc < size:
        op, arg = code[pc]
        pc += 1
        if op == OP_ATTR:
            push(attrs.get(arg, ""))
        elif op == OP_CONST:
            push(arg)
        elif op == OP_CMP:
            b = pop()
            a = pop()
            if b is FAIL:
                push(FAIL)
                continue
            a_num = _num_or_none(a)
            b_num = _num_or_none(b)
            if a_num is not None and b_num is not None:
                push(_NUMERIC_COMPARISONS[arg](a_num, b_num))
            elif (a_num is None) != (b_num is None):
                # Mixed numeric/non-numeric: (in)equality is a meaningful
                # string test, ordered comparison soft-fails (RFC 2704).
                if arg == "==":
                    push(False)
                elif arg == "!=":
                    push(True)
                else:
                    push(FAIL)
            else:
                push(_STRING_COMPARISONS[arg](_as_string(a), _as_string(b)))
        elif op == OP_JFALSE:
            if stack[-1] is False or stack[-1] is FAIL:
                pc = arg
            else:
                pop()
        elif op == OP_JTRUE:
            if stack[-1] is True:
                pc = arg
            else:
                pop()  # discard False *or FAIL*: || protects its left arm
        elif op == OP_JFAIL:
            if stack[-1] is FAIL:
                pc = arg
        elif op == OP_MATCH_CONST:
            a = pop()
            push(FAIL if a is FAIL
                 else arg.search(_as_string(a)) is not None)
        elif op == OP_MATCH:
            b = pop()
            a = pop()
            if b is FAIL:
                push(FAIL)
                continue
            pattern = _as_string(b)
            try:
                push(re.search(pattern, _as_string(a)) is not None)
            except re.error as exc:
                raise KeyNoteEvalError(
                    f"bad regular expression {pattern!r}: {exc}")
        elif op == OP_TRUTH:
            v = pop()
            if v is FAIL:
                push(FAIL)
            else:
                v_num = _num_or_none(v)
                push(v == "true" if v_num is None else v_num != 0.0)
        elif op == OP_NOT:
            t = pop()
            push(FAIL if t is FAIL else not t)
        elif op == OP_BOOL2STR:
            t = pop()
            push(FAIL if t is FAIL else ("true" if t else "false"))
        elif op == OP_ARITH:
            b = pop()
            a = pop()
            if b is FAIL:
                push(FAIL)
                continue
            try:
                push(_ARITH_FN(arg, _as_number(a), _as_number(b)))
            except _SoftFailure:
                push(FAIL)
        elif op == OP_CONCAT:
            b = pop()
            a = pop()
            push(FAIL if b is FAIL else _as_string(a) + _as_string(b))
        elif op == OP_NEG:
            v = pop()
            if v is FAIL:
                push(FAIL)
            else:
                v_num = _num_or_none(v)
                push(FAIL if v_num is None else -v_num)
        elif op == OP_DEREF:
            v = pop()
            push(FAIL if v is FAIL else attrs.get(_as_string(v), ""))
        else:  # OP_FAIL
            push(FAIL)
    return stack[-1]


def _num_or_none(value):
    """float(value) or None — one conversion where the tree walker pays
    two (_is_numeric then _as_number)."""
    if type(value) is float:
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


# -- compiler -----------------------------------------------------------------

#: stateless tree-walking evaluator used for compile-time constant folding
_CONST_EVAL = ConditionEvaluator({}, DEFAULT_VALUE_SET)


def _is_const(expr: Expr) -> bool:
    """True when no attribute (direct or dereferenced) can influence
    ``expr`` — the subtree folds to a constant at compile time."""
    if isinstance(expr, (StringLit, NumberLit)):
        return True
    if isinstance(expr, (Attribute, Deref)):
        return False
    if isinstance(expr, Unary):
        return _is_const(expr.operand)
    if isinstance(expr, Binary):
        return _is_const(expr.left) and _is_const(expr.right)
    return False


def _emit_truth(expr: Expr, code: list) -> None:
    """Emit bytecode leaving the *truth* of ``expr`` (bool or FAIL)."""
    if _is_const(expr):
        try:
            code.append([OP_CONST, _CONST_EVAL._truth(expr)])
            return
        except _SoftFailure:
            code.append([OP_FAIL, None])
            return
        except KeyNoteEvalError:
            pass  # e.g. bad literal regex: defer the hard error to runtime
    if isinstance(expr, Binary) and expr.op in _BOOL_OPS:
        mark = len(code)
        _emit_truth(expr.left, code)
        if len(code) == mark + 1 and code[mark][0] in (OP_CONST, OP_FAIL):
            # Constant left arm with a dynamic right arm: either the left
            # arm decides (keep it as the result) or it is transparent
            # (drop it, the right arm alone remains).  A FAIL left arm
            # decides && (propagates) and is absorbed by ||.
            left_true = (code[mark][0] == OP_CONST
                         and code[mark][1] is True)
            if left_true if expr.op == "||" else not left_true:
                return
            code.pop()
            _emit_truth(expr.right, code)
            return
        jump = [OP_JFALSE if expr.op == "&&" else OP_JTRUE, None]
        code.append(jump)
        _emit_truth(expr.right, code)
        jump[1] = len(code)
        return
    if isinstance(expr, Unary) and expr.op == "!":
        _emit_truth(expr.operand, code)
        code.append([OP_NOT, None])
        return
    if isinstance(expr, Binary) and (expr.op in _COMPARE_OPS
                                     or expr.op == "~="):
        _emit_compare(expr, code)
        return
    _emit_value(expr, code)
    code.append([OP_TRUTH, None])


def _emit_compare(expr: Binary, code: list) -> None:
    _emit_value(expr.left, code)
    if expr.op == "~=" and isinstance(expr.right, StringLit):
        try:
            compiled = re.compile(expr.right.value)
        except re.error:
            compiled = None  # defer: KeyNoteEvalError at query time
        if compiled is not None:
            code.append([OP_MATCH_CONST, compiled])
            return
    # Strict left-to-right: a soft-failed left operand must skip the
    # right operand entirely (its evaluation could raise a hard error the
    # tree walker would never reach).
    jump = [OP_JFAIL, None]
    code.append(jump)
    _emit_value(expr.right, code)
    code.append([OP_MATCH if expr.op == "~=" else OP_CMP,
                 None if expr.op == "~=" else expr.op])
    jump[1] = len(code)


def _emit_value(expr: Expr, code: list) -> None:
    """Emit bytecode leaving the *value* of ``expr`` (str, float or FAIL)."""
    if isinstance(expr, StringLit):
        code.append([OP_CONST, expr.value])
        return
    if isinstance(expr, NumberLit):
        code.append([OP_CONST, float(expr.literal)])
        return
    if isinstance(expr, Attribute):
        code.append([OP_ATTR, expr.name])
        return
    if _is_const(expr):
        try:
            code.append([OP_CONST, _CONST_EVAL._value(expr)])
            return
        except _SoftFailure:
            code.append([OP_FAIL, None])
            return
        except KeyNoteEvalError:
            pass
    if isinstance(expr, Deref):
        _emit_value(expr.inner, code)
        code.append([OP_DEREF, None])
        return
    if isinstance(expr, Unary):
        if expr.op == "-":
            _emit_value(expr.operand, code)
            code.append([OP_NEG, None])
            return
        if expr.op == "!":
            _emit_truth(expr.operand, code)
            code.append([OP_NOT, None])
            code.append([OP_BOOL2STR, None])
            return
        raise KeyNoteEvalError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Binary):
        if expr.op == "." or expr.op in _ARITH_OPS:
            _emit_value(expr.left, code)
            jump = [OP_JFAIL, None]
            code.append(jump)
            _emit_value(expr.right, code)
            code.append([OP_CONCAT, None] if expr.op == "."
                        else [OP_ARITH, expr.op])
            jump[1] = len(code)
            return
        if expr.op in _COMPARE_OPS | {"~="} | _BOOL_OPS:
            _emit_truth(expr, code)
            code.append([OP_BOOL2STR, None])
            return
        raise KeyNoteEvalError(f"unknown operator {expr.op!r}")
    raise KeyNoteEvalError(f"cannot evaluate {expr!r}")


def compile_test(expr: Expr) -> "Code | None":
    """Compile one clause test to bytecode.

    Returns ``None`` when the test folds to a static True (the caller
    skips the VM), and ``()`` when it folds to static False/FAIL (the
    caller drops the clause).
    """
    code: list = []
    _emit_truth(expr, code)
    if len(code) == 1 and code[0][0] == OP_CONST:
        return None if code[0][1] is True else ()
    if len(code) == 1 and code[0][0] == OP_FAIL:
        return ()
    return tuple((op, arg) for op, arg in code)


class _CompiledClause:
    """One clause: compiled test + its value form.

    ``kind`` 0 yields ``_MAX_TRUST``, 1 a named value (resolved against
    the query's value set when the test passes — unknown names must keep
    raising exactly then), 2 a nested tuple of compiled clauses.
    """

    __slots__ = ("code", "kind", "payload")

    def __init__(self, code, kind: int, payload) -> None:
        self.code = code
        self.kind = kind
        self.payload = payload


def _compile_clause(clause: Clause) -> "_CompiledClause | None":
    code = compile_test(clause.test)
    if code == ():
        return None  # statically false test: the clause can never fire
    if clause.value is None:
        return _CompiledClause(code, 0, None)
    if isinstance(clause.value, ConditionsProgram):
        nested = tuple(c for c in map(_compile_clause, clause.value.clauses)
                       if c is not None)
        return _CompiledClause(code, 2, nested)
    return _CompiledClause(code, 1, clause.value)


def _clause_value(clause: _CompiledClause, attrs: Mapping[str, str],
                  values: ComplianceValueSet) -> str:
    if clause.code is not None and _run(clause.code, attrs) is not True:
        return values.minimum
    if clause.kind == 0:
        return values.maximum
    if clause.kind == 1:
        return values.resolve(clause.payload)
    result = values.minimum
    for sub in clause.payload:
        result = values.join([result, _clause_value(sub, attrs, values)])
    return result


class CompiledConditions:
    """A Conditions program lowered to bytecode, evaluated many times.

    Built once (per assertion, at checker construction) and then invoked
    per query with just the action attribute set and the value set —
    exactly :meth:`ConditionEvaluator.program_value`, without re-walking
    the AST.  :meth:`referenced_attributes` reports which action
    attributes can influence the program's value (``None`` when a ``$``
    dereference makes the set dynamic), which is what lets the decision
    cache ignore irrelevant attributes such as an unused ``_cur_time``.
    """

    __slots__ = ("program", "_clauses", "_referenced")

    def __init__(self, program: ConditionsProgram) -> None:
        self.program = program
        self._clauses = tuple(
            c for c in map(_compile_clause, program.clauses)
            if c is not None)
        names: set[str] = set()
        dynamic = _collect_program_attributes(program, names)
        self._referenced: "frozenset[str] | None" = (
            None if dynamic else frozenset(names))

    def value(self, attributes: Mapping[str, str],
              values: ComplianceValueSet) -> str:
        """Compliance value of the program for one attribute set."""
        result = values.minimum
        for clause in self._clauses:
            result = values.join([result,
                                  _clause_value(clause, attributes, values)])
        return result

    def referenced_attributes(self) -> "frozenset[str] | None":
        """Attributes the program reads, or None when ``$`` makes the set
        depend on runtime values."""
        return self._referenced

    def instruction_count(self) -> int:
        """Total emitted instructions (0 for a fully folded program)."""
        def count(clauses) -> int:
            total = 0
            for clause in clauses:
                total += len(clause.code or ())
                if clause.kind == 2:
                    total += count(clause.payload)
            return total
        return count(self._clauses)

    def disassemble(self) -> list[str]:
        """Human-readable listing of every clause's bytecode."""
        lines: list[str] = []

        def dump(clauses, indent: str) -> None:
            for index, clause in enumerate(clauses):
                value = {0: "-> _MAX_TRUST",
                         1: f"-> {clause.payload!r}",
                         2: "-> {...}"}[clause.kind]
                lines.append(f"{indent}clause {index} {value}")
                if clause.code is None:
                    lines.append(f"{indent}  <static true>")
                else:
                    for addr, (op, arg) in enumerate(clause.code):
                        suffix = "" if arg is None else f" {arg!r}"
                        lines.append(
                            f"{indent}  {addr:3d} {OP_NAMES[op]}{suffix}")
                if clause.kind == 2:
                    dump(clause.payload, indent + "  ")
        dump(self._clauses, "")
        return lines


def compile_conditions(program: ConditionsProgram) -> CompiledConditions:
    """Lower a Conditions program into a :class:`CompiledConditions`."""
    return CompiledConditions(program)


def _collect_program_attributes(program: ConditionsProgram,
                                names: set) -> bool:
    """Accumulate attribute names read by ``program``; True if dynamic."""
    dynamic = False
    for clause in program.clauses:
        dynamic |= _collect_expr_attributes(clause.test, names)
        if isinstance(clause.value, ConditionsProgram):
            dynamic |= _collect_program_attributes(clause.value, names)
    return dynamic


def _collect_expr_attributes(expr: Expr, names: set) -> bool:
    if isinstance(expr, Attribute):
        names.add(expr.name)
        return False
    if isinstance(expr, Deref):
        _collect_expr_attributes(expr.inner, names)
        return True
    if isinstance(expr, Unary):
        return _collect_expr_attributes(expr.operand, names)
    if isinstance(expr, Binary):
        left = _collect_expr_attributes(expr.left, names)
        right = _collect_expr_attributes(expr.right, names)
        return left or right
    return False

"""Tokenizer for the KeyNote condition / licensee expression languages."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import KeyNoteSyntaxError


class TokenType(Enum):
    STRING = auto()      # "quoted"
    NUMBER = auto()      # 42, 3.14
    IDENT = auto()       # attribute or local-constant name
    OP = auto()          # operators and punctuation
    EOF = auto()


# Multi-character operators first so the scanner is greedy.
_OPERATORS = (
    "->", "==", "!=", "<=", ">=", "~=", "&&", "||",
    "(", ")", "{", "}", "<", ">", "+", "-", "*", "/", "%", "^",
    "!", ";", ",", ".", "$",
)

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


@dataclass(frozen=True)
class Token:
    """A lexical token with position information for error messages."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        """True if this is an OP token with one of the given spellings."""
        return self.type is TokenType.OP and self.value in ops


def tokenize(text: str) -> list[Token]:
    """Tokenize a condition or licensee expression.

    :raises KeyNoteSyntaxError: on unterminated strings or unknown characters.
    """
    tokens: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(text)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                advance(1)
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            chars: list[str] = []
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    advance(1)
                    chars.append(text[i])
                    advance(1)
                else:
                    chars.append(text[i])
                    advance(1)
            if i >= n:
                raise KeyNoteSyntaxError("unterminated string literal",
                                         start_line, start_col)
            advance(1)  # closing quote
            tokens.append(Token(TokenType.STRING, "".join(chars),
                                start_line, start_col))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Don't swallow a dot that isn't followed by a digit
                    # (it's the string-concatenation operator).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            literal = text[i:j]
            advance(j - i)
            tokens.append(Token(TokenType.NUMBER, literal,
                                start_line, start_col))
            continue
        if ch in _IDENT_START:
            start_line, start_col = line, col
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            word = text[i:j]
            advance(j - i)
            tokens.append(Token(TokenType.IDENT, word, start_line, start_col))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, line, col))
                advance(len(op))
                matched = True
                break
        if not matched:
            raise KeyNoteSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens

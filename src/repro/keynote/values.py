"""Ordered compliance-value sets (RFC 2704 section 3).

A KeyNote query is evaluated against an ordered set of *compliance values*,
from minimum trust to maximum trust.  The default set is
``{"false", "true"}``; applications may supply richer sets such as
``{"reject", "approve_with_log", "approve"}``.  ``_MIN_TRUST`` and
``_MAX_TRUST`` are reserved aliases for the extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ComplianceError

MIN_TRUST_NAME = "_MIN_TRUST"
MAX_TRUST_NAME = "_MAX_TRUST"


@dataclass(frozen=True)
class ComplianceValueSet:
    """An ordered set of compliance values, least to most trusted."""

    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise ComplianceError("a compliance value set needs >= 2 values")
        if len(set(self.values)) != len(self.values):
            raise ComplianceError("compliance values must be distinct")
        for reserved in (MIN_TRUST_NAME, MAX_TRUST_NAME):
            if reserved in self.values:
                raise ComplianceError(f"{reserved} is reserved")

    @classmethod
    def of(cls, values: Iterable[str]) -> "ComplianceValueSet":
        """Build from any iterable, preserving order."""
        return cls(tuple(values))

    @property
    def minimum(self) -> str:
        """The least-trust value (what ``_MIN_TRUST`` resolves to)."""
        return self.values[0]

    @property
    def maximum(self) -> str:
        """The most-trust value (what ``_MAX_TRUST`` resolves to)."""
        return self.values[-1]

    def rank(self, value: str) -> int:
        """Index of ``value`` in the order.

        ``_MIN_TRUST`` / ``_MAX_TRUST`` aliases resolve to the extremes.

        :raises ComplianceError: for values outside the set.
        """
        if value == MIN_TRUST_NAME:
            return 0
        if value == MAX_TRUST_NAME:
            return len(self.values) - 1
        try:
            return self.values.index(value)
        except ValueError:
            raise ComplianceError(
                f"{value!r} is not in the compliance value set "
                f"{list(self.values)}") from None

    def resolve(self, value: str) -> str:
        """Map ``_MIN_TRUST``/``_MAX_TRUST`` aliases to concrete values."""
        return self.values[self.rank(value)]

    def meet(self, values: Sequence[str]) -> str:
        """Greatest lower bound (used for ``&&`` and delegation chaining)."""
        if not values:
            return self.maximum
        return self.values[min(self.rank(v) for v in values)]

    def join(self, values: Sequence[str]) -> str:
        """Least upper bound (used for ``||`` and alternative chains)."""
        if not values:
            return self.minimum
        return self.values[max(self.rank(v) for v in values)]

    def kth_largest(self, values: Sequence[str], k: int) -> str:
        """The k-th largest value — the semantics of ``k-of(...)`` licensee
        thresholds: the value the threshold group jointly attains."""
        if k < 1:
            raise ComplianceError("threshold k must be >= 1")
        if k > len(values):
            return self.minimum
        ranked = sorted((self.rank(v) for v in values), reverse=True)
        return self.values[ranked[k - 1]]

    def from_bool(self, flag: bool) -> str:
        """Map a boolean test outcome to a compliance value."""
        return self.maximum if flag else self.minimum

    def at_least(self, value: str, threshold: str) -> bool:
        """True if ``value`` is at least as trusted as ``threshold``."""
        return self.rank(value) >= self.rank(threshold)

    def __contains__(self, value: str) -> bool:
        return (value in self.values
                or value in (MIN_TRUST_NAME, MAX_TRUST_NAME))

    def __len__(self) -> int:
        return len(self.values)


#: The default boolean compliance set of RFC 2704.
DEFAULT_VALUE_SET = ComplianceValueSet(("false", "true"))

"""Churn benchmark for incremental invalidation (``BENCH_10.json``).

The Grid workload motivating this artifact (*Security for Grid Services*,
PAPERS.md) is short-lived proxy credentials arriving and expiring
constantly while a Zipfian request mix hammers the same hot decisions.
Under the PR 3 generation-flush scheme every add/revoke cleared the whole
decision cache, so churn-heavy traffic paid a cold fixpoint per decision
per update.  This bench drives the *identical* seeded op sequence through
two checkers — dependency-indexed incremental invalidation vs the
generation-flush baseline (``incremental=False``) — and reports:

* **warm-hit ratio under churn** for both modes (the headline gate:
  incremental must beat the baseline by ``min_hit_improvement``);
* **per-update cost** — wall time of the interleaved churn+query phase
  divided by the number of mutations, both modes;
* **zero disagreements** — every query is answered by both checkers in
  lock-step and cross-checked, with seeded sub-samples replayed against
  the PR 5 naive oracle (:func:`~repro.oracle.keynote_oracle.
  oracle_compliance_value`) and a cold rebuilt checker;
* an **RBAC edge-churn section** proving hierarchy edge add/remove is
  absorbed as engine deltas (no full rebuilds) while agreeing with the
  set-based path and the :class:`~repro.oracle.rbac_oracle.RBACOracle`;
* a **stack-survival section** counting how many warm mediation-cache
  entries survive unrelated revocations under the decision-scoped
  fingerprints (``survived_churn``), with every served decision verified
  against a forced re-mediation.

Everything is seeded; two runs of ``repro bench-churn`` replay the same
universe, queries and churn schedule.
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.keynote.api import KeyNoteSession
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.oracle.keynote_oracle import oracle_compliance_value
from repro.oracle.rbac_oracle import RBACOracle
from repro.rbac.bench import build_requests, build_universe
from repro.rbac.model import DomainRole
from repro.util.clock import SimulatedClock
from repro.webcom.stack import AuthorisationStack, MediationRequest

#: the two operations the proxy workload requests (a stable referenced
#: attribute vocabulary — churn must not change the cache key shape)
_OPS = ("submit", "status")


def build_delegation_universe(*, orgs: int = 4, teams: int = 20,
                              users: int = 400, seed: int = 10,
                              ) -> dict[str, Any]:
    """A seeded Grid-style delegation graph.

    POLICY licenses each org key for its own org attribute; each org
    licenses its teams (condition-pruned by team); each team licenses its
    member user keys; and each user key licenses a short-lived *proxy*
    key — the Grid single-sign-on credential, and the tier that churns.
    Requests are made by proxy keys, so the delegation cone a decision
    walks (and therefore its recorded dependency set) is confined to the
    requester's own org/team, and one proxy renewal touches only the
    issuing user key's neighbourhood — the property the incremental
    checker is supposed to exploit.
    """
    policy_creds = [
        Credential.build("POLICY", f'"Korg{o}"',
                         f'app=="grid" && org=="o{o}"')
        for o in range(orgs)]
    org_creds = [
        Credential.build(f"Korg{t % orgs}", f'"Kteam{t}"', f'team=="t{t}"')
        for t in range(teams)]
    team_creds = [
        Credential.build(f"Kteam{u % teams}", f'"Kuser{u}"',
                         'op=="submit" || op=="status"')
        for u in range(users)]
    proxy_creds = [
        Credential.build(f"Kuser{u}", f'"Kproxy{u}"', 'app=="grid"')
        for u in range(users)]
    rng = random.Random(seed)
    return {"orgs": orgs, "teams": teams, "users": users, "rng": rng,
            "policy_creds": policy_creds, "org_creds": org_creds,
            "team_creds": team_creds, "proxy_creds": proxy_creds,
            "proxy_keys": [f"Kproxy{u}" for u in range(users)]}


def _fresh_checker(universe: dict[str, Any],
                   incremental: bool) -> ComplianceChecker:
    assertions = (universe["policy_creds"] + universe["org_creds"]
                  + universe["team_creds"] + universe["proxy_creds"])
    # Signatures are orthogonal to invalidation (and ride a process-wide
    # cache anyway); the bench measures the fixpoint + cache machinery.
    return ComplianceChecker(assertions=list(assertions),
                             verify_signatures=False,
                             incremental=incremental)


def _churn_schedule(universe: dict[str, Any], steps: int,
                    seed: int) -> list[int]:
    """Which user's leaf credential is renewed at each step.

    Tail-heavy (reverse-Zipf): most proxy churn happens in the cold long
    tail while the Zipfian query mix keeps hammering the hot head — the
    Grid shape that makes generation-flush pathological.
    """
    rng = random.Random(seed + 17)
    users = universe["users"]
    weights = [1.0 / (users - u) for u in range(users)]
    return rng.choices(range(users), weights=weights, k=steps)


def _query_schedule(universe: dict[str, Any], count: int,
                    seed: int) -> list[tuple[int, str]]:
    """Zipfian (user, op) draws."""
    rng = random.Random(seed + 29)
    users = universe["users"]
    weights = [1.0 / (u + 1) for u in range(users)]
    subjects = rng.choices(range(users), weights=weights, k=count)
    ops = rng.choices(_OPS, k=count)
    return list(zip(subjects, ops))


def _attrs(universe: dict[str, Any], user: int, op: str) -> dict[str, str]:
    team = user % universe["teams"]
    return {"app": "grid", "op": op,
            "org": f"o{team % universe['orgs']}", "team": f"t{team}"}


def _run_churn_phase(universe: dict[str, Any], *, incremental: bool,
                     steps: int, queries_per_step: int,
                     seed: int) -> dict[str, Any]:
    """One mode's run over the shared schedule; returns timings, the
    warm-hit ratio over the churn phase, and every answer (for the
    lock-step cross-check)."""
    checker = _fresh_checker(universe, incremental)
    proxy_creds = list(universe["proxy_creds"])
    # Prime: one query per user, so both modes enter the churn phase with
    # a fully warm cache (the baseline then loses it at the first flush).
    for user in range(universe["users"]):
        checker.query(_attrs(universe, user, _OPS[user % len(_OPS)]),
                      [universe["proxy_keys"][user]])
    churn = _churn_schedule(universe, steps, seed)
    queries = _query_schedule(universe, steps * queries_per_step, seed)
    hits_before = checker.cache_hits
    misses_before = checker.cache_misses
    answers: list[str] = []
    mutation_s = 0.0
    start = time.perf_counter()
    for step, user in enumerate(churn):
        # Proxy renewal: the user key revokes its expiring single-sign-on
        # credential and issues a fresh one for the same proxy key.
        renewed = Credential.build(f"Kuser{user}", f'"Kproxy{user}"',
                                   'app=="grid"',
                                   local_constants={"renewal": str(step)})
        t0 = time.perf_counter()
        checker.revoke_assertion(proxy_creds[user])
        checker.add_assertion(renewed)
        mutation_s += time.perf_counter() - t0
        proxy_creds[user] = renewed
        for subject, op in queries[step * queries_per_step:
                                   (step + 1) * queries_per_step]:
            answers.append(checker.query(
                _attrs(universe, subject, op),
                [universe["proxy_keys"][subject]]))
    phase_s = time.perf_counter() - start
    hits = checker.cache_hits - hits_before
    misses = checker.cache_misses - misses_before
    total = hits + misses
    return {
        "incremental": incremental,
        "phase_s": round(phase_s, 6),
        "mutation_s": round(mutation_s, 6),
        "per_update_us": round(phase_s / steps * 1e6, 1),
        "hits": hits,
        "misses": misses,
        "hit_ratio": round(hits / total, 4) if total else 0.0,
        "cache": checker.cache_info(),
        "answers": answers,
        "checker": checker,
    }


def _oracle_cross_check(universe: dict[str, Any], phase: dict[str, Any],
                        samples: int, seed: int) -> dict[str, Any]:
    """Replay a seeded sample of post-churn decisions against the naive
    oracle and a cold rebuilt checker (cached == recomputed == oracle)."""
    checker: ComplianceChecker = phase["checker"]
    assertions = list(checker.assertions)
    cold = ComplianceChecker(assertions=assertions, verify_signatures=False,
                             incremental=True)
    rng = random.Random(seed + 41)
    disagreements = 0
    for _ in range(samples):
        user = rng.randrange(universe["users"])
        op = rng.choice(_OPS)
        attributes = _attrs(universe, user, op)
        authorizers = [universe["proxy_keys"][user]]
        warm = checker.query(attributes, authorizers)
        recomputed = cold.query(attributes, authorizers)
        reference = oracle_compliance_value(assertions, attributes,
                                            authorizers)
        if not (warm == recomputed == reference):
            disagreements += 1
    return {"samples": samples, "disagreements": disagreements}


def _rbac_edge_churn(*, users: int = 300, roles: int = 60, steps: int = 40,
                     checks_per_step: int = 30, seed: int = 10,
                     ) -> dict[str, Any]:
    """Interleave hierarchy edge add/remove with grants and verify the
    delta-maintained engine against the set-based path, with an oracle
    sweep at the end.  The engine must absorb every edge change as a
    delta: exactly one build, zero extra hierarchy rebuilds."""
    policy = build_universe(users, roles, domains=4, seed=seed,
                            compiled=True, name="churn-edges")
    requests = build_requests(policy, checks_per_step * steps, seed=seed)
    policy.check_access_many(requests[:checks_per_step])  # build engine
    stats0 = policy.engine_stats() or {}
    rebuilds0 = stats0.get("hierarchy_rebuilds", 0)
    rng = random.Random(seed + 5)
    # build_universe's role naming is deterministic: role i lives in
    # domain d(i % domains) and is called r<i>.
    role_list = [DomainRole(f"d{i % 4}", f"r{i}") for i in range(roles)]
    removable: list[tuple[DomainRole, DomainRole]] = list(
        policy.hierarchy.edges())
    disagreements = 0
    start = time.perf_counter()
    for step in range(steps):
        action = rng.random()
        if action < 0.4 and removable:
            senior, junior = removable.pop(rng.randrange(len(removable)))
            policy.hierarchy.remove_inheritance(senior, junior)
        else:
            senior, junior = rng.sample(role_list, 2)
            try:
                policy.hierarchy.add_inheritance(senior, junior)
                removable.append((senior, junior))
            except Exception:
                pass  # would cycle: the schedule simply skips this step
        batch = requests[step * checks_per_step:
                         (step + 1) * checks_per_step]
        engine_answers = policy.check_access_many(batch)
        saved = policy.compiled
        policy.compiled = False
        try:
            set_answers = [policy.check_access(u, ot, p)
                           for u, ot, p in batch]
        finally:
            policy.compiled = saved
        disagreements += sum(1 for e, s in zip(engine_answers, set_answers)
                             if e != s)
    phase_s = time.perf_counter() - start
    oracle = RBACOracle.from_policy(policy)
    sample = build_requests(policy, 150, seed=seed + 7)
    oracle_disagreements = sum(
        1 for (u, ot, p), e in zip(sample, policy.check_access_many(sample))
        if e != oracle.check_access(u, ot, p))
    stats = policy.engine_stats() or {}
    return {
        "users": users, "roles": roles, "steps": steps,
        "checks": checks_per_step * steps,
        "phase_s": round(phase_s, 6),
        "per_update_us": round(phase_s / steps * 1e6, 1),
        "builds": stats.get("builds"),
        "hierarchy_rebuilds": stats.get("hierarchy_rebuilds", 0) - rebuilds0,
        "edge_deltas": stats.get("edge_deltas"),
        "mask_evictions": stats.get("mask_evictions"),
        "set_based_disagreements": disagreements,
        "oracle": {"samples": len(sample),
                   "disagreements": oracle_disagreements},
    }


def _stack_survival(universe: dict[str, Any], *, warm_entries: int = 60,
                    revocations: int = 30, seed: int = 10) -> dict[str, Any]:
    """Warm a mediation cache, revoke unrelated tail credentials, and count
    the warm decisions that survive under decision-scoped fingerprints
    (the generation-flush stack lost all of them).  Every post-churn hit
    is verified against a forced re-mediation."""
    clock = SimulatedClock()
    session = KeyNoteSession(keystore=None, clock=clock,
                             verify_signatures=False)
    for credential in universe["policy_creds"]:
        session.add_policy(credential)
    for credential in (universe["org_creds"] + universe["team_creds"]
                       + universe["proxy_creds"]):
        session.add_credential(credential)
    stack = AuthorisationStack(clock=clock, cache_ttl=3600.0)
    stack.plug_trust_management(session)
    requests = [
        MediationRequest(user=f"u{user}", user_key=f"Kproxy{user}",
                         object_type="job", operation=op,
                         attributes=dict(_attrs(universe, user, op)))
        for user in range(warm_entries) for op in _OPS]
    for request in requests:
        stack.mediate(request)
    # Tail churn: revoke proxy credentials of users far outside the warm
    # set — plus ONE inside it, whose cached ALLOWs must now be refused.
    rng = random.Random(seed + 53)
    tail = rng.sample(range(universe["users"] - revocations * 2,
                            universe["users"]), revocations)
    for user in tail:
        session.revoke_credential(universe["proxy_creds"][user])
    session.revoke_credential(universe["proxy_creds"][0])
    hits_before = stack.cache_hits
    survived_before = stack.cache_survived_churn
    stale_serves = 0
    for request in requests:
        warm = stack.mediate(request)
        fresh_stack = AuthorisationStack(clock=clock, cache_ttl=None)
        fresh_stack.plug_trust_management(session)
        if warm.allowed != fresh_stack.mediate(request).allowed:
            stale_serves += 1
    return {
        "warm_entries": len(requests),
        "unrelated_revocations": revocations,
        "dependent_revocations": 1,
        "post_churn_hits": stack.cache_hits - hits_before,
        "survived_churn": stack.cache_survived_churn - survived_before,
        "invalidated": stack.cache_invalidated,
        "stale_serves": stale_serves,
        "cache": stack.cache_info(),
    }


def run_churn_bench(*, users: int = 400, teams: int = 20, orgs: int = 4,
                    steps: int = 60, queries_per_step: int = 8,
                    oracle_samples: int = 60, seed: int = 10,
                    ) -> dict[str, Any]:
    """Build the universe, run both invalidation modes over the identical
    schedule, cross-check them in lock-step, and sweep the oracles."""
    universe = build_delegation_universe(orgs=orgs, teams=teams,
                                         users=users, seed=seed)
    incremental = _run_churn_phase(universe, incremental=True, steps=steps,
                                   queries_per_step=queries_per_step,
                                   seed=seed)
    baseline = _run_churn_phase(universe, incremental=False, steps=steps,
                                queries_per_step=queries_per_step,
                                seed=seed)
    lockstep_disagreements = sum(
        1 for a, b in zip(incremental["answers"], baseline["answers"])
        if a != b)
    oracle = _oracle_cross_check(universe, incremental, oracle_samples, seed)
    ratio = incremental["hit_ratio"]
    base_ratio = baseline["hit_ratio"]
    improvement = (ratio / base_ratio if base_ratio
                   else float("inf") if ratio else 0.0)

    def phase_report(phase: dict[str, Any]) -> dict[str, Any]:
        return {key: phase[key] for key in
                ("incremental", "phase_s", "mutation_s", "per_update_us",
                 "hits", "misses", "hit_ratio", "cache")}

    return {
        "bench": "BENCH_10",
        "description": "incremental O(delta) invalidation vs "
                       "generation-flush under churn-heavy Zipfian mix",
        "universe": {"orgs": orgs, "teams": teams, "users": users,
                     "assertions": orgs + teams + 2 * users,
                     "churn_steps": steps,
                     "queries_per_step": queries_per_step,
                     "seed": seed},
        "incremental": phase_report(incremental),
        "baseline": phase_report(baseline),
        "hit_ratio_improvement": (round(improvement, 2)
                                  if improvement != float("inf")
                                  else None),
        "lockstep": {"queries": len(incremental["answers"]),
                     "disagreements": lockstep_disagreements},
        "oracle": oracle,
        "rbac_edge_churn": _rbac_edge_churn(seed=seed),
        "stack_survival": _stack_survival(universe, seed=seed),
    }


def check_churn_bench(report: dict[str, Any],
                      min_hit_improvement: float = 5.0,
                      max_update_cost_ratio: float = 1.2) -> list[str]:
    """The ``--check`` gates; returns failure strings (empty = pass)."""
    failures: list[str] = []
    improvement = report["hit_ratio_improvement"]
    if improvement is not None and improvement < min_hit_improvement:
        failures.append(
            f"warm-hit ratio under churn improved only "
            f"{improvement:.2f}x over generation-flush, below the "
            f"required {min_hit_improvement:.1f}x")
    incremental = report["incremental"]
    baseline = report["baseline"]
    if incremental["phase_s"] > baseline["phase_s"] * max_update_cost_ratio:
        failures.append(
            f"incremental churn phase took {incremental['phase_s']:.3f}s "
            f"vs baseline {baseline['phase_s']:.3f}s, above the "
            f"{max_update_cost_ratio:.1f}x per-update cost bound")
    if report["lockstep"]["disagreements"]:
        failures.append(
            f"{report['lockstep']['disagreements']} lock-step "
            f"disagreement(s) between incremental and baseline checkers")
    if report["oracle"]["disagreements"]:
        failures.append(
            f"{report['oracle']['disagreements']} oracle disagreement(s) "
            f"in the post-churn sample")
    edges = report["rbac_edge_churn"]
    if edges["hierarchy_rebuilds"]:
        failures.append(
            f"{edges['hierarchy_rebuilds']} hierarchy rebuild(s) during "
            f"edge churn — edge changes must be absorbed as deltas")
    if not edges["edge_deltas"]:
        failures.append("no edge deltas were recorded during edge churn")
    if edges["set_based_disagreements"] or edges["oracle"]["disagreements"]:
        failures.append(
            f"RBAC edge churn disagreements: "
            f"{edges['set_based_disagreements']} vs set-based, "
            f"{edges['oracle']['disagreements']} vs oracle")
    survival = report["stack_survival"]
    if not survival["survived_churn"]:
        failures.append("no mediation-cache entries survived unrelated "
                        "revocations — selective invalidation is inert")
    if not survival["invalidated"]:
        failures.append("the dependent revocation invalidated no "
                        "mediation-cache entries — stale decisions would "
                        "have been served")
    if survival["stale_serves"]:
        failures.append(
            f"{survival['stale_serves']} mediation hit(s) disagreed with a "
            f"forced re-mediation after churn")
    return failures

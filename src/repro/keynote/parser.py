"""Parsers for KeyNote condition expressions and whole credentials."""

from __future__ import annotations

import re

from repro.errors import KeyNoteSyntaxError
from repro.keynote.ast import (
    Attribute,
    Binary,
    Clause,
    ConditionsProgram,
    Deref,
    Expr,
    NumberLit,
    StringLit,
    Unary,
)
from repro.keynote.tokens import Token, TokenType, tokenize

# ---------------------------------------------------------------------------
# Expression / Conditions parsing
# ---------------------------------------------------------------------------


class _ExprParser:
    """Recursive-descent parser for the conditions grammar in ast.py."""

    def __init__(self, tokens: list[Token],
                 constants: dict[str, str] | None = None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._constants = constants or {}

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect_op(self, op: str) -> Token:
        tok = self._next()
        if not tok.is_op(op):
            raise KeyNoteSyntaxError(f"expected {op!r}, got {tok.value!r}",
                                     tok.line, tok.column)
        return tok

    def _at_end(self) -> bool:
        return self._peek().type is TokenType.EOF

    # -- entry points --------------------------------------------------------

    def parse_program(self) -> ConditionsProgram:
        clauses: list[Clause] = []
        while not self._at_end():
            clauses.append(self._clause())
            if self._peek().is_op(";"):
                self._next()
            elif not self._at_end() and not self._peek().is_op("}"):
                tok = self._peek()
                raise KeyNoteSyntaxError(
                    f"expected ';' between clauses, got {tok.value!r}",
                    tok.line, tok.column)
            if self._peek().is_op("}"):
                break
        if not clauses:
            raise KeyNoteSyntaxError("empty Conditions field")
        return ConditionsProgram(tuple(clauses))

    def parse_expression(self) -> Expr:
        expr = self._or_expr()
        if not self._at_end():
            tok = self._peek()
            raise KeyNoteSyntaxError(f"unexpected trailing token {tok.value!r}",
                                     tok.line, tok.column)
        return expr

    # -- grammar -------------------------------------------------------------

    def _clause(self) -> Clause:
        test = self._or_expr()
        if self._peek().is_op("->"):
            self._next()
            tok = self._peek()
            if tok.is_op("{"):
                self._next()
                inner = self.parse_program()
                self._expect_op("}")
                return Clause(test, inner)
            tok = self._next()
            if tok.type is TokenType.STRING:
                return Clause(test, tok.value)
            if tok.type is TokenType.IDENT:
                # _MIN_TRUST / _MAX_TRUST or a bare value name
                return Clause(test, tok.value)
            raise KeyNoteSyntaxError(
                f"expected compliance value after '->', got {tok.value!r}",
                tok.line, tok.column)
        return Clause(test, None)

    def _or_expr(self) -> Expr:
        expr = self._and_expr()
        while self._peek().is_op("||"):
            self._next()
            expr = Binary("||", expr, self._and_expr())
        return expr

    def _and_expr(self) -> Expr:
        expr = self._not_expr()
        while self._peek().is_op("&&"):
            self._next()
            expr = Binary("&&", expr, self._not_expr())
        return expr

    def _not_expr(self) -> Expr:
        if self._peek().is_op("!"):
            self._next()
            return Unary("!", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        expr = self._sum()
        if self._peek().is_op("==", "!=", "<", ">", "<=", ">=", "~="):
            op = self._next().value
            expr = Binary(op, expr, self._sum())
        return expr

    def _sum(self) -> Expr:
        expr = self._term()
        while self._peek().is_op("+", "-", "."):
            op = self._next().value
            expr = Binary(op, expr, self._term())
        return expr

    def _term(self) -> Expr:
        expr = self._factor()
        while self._peek().is_op("*", "/", "%"):
            op = self._next().value
            expr = Binary(op, expr, self._factor())
        return expr

    def _factor(self) -> Expr:
        base = self._power()
        if self._peek().is_op("^"):
            self._next()
            return Binary("^", base, self._factor())  # right associative
        return base

    def _power(self) -> Expr:
        if self._peek().is_op("-"):
            self._next()
            return Unary("-", self._power())
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._next()
        if tok.type is TokenType.NUMBER:
            return NumberLit(tok.value)
        if tok.type is TokenType.STRING:
            return StringLit(tok.value)
        if tok.type is TokenType.IDENT:
            if tok.value in ("true", "false"):
                # Reserved boolean literals (used for unconditional
                # delegation, e.g. `Conditions: true;`).
                return StringLit(tok.value)
            if tok.value in self._constants:
                return StringLit(self._constants[tok.value])
            return Attribute(tok.value)
        if tok.is_op("$"):
            return Deref(self._primary())
        if tok.is_op("("):
            expr = self._or_expr()
            self._expect_op(")")
            return expr
        raise KeyNoteSyntaxError(f"unexpected token {tok.value!r}",
                                 tok.line, tok.column)


def parse_conditions(text: str,
                     constants: dict[str, str] | None = None) -> ConditionsProgram:
    """Parse a Conditions field body into a program.

    :param constants: Local-Constants substitutions applied at parse time.
    :raises KeyNoteSyntaxError: on malformed input.
    """
    return _ExprParser(tokenize(text), constants).parse_program()


def parse_expression(text: str,
                     constants: dict[str, str] | None = None) -> Expr:
    """Parse a single expression (no clauses)."""
    return _ExprParser(tokenize(text), constants).parse_expression()


# ---------------------------------------------------------------------------
# Credential parsing
# ---------------------------------------------------------------------------

_FIELD_NAMES = (
    "keynote-version",
    "comment",
    "local-constants",
    "authorizer",
    "licensees",
    "conditions",
    "signature",
)

_FIELD_RE = re.compile(
    r"^\s*(" + "|".join(re.escape(f) for f in _FIELD_NAMES) + r")\s*:",
    re.IGNORECASE,
)


def split_fields(text: str) -> dict[str, str]:
    """Split credential text into its fields.

    Field values may span multiple lines; a new field starts at a line whose
    first token is a known field name followed by ``:`` (RFC 2704's layout).

    :raises KeyNoteSyntaxError: on duplicate or unknown leading content.
    """
    fields: dict[str, str] = {}
    current: str | None = None
    chunks: dict[str, list[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FIELD_RE.match(line)
        if match:
            name = match.group(1).lower()
            if name in chunks:
                raise KeyNoteSyntaxError(f"duplicate field {name!r}", lineno, 1)
            current = name
            chunks[name] = [line[match.end():]]
        elif current is not None:
            chunks[current].append(line)
        elif line.strip():
            raise KeyNoteSyntaxError(
                f"text before first field: {line.strip()[:30]!r}", lineno, 1)
    for name, lines in chunks.items():
        fields[name] = "\n".join(lines).strip()
    return fields


def parse_local_constants(body: str) -> dict[str, str]:
    """Parse a Local-Constants field: ``Name = "value"`` bindings."""
    constants: dict[str, str] = {}
    # Bindings are NAME = "string", whitespace separated.
    pattern = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)\s*=\s*"((?:[^"\\]|\\.)*)"')
    pos = 0
    body = body.strip()
    while pos < len(body):
        match = pattern.match(body, pos)
        if not match:
            raise KeyNoteSyntaxError(
                f"malformed Local-Constants near {body[pos:pos + 20]!r}")
        name, raw = match.group(1), match.group(2)
        constants[name] = raw.replace('\\"', '"').replace("\\\\", "\\")
        pos = match.end()
        while pos < len(body) and body[pos] in " \t\r\n;":
            pos += 1
    return constants


def parse_credential(text: str) -> "Credential":
    """Parse one credential from its textual form.

    :raises KeyNoteSyntaxError: on malformed credentials.
    """
    from repro.keynote.credential import Credential

    return Credential.from_text(text)


def parse_credentials(text: str) -> list["Credential"]:
    """Parse multiple credentials separated by blank lines.

    A new credential starts at each ``KeyNote-Version`` or ``Authorizer``
    field that follows a completed credential (one that already has an
    authorizer).
    """
    from repro.keynote.credential import Credential

    blocks: list[list[str]] = []
    current: list[str] = []
    seen_authorizer = False
    for line in text.splitlines():
        match = _FIELD_RE.match(line)
        name = match.group(1).lower() if match else None
        if name in ("keynote-version", "authorizer") and seen_authorizer:
            blocks.append(current)
            current = []
            seen_authorizer = False
        if name == "authorizer":
            seen_authorizer = True
        current.append(line)
    if any(line.strip() for line in current):
        blocks.append(current)
    return [Credential.from_text("\n".join(block)) for block in blocks
            if any(line.strip() for line in block)]

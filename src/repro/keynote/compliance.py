"""The KeyNote compliance checker (RFC 2704 section 5).

Given an *action attribute set*, the *action authorizers* (the keys that made
the request) and a set of assertions (policy + signed credentials), compute
the request's compliance value: the most-trusted value the POLICY principal
can be shown to assign to the requesters.

Semantics.  The value of an assertion ``(A, L, C)`` for a given request is::

    val(A, L, C) = meet( C(action attributes),
                         L evaluated over principal values )

where a principal ``k``'s value is ``_MAX_TRUST`` if ``k`` is one of the
action authorizers, and otherwise the join over all assertions authored by
``k`` of their values (delegation).  The request's compliance value is the
join over all POLICY assertions of their values.  The computation is a
monotone fixpoint over a finite lattice; we evaluate it by memoised
depth-first search where principals on the current path evaluate to
``_MIN_TRUST`` (cycles cannot raise trust — delegation loops grant nothing).

Both a memoised checker and a deliberately naive exponential-path variant are
provided; the DESIGN.md ablation compares them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.crypto.keystore import Keystore
from repro.errors import ComplianceError, CredentialError
from repro.keynote.credential import Credential
from repro.keynote.eval import ConditionEvaluator
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


@dataclass
class ComplianceStats:
    """Profiling counters for the delegation-graph search.

    ``memo_hits`` / ``memo_misses`` count memo-table lookups (both stay zero
    under ``memoise=False`` — the table is never consulted), so the
    memoised-vs-naive ablation is directly measurable.  ``max_depth`` is the
    deepest delegation chain the fixpoint descended; ``cycles_broken`` how
    often a principal on the current path was cut to minimum trust.
    """

    queries: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    assertions_visited: int = 0
    max_depth: int = 0
    cycles_broken: int = 0

    def merge(self, other: "ComplianceStats") -> None:
        """Accumulate another stats block into this one."""
        self.queries += other.queries
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.assertions_visited += other.assertions_visited
        self.max_depth = max(self.max_depth, other.max_depth)
        self.cycles_broken += other.cycles_broken

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.assertions_visited = 0
        self.max_depth = 0
        self.cycles_broken = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "assertions_visited": self.assertions_visited,
            "max_depth": self.max_depth,
            "cycles_broken": self.cycles_broken,
        }


@dataclass
class ComplianceChecker:
    """Evaluates queries against a fixed set of assertions.

    :param assertions: policy assertions and signed credentials.
    :param keystore: used to resolve symbolic principals when verifying
        signatures; optional if all principals are encoded keys.
    :param verify_signatures: if True (default), signed credentials with
        missing/invalid signatures are rejected.
    :param strict: if True, a bad signature raises
        :class:`~repro.errors.CredentialError`; if False (RFC behaviour) the
        assertion is silently discarded.
    :param memoise: disable only for the ablation benchmark.
    :param metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
        when set, the per-query profile (memo hits/misses, assertions
        visited, fixpoint depth) is mirrored into ``keynote.*`` metrics.

    Profiling: :attr:`stats` accumulates over the checker's lifetime and
    :attr:`last_query_stats` holds the profile of the most recent
    :meth:`query` alone.
    """

    assertions: Sequence[Credential]
    keystore: Keystore | None = None
    verify_signatures: bool = True
    strict: bool = False
    memoise: bool = True
    metrics: "MetricsRegistry | None" = None
    stats: ComplianceStats = field(init=False, repr=False,
                                   default_factory=ComplianceStats)
    last_query_stats: "ComplianceStats | None" = field(init=False, repr=False,
                                                       default=None)
    _by_authorizer: dict[str, list[Credential]] = field(init=False, repr=False)
    _discarded: list[Credential] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_authorizer = {}
        self._discarded = []
        for assertion in self.assertions:
            if self.verify_signatures and not assertion.verify(self.keystore):
                if self.strict:
                    raise CredentialError(
                        f"invalid signature on credential by "
                        f"{assertion.authorizer!r}")
                self._discarded.append(assertion)
                continue
            key = self._canonical(assertion.authorizer)
            self._by_authorizer.setdefault(key, []).append(assertion)

    @property
    def discarded(self) -> list[Credential]:
        """Assertions dropped for bad signatures (non-strict mode)."""
        return list(self._discarded)

    def _canonical(self, principal: str) -> str:
        """Canonical principal id: symbolic names resolve to encoded keys when
        a keystore knows them, so "Kbob" and the encoded key unify."""
        if principal.upper() == "POLICY":
            return "POLICY"
        if self.keystore is not None and principal in self.keystore:
            return self.keystore.public(principal).encode()
        return principal

    def query(self, attributes: Mapping[str, str],
              authorizers: Iterable[str],
              values: ComplianceValueSet = DEFAULT_VALUE_SET) -> str:
        """Return the compliance value of a request.

        :param attributes: the action attribute set.
        :param authorizers: the key(s) that made the request.
        :param values: the ordered compliance-value set to evaluate against.
        """
        requesters = {self._canonical(a) for a in authorizers}
        if not requesters:
            raise ComplianceError("a query needs at least one action authorizer")
        evaluator = ConditionEvaluator(attributes, values)
        profile = ComplianceStats(queries=1)
        memo: dict[str, str] = {}
        in_progress: set[str] = set()
        # Values computed while a cycle-break assumption was live may be
        # under-approximations; `tainted` tracks that so they are never
        # memoised (a cached under-approximation could wrongly deny a later
        # sub-query).  A maximum value is always safe to cache: monotonicity
        # means the true value can only be >= the computed one.
        tainted_flag = [False]

        def principal_value(principal: str) -> str:
            if principal in requesters:
                return values.maximum
            if self.memoise:
                if principal in memo:
                    profile.memo_hits += 1
                    return memo[principal]
                profile.memo_misses += 1
            if principal in in_progress:
                tainted_flag[0] = True
                profile.cycles_broken += 1
                return values.minimum  # delegation cycles grant nothing
            outer_taint = tainted_flag[0]
            tainted_flag[0] = False
            in_progress.add(principal)
            profile.max_depth = max(profile.max_depth, len(in_progress))
            try:
                result = values.minimum
                for assertion in self._by_authorizer.get(principal, ()):
                    profile.assertions_visited += 1
                    result = values.join([result,
                                          assertion_value(assertion)])
                    if result == values.maximum:
                        break
            finally:
                in_progress.discard(principal)
            subtree_tainted = tainted_flag[0]
            if self.memoise and (not subtree_tainted
                                 or result == values.maximum):
                memo[principal] = result
            tainted_flag[0] = outer_taint or subtree_tainted
            return result

        def assertion_value(assertion: Credential) -> str:
            conditions_value = evaluator.program_value(assertion.conditions)
            if conditions_value == values.minimum:
                return values.minimum
            licensee_value = assertion.licensees.value(
                lambda key: licensee_principal_value(key), values)
            return values.meet([conditions_value, licensee_value])

        def licensee_principal_value(principal: str) -> str:
            canonical = self._canonical(principal)
            if canonical in requesters:
                return values.maximum
            # Delegation: the licensee's own assertions must carry trust
            # onward to the requesters.
            return principal_value(canonical)

        try:
            return principal_value("POLICY")
        finally:
            self.last_query_stats = profile
            self.stats.merge(profile)
            if self.metrics is not None:
                self._record_metrics(profile)

    def _record_metrics(self, profile: ComplianceStats) -> None:
        metrics = self.metrics
        assert metrics is not None
        metrics.counter("keynote.queries").inc()
        metrics.counter("keynote.memo.hit").inc(profile.memo_hits)
        metrics.counter("keynote.memo.miss").inc(profile.memo_misses)
        metrics.counter("keynote.assertions_visited").inc(
            profile.assertions_visited)
        metrics.counter("keynote.cycles_broken").inc(profile.cycles_broken)
        metrics.histogram("keynote.fixpoint_depth").observe(profile.max_depth)

    def authorises(self, attributes: Mapping[str, str],
                   authorizers: Iterable[str],
                   values: ComplianceValueSet = DEFAULT_VALUE_SET,
                   threshold: str | None = None) -> bool:
        """Boolean convenience: True if the compliance value reaches
        ``threshold`` (default: the maximum value)."""
        target = threshold if threshold is not None else values.maximum
        return values.at_least(self.query(attributes, authorizers, values),
                               target)


def evaluate_query(assertions: Sequence[Credential],
                   attributes: Mapping[str, str],
                   authorizers: Iterable[str],
                   keystore: Keystore | None = None,
                   values: ComplianceValueSet = DEFAULT_VALUE_SET,
                   verify_signatures: bool = True,
                   strict: bool = False,
                   memoise: bool = True) -> str:
    """One-shot query without building a checker explicitly.

    ``strict`` and ``memoise`` behave exactly as on
    :class:`ComplianceChecker`, so a one-shot query is indistinguishable
    from an explicitly built checker with the same options.
    """
    checker = ComplianceChecker(assertions=list(assertions), keystore=keystore,
                                verify_signatures=verify_signatures,
                                strict=strict, memoise=memoise)
    return checker.query(attributes, authorizers, values)

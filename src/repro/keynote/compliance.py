"""The KeyNote compliance checker (RFC 2704 section 5).

Given an *action attribute set*, the *action authorizers* (the keys that made
the request) and a set of assertions (policy + signed credentials), compute
the request's compliance value: the most-trusted value the POLICY principal
can be shown to assign to the requesters.

Semantics.  The value of an assertion ``(A, L, C)`` for a given request is::

    val(A, L, C) = meet( C(action attributes),
                         L evaluated over principal values )

where a principal ``k``'s value is ``_MAX_TRUST`` if ``k`` is one of the
action authorizers, and otherwise the join over all assertions authored by
``k`` of their values (delegation).  The request's compliance value is the
join over all POLICY assertions of their values.  The computation is a
monotone fixpoint over a finite lattice; we evaluate it by memoised
depth-first search where principals on the current path evaluate to
``_MIN_TRUST`` (cycles cannot raise trust — delegation loops grant nothing).

Both a memoised checker and a deliberately naive exponential-path variant are
provided; the DESIGN.md ablation compares them.

Hot-path machinery (the authorisation fast path):

- construction precompiles every assertion's Conditions program
  (:func:`~repro.keynote.eval.compile_conditions`), canonicalises its
  authorizer once, and verifies its signature through the process-wide
  signature cache — per-query work is only the fixpoint itself;
- a *decision cache* memoises full query outcomes by (relevant attribute
  projection, canonical authorizer set, value set).  Values computed under a
  live cycle-break assumption are never cached (unless maximal, which
  monotonicity makes safe) — mirroring the in-query memo's taint rule;
- *incremental invalidation* (the default; ``incremental=False`` restores
  the PR 3 generation-flush behaviour for ablation): every cached decision
  records the set of canonical principals whose delegation sub-graphs the
  fixpoint actually descended and the set of assertions whose conditions it
  evaluated.  :meth:`ComplianceChecker.add_assertion` evicts only the
  decisions that visited the new assertion's authorizer;
  :meth:`ComplianceChecker.revoke_assertion` only the decisions that read
  the revoked assertion.  Soundness rests on monotonicity: an assertion
  authored by principal ``P`` can influence a decision only through
  ``principal_value(P)``, so a decision whose fixpoint never touched ``P``
  is unchanged by any mutation of ``P``'s assertions.  Every short-circuit
  in the search (max-join break, minimum-conditions skip, licensee
  early-outs) only *prunes* assertions of principals that were already
  visited, so the recorded principal set over-approximates the true read
  set.  When a mutation changes the shape of the referenced-attribute
  projection (the cache key function itself), the checker falls back to a
  conservative full flush (counted as ``full_flushes``);
- :meth:`ComplianceChecker.query_many` batches queries, sharing per-assertion
  condition evaluation across every query with the same attribute
  projection.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.crypto.keystore import Keystore
from repro.errors import ComplianceError, CredentialError
from repro.keynote.credential import Credential
from repro.keynote.eval import CompiledConditions, compile_conditions
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


def incremental_default() -> bool:
    """Resolve the process-wide invalidation default.

    ``REPRO_INCREMENTAL_INVALIDATION`` forces the choice (``0``/``false``/
    ``no``/``off`` restore generation-flush, anything else enables
    dependency-indexed selective eviction); unset means incremental on.
    """
    flag = os.environ.get("REPRO_INCREMENTAL_INVALIDATION")
    if flag is None:
        return True
    return flag.strip().lower() not in ("0", "false", "no", "off")


@dataclass
class ComplianceStats:
    """Profiling counters for the delegation-graph search.

    ``memo_hits`` / ``memo_misses`` count memo-table lookups (both stay zero
    under ``memoise=False`` — the table is never consulted), so the
    memoised-vs-naive ablation is directly measurable.  ``max_depth`` is the
    deepest delegation chain the fixpoint descended; ``cycles_broken`` how
    often a principal on the current path was cut to minimum trust.
    """

    queries: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    assertions_visited: int = 0
    max_depth: int = 0
    cycles_broken: int = 0

    def merge(self, other: "ComplianceStats") -> None:
        """Accumulate another stats block into this one."""
        self.queries += other.queries
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.assertions_visited += other.assertions_visited
        self.max_depth = max(self.max_depth, other.max_depth)
        self.cycles_broken += other.cycles_broken

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.assertions_visited = 0
        self.max_depth = 0
        self.cycles_broken = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "assertions_visited": self.assertions_visited,
            "max_depth": self.max_depth,
            "cycles_broken": self.cycles_broken,
        }


class _Prepared:
    """One admitted assertion with its per-checker precomputed state."""

    __slots__ = ("credential", "compiled")

    def __init__(self, credential: Credential,
                 compiled: CompiledConditions) -> None:
        self.credential = credential
        self.compiled = compiled


@dataclass
class ComplianceChecker:
    """Evaluates queries against a (mutable) set of assertions.

    :param assertions: policy assertions and signed credentials.
    :param keystore: used to resolve symbolic principals when verifying
        signatures; optional if all principals are encoded keys.
    :param verify_signatures: if True (default), signed credentials with
        missing/invalid signatures are rejected.
    :param strict: if True, a bad signature raises
        :class:`~repro.errors.CredentialError`; if False (RFC behaviour) the
        assertion is silently discarded.
    :param memoise: disable only for the ablation benchmark (this also
        disables the decision cache — naive mode measures the raw search).
    :param cache_decisions: memoise whole query outcomes until the assertion
        set changes.  Safe by construction: the cache key covers every
        attribute any assertion can read, the canonical authorizer set and
        the value set; :meth:`add_assertion` / :meth:`revoke_assertion` bump
        :attr:`generation` and evict the dependent entries.
    :param incremental: when True (the default, overridable with
        ``REPRO_INCREMENTAL_INVALIDATION``), mutations evict only the
        decisions whose recorded dependency sets intersect the delta; when
        False every mutation flushes the whole decision cache (the PR 3
        generation-flush baseline, kept as the ablation reference).
    :param metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
        when set, the per-query profile (memo hits/misses, assertions
        visited, fixpoint depth) is mirrored into ``keynote.*`` metrics and
        decision-cache traffic into ``keynote.cache.hit`` / ``.miss``.

    Profiling: :attr:`stats` accumulates over the checker's lifetime and
    :attr:`last_query_stats` holds the profile of the most recent
    :meth:`query` alone; :attr:`cache_hits` / :attr:`cache_misses` count
    decision-cache traffic.
    """

    assertions: Sequence[Credential]
    keystore: Keystore | None = None
    verify_signatures: bool = True
    strict: bool = False
    memoise: bool = True
    cache_decisions: bool = True
    incremental: bool = field(default_factory=incremental_default)
    metrics: "MetricsRegistry | None" = None
    stats: ComplianceStats = field(init=False, repr=False,
                                   default_factory=ComplianceStats)
    last_query_stats: "ComplianceStats | None" = field(init=False, repr=False,
                                                       default=None)
    _by_authorizer: dict[str, list[_Prepared]] = field(init=False, repr=False)
    _discarded: list[Credential] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_authorizer = {}
        self._discarded = []
        self._canon_cache: dict[str, str] = {}
        self._decision_cache: dict[tuple, str] = {}
        #: serialises assertion-set mutation against decision-cache traffic;
        #: concurrent serve handlers (or threaded harnesses) may interleave
        #: query with add/revoke, and a torn generation bump could otherwise
        #: let a stale ALLOW be re-cached as fresh
        self._mutation_lock = threading.RLock()
        self._generation = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: dependency index: decision key -> (canonical principals whose
        #: sub-graphs the fixpoint descended, ids of prepared assertions
        #: whose conditions it evaluated), plus the two inverted indexes
        #: mutations consult to find their dependents
        self._decision_deps: dict[tuple, tuple[frozenset, frozenset]] = {}
        self._principal_index: dict[str, set[tuple]] = {}
        self._assertion_index: dict[int, set[tuple]] = {}
        self.selective_evictions = 0
        self.survived_churn = 0
        self.full_flushes = 0
        #: attributes any assertion may read; None once a ``$`` dereference
        #: makes the read set dynamic (falls back to full-attribute keys)
        self._referenced: "set[str] | None" = set()
        self._referenced_key: "tuple[str, ...] | None" = ()
        self.assertions = list(self.assertions)
        for assertion in self.assertions:
            self._admit(assertion)

    # -- assertion-set management ---------------------------------------------

    @property
    def generation(self) -> int:
        """Bumped whenever the assertion set changes.  Under incremental
        invalidation it is a pure mutation epoch (the in-flight store guard
        and session fingerprints key on it); under ``incremental=False``
        it additionally marks a full cache flush."""
        return self._generation

    @property
    def discarded(self) -> list[Credential]:
        """Assertions dropped for bad signatures (non-strict mode)."""
        return list(self._discarded)

    def add_assertion(self, assertion: Credential) -> bool:
        """Admit one more assertion; bumps the generation.

        Returns True if the assertion was admitted (False when its signature
        was rejected in non-strict mode).  Under incremental invalidation
        only the cached decisions whose fixpoint visited the new assertion's
        authorizer are evicted — decisions that never descended into that
        principal's sub-graph cannot change (monotonicity) and survive.

        :raises CredentialError: for a bad signature in strict mode.
        """
        with self._mutation_lock:
            old_shape = self._referenced_key
            self.assertions.append(assertion)  # type: ignore[union-attr]
            admitted = self._admit(assertion)
            if self.incremental and admitted:
                if self._referenced_key != old_shape:
                    # The cache key function itself changed; selective
                    # eviction cannot address old-projection entries.
                    self._full_flush_on_churn()
                else:
                    self._evict_dependents(
                        principals=(self._canonical(assertion.authorizer),))
            self._bump_generation()
            return admitted

    def revoke_assertion(self, assertion: Credential) -> bool:
        """Remove one assertion; bumps the generation on success.

        Under incremental invalidation only the decisions whose fixpoint
        evaluated the revoked assertion are evicted — revocation propagates
        through the delegation graph exactly as far as the dependency index
        recorded, and unrelated warm decisions survive.

        Eviction ordering (pinned by test): dependents are evicted and the
        generation bumped *before* the prepared entry leaves
        ``_by_authorizer`` and before the memoised ``_canonical`` /
        referenced-attribute state is rebuilt, all inside the mutation
        lock — a concurrent :meth:`query` either sees the fully-old state
        (and its epoch-guarded store refuses to cache) or the fully-new
        one; it can never hit a stale entry for a half-applied delta.
        """
        with self._mutation_lock:
            key = self._canonical(assertion.authorizer)
            entries = self._by_authorizer.get(key, [])
            for index, prepared in enumerate(entries):
                if prepared.credential == assertion:
                    old_shape = self._referenced_key
                    if self.incremental:
                        self._evict_dependents(assertion_ids=(id(prepared),))
                    self._bump_generation()
                    del entries[index]
                    if not entries:
                        self._by_authorizer.pop(key, None)
                    try:
                        self.assertions.remove(assertion)  # type: ignore[union-attr]
                    except ValueError:
                        pass
                    self._rebuild_referenced()
                    if self.incremental and self._referenced_key != old_shape:
                        self._full_flush_on_churn()
                    return True
            return False

    def _admit(self, assertion: Credential) -> bool:
        if self.verify_signatures and not assertion.verify(self.keystore):
            if self.strict:
                raise CredentialError(
                    f"invalid signature on credential by "
                    f"{assertion.authorizer!r}")
            self._discarded.append(assertion)
            return False
        prepared = _Prepared(assertion, compile_conditions(assertion.conditions))
        key = self._canonical(assertion.authorizer)
        self._by_authorizer.setdefault(key, []).append(prepared)
        self._extend_referenced(prepared)
        return True

    def _extend_referenced(self, prepared: _Prepared) -> None:
        if self._referenced is None:
            return
        names = prepared.compiled.referenced_attributes()
        if names is None:
            self._referenced = None
            self._referenced_key = None
        else:
            self._referenced |= names
            self._referenced_key = tuple(sorted(self._referenced))

    def _rebuild_referenced(self) -> None:
        self._referenced = set()
        self._referenced_key = ()
        for entries in self._by_authorizer.values():
            for prepared in entries:
                self._extend_referenced(prepared)
                if self._referenced is None:
                    return

    def _bump_generation(self) -> None:
        with self._mutation_lock:
            self._generation += 1
            # Canonicalisation may change too (e.g. a key registered since).
            self._canon_cache.clear()
            if not self.incremental:
                # Generation-flush baseline: every mutation clears the
                # whole decision cache.
                self._flush_decisions()

    def _flush_decisions(self) -> None:
        self._decision_cache.clear()
        self._decision_deps.clear()
        self._principal_index.clear()
        self._assertion_index.clear()

    def _full_flush_on_churn(self) -> None:
        """Conservative fallback when a delta invalidates the cache *key
        function* (referenced-attribute projection shape changed)."""
        self.full_flushes += 1
        if self.metrics is not None:
            self.metrics.counter("keynote.cache.full_flush").inc()
        self._flush_decisions()

    def _evict_dependents(self, principals: Iterable[str] = (),
                          assertion_ids: Iterable[int] = ()) -> int:
        """Drop every cached decision whose dependency sets intersect the
        delta; returns the eviction count.  Entries that survive are, by
        the monotonicity argument in the module docstring, still equal to
        a cold recompute."""
        victims: set[tuple] = set()
        for principal in principals:
            victims |= self._principal_index.get(principal, set())
        for assertion_id in assertion_ids:
            victims |= self._assertion_index.get(assertion_id, set())
        for key in victims:
            self._drop_entry(key)
        survived = len(self._decision_cache)
        self.selective_evictions += len(victims)
        self.survived_churn += survived
        if self.metrics is not None:
            self.metrics.counter(
                "keynote.cache.selective_evictions").inc(len(victims))
            self.metrics.counter(
                "keynote.cache.survived_churn").inc(survived)
        return len(victims)

    def _drop_entry(self, key: tuple) -> None:
        self._decision_cache.pop(key, None)
        principals, assertion_ids = self._decision_deps.pop(
            key, ((), ()))
        for principal in principals:
            bucket = self._principal_index.get(principal)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._principal_index[principal]
        for assertion_id in assertion_ids:
            bucket = self._assertion_index.get(assertion_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._assertion_index[assertion_id]

    def clear_decision_cache(self) -> None:
        """Flush cached decisions without touching the assertion set (cold
        restart for benchmarks)."""
        with self._mutation_lock:
            self._flush_decisions()

    def cache_info(self) -> dict[str, int]:
        """Decision-cache statistics: size, generation, hit/miss counts and
        the churn-survival counters the bench artifact reports."""
        with self._mutation_lock:
            return {"entries": len(self._decision_cache),
                    "generation": self._generation,
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "incremental": int(self.incremental),
                    "selective_evictions": self.selective_evictions,
                    "survived_churn": self.survived_churn,
                    "full_flushes": self.full_flushes}

    def cached_decision(self, attributes: Mapping[str, str],
                        authorizers: Iterable[str],
                        values: ComplianceValueSet = DEFAULT_VALUE_SET,
                        ) -> "tuple[tuple, str | None]":
        """The decision key for a request and its currently cached value
        (None when absent).  Does not run the fixpoint and does not count
        as cache traffic — the stack-mediation cache uses this to scope
        its entry fingerprints to one decision instead of the whole
        assertion set."""
        with self._mutation_lock:
            requesters = frozenset(self._canonical(a) for a in authorizers)
            key = (self._attr_key(attributes), requesters, values.values)
            return key, self._decision_cache.get(key)

    def _canonical(self, principal: str) -> str:
        """Canonical principal id, memoised per checker: symbolic names
        resolve to encoded keys when a keystore knows them, so "Kbob" and
        the encoded key unify.  The memo is flushed on generation bumps (a
        name may have been registered since)."""
        with self._mutation_lock:
            cached = self._canon_cache.get(principal)
            if cached is None:
                if principal.upper() == "POLICY":
                    cached = "POLICY"
                elif self.keystore is not None and principal in self.keystore:
                    cached = self.keystore.public(principal).encode()
                else:
                    cached = principal
                self._canon_cache[principal] = cached
            return cached

    # -- queries ---------------------------------------------------------------

    def query(self, attributes: Mapping[str, str],
              authorizers: Iterable[str],
              values: ComplianceValueSet = DEFAULT_VALUE_SET) -> str:
        """Return the compliance value of a request.

        :param attributes: the action attribute set.
        :param authorizers: the key(s) that made the request.
        :param values: the ordered compliance-value set to evaluate against.
        """
        return self._query(attributes, authorizers, values, None)

    def query_many(self, requests: Sequence[tuple[Mapping[str, str],
                                                  Iterable[str]]],
                   values: ComplianceValueSet = DEFAULT_VALUE_SET,
                   ) -> list[str]:
        """Evaluate a batch of ``(attributes, authorizers)`` requests.

        Returns one compliance value per request, in order — each identical
        to what :meth:`query` would return — but condition programs are
        evaluated once per (assertion, attribute projection) across the
        whole batch instead of once per request, and decision-cache hits
        skip the fixpoint entirely.
        """
        results: list[str] = []
        cond_memos: dict[tuple, dict[int, str]] = {}
        for attributes, authorizers in requests:
            memo_key = (self._attr_key(attributes), values.values)
            cond_memo = cond_memos.setdefault(memo_key, {})
            results.append(self._query(attributes, authorizers, values,
                                       cond_memo))
        return results

    def _attr_key(self, attributes: Mapping[str, str]) -> tuple:
        """The attribute projection that can influence a decision.

        Only attributes some assertion reads are part of the cache key;
        unreferenced attributes (a ``_cur_time`` no credential tests, say)
        cannot change the outcome, so they must not fragment the cache.
        With a ``$`` dereference anywhere the read set is dynamic and the
        full attribute set is keyed.
        """
        if self._referenced_key is None:
            return tuple(sorted(attributes.items()))
        return tuple((name, attributes.get(name, ""))
                     for name in self._referenced_key)

    def _query(self, attributes: Mapping[str, str],
               authorizers: Iterable[str],
               values: ComplianceValueSet,
               cond_memo: "dict[int, str] | None") -> str:
        requesters = frozenset(self._canonical(a) for a in authorizers)
        if not requesters:
            raise ComplianceError("a query needs at least one action authorizer")
        # Naive mode exists to measure the raw search; serving it from a
        # decision cache would defeat the ablation.
        use_cache = self.cache_decisions and self.memoise
        cache_key = None
        cached_generation = None
        if use_cache:
            with self._mutation_lock:
                cache_key = (self._attr_key(attributes), requesters,
                             values.values)
                cached = self._decision_cache.get(cache_key)
                cached_generation = self._generation
            if cached is not None:
                self.cache_hits += 1
                profile = ComplianceStats(queries=1)
                self.last_query_stats = profile
                self.stats.merge(profile)
                if self.metrics is not None:
                    self.metrics.counter("keynote.queries").inc()
                    self.metrics.counter("keynote.cache.hit").inc()
                return cached
            self.cache_misses += 1
            if self.metrics is not None:
                self.metrics.counter("keynote.cache.miss").inc()
        profile = ComplianceStats(queries=1)
        deps = ((set(), set()) if use_cache and self.incremental else None)
        try:
            result = self._evaluate(attributes, requesters, values, profile,
                                    cond_memo, deps)
        finally:
            self.last_query_stats = profile
            self.stats.merge(profile)
            if self.metrics is not None:
                self._record_metrics(profile)
        if use_cache and (profile.cycles_broken == 0
                          or result == values.maximum):
            # The taint rule of the in-query memo, applied to whole
            # decisions: a value computed under a cycle-break assumption may
            # be an under-approximation and is never cached — unless it is
            # already the maximum, which monotonicity makes safe.
            with self._mutation_lock:
                if self._generation == cached_generation:
                    # A concurrent add/revoke bumped the generation while
                    # this fixpoint ran: the value was computed over an
                    # assertion set that no longer exists, so it must not
                    # seed the *fresh* cache.  (This also guarantees the
                    # dependency sets below refer to live prepared
                    # assertions.)
                    self._decision_cache[cache_key] = result
                    if deps is not None:
                        self._remember_deps(cache_key, deps)
        return result

    def _remember_deps(self, key: tuple,
                       deps: "tuple[set, set]") -> None:
        principals, assertion_ids = deps
        self._decision_deps[key] = (frozenset(principals),
                                    frozenset(assertion_ids))
        for principal in principals:
            self._principal_index.setdefault(principal, set()).add(key)
        for assertion_id in assertion_ids:
            self._assertion_index.setdefault(assertion_id, set()).add(key)

    def _evaluate(self, attributes: Mapping[str, str],
                  requesters: frozenset, values: ComplianceValueSet,
                  profile: ComplianceStats,
                  cond_memo: "dict[int, str] | None",
                  deps: "tuple[set, set] | None" = None) -> str:
        """One fixpoint run; ``cond_memo`` (shared across a batch) memoises
        per-assertion condition values for this attribute projection.

        When ``deps`` is given, the search records into it every canonical
        principal whose sub-graph it descended (``deps[0]``) and the id of
        every prepared assertion whose value it read (``deps[1]``) — the
        dependency sets selective eviction later consults.  Requester
        short-circuits are deliberately *not* recorded: a requester's own
        assertions are never read, so mutations of them cannot change this
        decision."""
        if cond_memo is None:
            cond_memo = {}
        memo: dict[str, str] = {}
        in_progress: set[str] = set()
        # Values computed while a cycle-break assumption was live may be
        # under-approximations; `tainted` tracks that so they are never
        # memoised (a cached under-approximation could wrongly deny a later
        # sub-query).  A maximum value is always safe to cache: monotonicity
        # means the true value can only be >= the computed one.
        tainted_flag = [False]

        def principal_value(principal: str) -> str:
            if principal in requesters:
                return values.maximum
            if deps is not None:
                # Recorded before the memo check: the first (miss) visit
                # records the principal, so later memo hits are covered.
                deps[0].add(principal)
            if self.memoise:
                if principal in memo:
                    profile.memo_hits += 1
                    return memo[principal]
                profile.memo_misses += 1
            if principal in in_progress:
                tainted_flag[0] = True
                profile.cycles_broken += 1
                return values.minimum  # delegation cycles grant nothing
            outer_taint = tainted_flag[0]
            tainted_flag[0] = False
            in_progress.add(principal)
            profile.max_depth = max(profile.max_depth, len(in_progress))
            try:
                result = values.minimum
                for prepared in self._by_authorizer.get(principal, ()):
                    profile.assertions_visited += 1
                    result = values.join([result,
                                          assertion_value(prepared)])
                    if result == values.maximum:
                        break
            finally:
                in_progress.discard(principal)
            subtree_tainted = tainted_flag[0]
            if self.memoise and (not subtree_tainted
                                 or result == values.maximum):
                memo[principal] = result
            tainted_flag[0] = outer_taint or subtree_tainted
            return result

        def assertion_value(prepared: _Prepared) -> str:
            if deps is not None:
                deps[1].add(id(prepared))
            conditions_value = cond_memo.get(id(prepared))
            if conditions_value is None:
                conditions_value = prepared.compiled.value(attributes, values)
                cond_memo[id(prepared)] = conditions_value
            if conditions_value == values.minimum:
                return values.minimum
            licensee_value = prepared.credential.licensees.value(
                lambda key: licensee_principal_value(key), values)
            return values.meet([conditions_value, licensee_value])

        def licensee_principal_value(principal: str) -> str:
            canonical = self._canonical(principal)
            if canonical in requesters:
                return values.maximum
            # Delegation: the licensee's own assertions must carry trust
            # onward to the requesters.
            return principal_value(canonical)

        return principal_value("POLICY")

    def _record_metrics(self, profile: ComplianceStats) -> None:
        metrics = self.metrics
        assert metrics is not None
        metrics.counter("keynote.queries").inc()
        metrics.counter("keynote.memo.hit").inc(profile.memo_hits)
        metrics.counter("keynote.memo.miss").inc(profile.memo_misses)
        metrics.counter("keynote.assertions_visited").inc(
            profile.assertions_visited)
        metrics.counter("keynote.cycles_broken").inc(profile.cycles_broken)
        metrics.histogram("keynote.fixpoint_depth").observe(profile.max_depth)

    def authorises(self, attributes: Mapping[str, str],
                   authorizers: Iterable[str],
                   values: ComplianceValueSet = DEFAULT_VALUE_SET,
                   threshold: str | None = None) -> bool:
        """Boolean convenience: True if the compliance value reaches
        ``threshold`` (default: the maximum value)."""
        target = threshold if threshold is not None else values.maximum
        return values.at_least(self.query(attributes, authorizers, values),
                               target)


def evaluate_query(assertions: Sequence[Credential],
                   attributes: Mapping[str, str],
                   authorizers: Iterable[str],
                   keystore: Keystore | None = None,
                   values: ComplianceValueSet = DEFAULT_VALUE_SET,
                   verify_signatures: bool = True,
                   strict: bool = False,
                   memoise: bool = True) -> str:
    """One-shot query without building a checker explicitly.

    ``strict`` and ``memoise`` behave exactly as on
    :class:`ComplianceChecker`, so a one-shot query is indistinguishable
    from an explicitly built checker with the same options.  Signature
    verification rides the process-wide cache
    (:data:`~repro.crypto.keystore.SIGNATURE_CACHE`): repeated one-shot
    calls over the same credentials verify each signature once, not once
    per call.
    """
    checker = ComplianceChecker(assertions=list(assertions), keystore=keystore,
                                verify_signatures=verify_signatures,
                                strict=strict, memoise=memoise)
    return checker.query(attributes, authorizers, values)

"""The KeyNote compliance checker (RFC 2704 section 5).

Given an *action attribute set*, the *action authorizers* (the keys that made
the request) and a set of assertions (policy + signed credentials), compute
the request's compliance value: the most-trusted value the POLICY principal
can be shown to assign to the requesters.

Semantics.  The value of an assertion ``(A, L, C)`` for a given request is::

    val(A, L, C) = meet( C(action attributes),
                         L evaluated over principal values )

where a principal ``k``'s value is ``_MAX_TRUST`` if ``k`` is one of the
action authorizers, and otherwise the join over all assertions authored by
``k`` of their values (delegation).  The request's compliance value is the
join over all POLICY assertions of their values.  The computation is a
monotone fixpoint over a finite lattice; we evaluate it by memoised
depth-first search where principals on the current path evaluate to
``_MIN_TRUST`` (cycles cannot raise trust — delegation loops grant nothing).

Both a memoised checker and a deliberately naive exponential-path variant are
provided; the DESIGN.md ablation compares them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.crypto.keystore import Keystore
from repro.errors import ComplianceError, CredentialError
from repro.keynote.credential import Credential
from repro.keynote.eval import ConditionEvaluator
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet


@dataclass
class ComplianceChecker:
    """Evaluates queries against a fixed set of assertions.

    :param assertions: policy assertions and signed credentials.
    :param keystore: used to resolve symbolic principals when verifying
        signatures; optional if all principals are encoded keys.
    :param verify_signatures: if True (default), signed credentials with
        missing/invalid signatures are rejected.
    :param strict: if True, a bad signature raises
        :class:`~repro.errors.CredentialError`; if False (RFC behaviour) the
        assertion is silently discarded.
    :param memoise: disable only for the ablation benchmark.
    """

    assertions: Sequence[Credential]
    keystore: Keystore | None = None
    verify_signatures: bool = True
    strict: bool = False
    memoise: bool = True
    _by_authorizer: dict[str, list[Credential]] = field(init=False, repr=False)
    _discarded: list[Credential] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_authorizer = {}
        self._discarded = []
        for assertion in self.assertions:
            if self.verify_signatures and not assertion.verify(self.keystore):
                if self.strict:
                    raise CredentialError(
                        f"invalid signature on credential by "
                        f"{assertion.authorizer!r}")
                self._discarded.append(assertion)
                continue
            key = self._canonical(assertion.authorizer)
            self._by_authorizer.setdefault(key, []).append(assertion)

    @property
    def discarded(self) -> list[Credential]:
        """Assertions dropped for bad signatures (non-strict mode)."""
        return list(self._discarded)

    def _canonical(self, principal: str) -> str:
        """Canonical principal id: symbolic names resolve to encoded keys when
        a keystore knows them, so "Kbob" and the encoded key unify."""
        if principal.upper() == "POLICY":
            return "POLICY"
        if self.keystore is not None and principal in self.keystore:
            return self.keystore.public(principal).encode()
        return principal

    def query(self, attributes: Mapping[str, str],
              authorizers: Iterable[str],
              values: ComplianceValueSet = DEFAULT_VALUE_SET) -> str:
        """Return the compliance value of a request.

        :param attributes: the action attribute set.
        :param authorizers: the key(s) that made the request.
        :param values: the ordered compliance-value set to evaluate against.
        """
        requesters = {self._canonical(a) for a in authorizers}
        if not requesters:
            raise ComplianceError("a query needs at least one action authorizer")
        evaluator = ConditionEvaluator(attributes, values)
        memo: dict[str, str] = {}
        in_progress: set[str] = set()
        # Values computed while a cycle-break assumption was live may be
        # under-approximations; `tainted` tracks that so they are never
        # memoised (a cached under-approximation could wrongly deny a later
        # sub-query).  A maximum value is always safe to cache: monotonicity
        # means the true value can only be >= the computed one.
        tainted_flag = [False]

        def principal_value(principal: str) -> str:
            if principal in requesters:
                return values.maximum
            if self.memoise and principal in memo:
                return memo[principal]
            if principal in in_progress:
                tainted_flag[0] = True
                return values.minimum  # delegation cycles grant nothing
            outer_taint = tainted_flag[0]
            tainted_flag[0] = False
            in_progress.add(principal)
            try:
                result = values.minimum
                for assertion in self._by_authorizer.get(principal, ()):
                    result = values.join([result,
                                          assertion_value(assertion)])
                    if result == values.maximum:
                        break
            finally:
                in_progress.discard(principal)
            subtree_tainted = tainted_flag[0]
            if self.memoise and (not subtree_tainted
                                 or result == values.maximum):
                memo[principal] = result
            tainted_flag[0] = outer_taint or subtree_tainted
            return result

        def assertion_value(assertion: Credential) -> str:
            conditions_value = evaluator.program_value(assertion.conditions)
            if conditions_value == values.minimum:
                return values.minimum
            licensee_value = assertion.licensees.value(
                lambda key: licensee_principal_value(key), values)
            return values.meet([conditions_value, licensee_value])

        def licensee_principal_value(principal: str) -> str:
            canonical = self._canonical(principal)
            if canonical in requesters:
                return values.maximum
            # Delegation: the licensee's own assertions must carry trust
            # onward to the requesters.
            return principal_value(canonical)

        return principal_value("POLICY")

    def authorises(self, attributes: Mapping[str, str],
                   authorizers: Iterable[str],
                   values: ComplianceValueSet = DEFAULT_VALUE_SET,
                   threshold: str | None = None) -> bool:
        """Boolean convenience: True if the compliance value reaches
        ``threshold`` (default: the maximum value)."""
        target = threshold if threshold is not None else values.maximum
        return values.at_least(self.query(attributes, authorizers, values),
                               target)


def evaluate_query(assertions: Sequence[Credential],
                   attributes: Mapping[str, str],
                   authorizers: Iterable[str],
                   keystore: Keystore | None = None,
                   values: ComplianceValueSet = DEFAULT_VALUE_SET,
                   verify_signatures: bool = True) -> str:
    """One-shot query without building a checker explicitly."""
    checker = ComplianceChecker(assertions=list(assertions), keystore=keystore,
                                verify_signatures=verify_signatures)
    return checker.query(attributes, authorizers, values)

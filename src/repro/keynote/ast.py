"""AST nodes for the KeyNote condition expression language.

Grammar implemented (an RFC-2704-faithful subset plus the ``k-of`` licensee
threshold extension used by several KeyNote deployments)::

    conditions := clause (';' clause)* [';']
    clause     := or_expr [ '->' (STRING | '{' conditions '}') ]
    or_expr    := and_expr ('||' and_expr)*
    and_expr   := not_expr ('&&' not_expr)*
    not_expr   := '!' not_expr | comparison
    comparison := sum (('=='|'!='|'<'|'>'|'<='|'>='|'~=') sum)?
    sum        := term (('+'|'-'|'.') term)*
    term       := factor (('*'|'/'|'%') factor)*
    factor     := power ('^' power)?          (right associative)
    power      := '-' power | primary
    primary    := NUMBER | STRING | IDENT | '$' primary | '(' or_expr ')'

Nodes carry no evaluation logic; :mod:`repro.keynote.eval` walks them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Expr = Union["StringLit", "NumberLit", "Attribute", "Deref", "Unary", "Binary"]


@dataclass(frozen=True)
class StringLit:
    """A quoted string literal."""

    value: str


@dataclass(frozen=True)
class NumberLit:
    """A numeric literal; kept as text so 1 and 1.0 compare numerically."""

    literal: str


@dataclass(frozen=True)
class Attribute:
    """A reference to an action attribute (or local constant, resolved at
    parse time)."""

    name: str


@dataclass(frozen=True)
class Deref:
    """``$expr``: the attribute whose *name* is the value of ``expr``."""

    inner: Expr


@dataclass(frozen=True)
class Unary:
    """``!e`` (logical not) or ``-e`` (numeric negation)."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary:
    """Any binary operator: comparisons, arithmetic, logic, ``~=``, ``.``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Clause:
    """One conditions clause: ``test`` optionally yielding ``value``.

    ``value`` is a compliance-value name, a nested program (from ``{...}``),
    or None meaning ``_MAX_TRUST`` when the test holds.
    """

    test: Expr
    value: Union[str, "ConditionsProgram", None] = None


@dataclass(frozen=True)
class ConditionsProgram:
    """A full Conditions field: an ordered sequence of clauses.

    The program's compliance value is the join (max) of the values of all
    clauses whose tests hold.
    """

    clauses: tuple[Clause, ...]

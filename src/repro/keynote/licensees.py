"""Licensee expressions.

The ``Licensees`` field of a credential names the principals being delegated
to, combined with ``&&`` (all must concur), ``||`` (any suffices) and the
``k-of(p1, ..., pn)`` threshold (any k must concur)::

    Licensees: "Kalice" || ("Kbob" && "Kcarol") || 2-of("Kx","Ky","Kz")

Evaluation is over an assignment of compliance values to principals:
``&&`` takes the meet (min), ``||`` the join (max), and ``k-of`` the k-th
largest — exactly the monotone semantics RFC 2704 gives threshold
delegation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.errors import KeyNoteSyntaxError
from repro.keynote.tokens import Token, TokenType, tokenize
from repro.keynote.values import ComplianceValueSet

LicenseeExpr = Union["Principal", "AllOf", "AnyOf", "Threshold"]


@dataclass(frozen=True)
class Principal:
    """A single principal (public key or symbolic name)."""

    key: str

    def principals(self) -> frozenset[str]:
        return frozenset({self.key})

    def value(self, lookup: Callable[[str], str],
              values: ComplianceValueSet) -> str:
        return lookup(self.key)


@dataclass(frozen=True)
class AllOf:
    """Conjunction: every sub-expression must concur (meet)."""

    parts: tuple[LicenseeExpr, ...]

    def principals(self) -> frozenset[str]:
        return frozenset().union(*(p.principals() for p in self.parts))

    def value(self, lookup: Callable[[str], str],
              values: ComplianceValueSet) -> str:
        return values.meet([p.value(lookup, values) for p in self.parts])


@dataclass(frozen=True)
class AnyOf:
    """Disjunction: any sub-expression suffices (join)."""

    parts: tuple[LicenseeExpr, ...]

    def principals(self) -> frozenset[str]:
        return frozenset().union(*(p.principals() for p in self.parts))

    def value(self, lookup: Callable[[str], str],
              values: ComplianceValueSet) -> str:
        return values.join([p.value(lookup, values) for p in self.parts])


@dataclass(frozen=True)
class Threshold:
    """``k-of(e1, ..., en)``: the k-th largest sub-expression value."""

    k: int
    parts: tuple[LicenseeExpr, ...]

    def __post_init__(self) -> None:
        if self.k < 1 or self.k > len(self.parts):
            raise KeyNoteSyntaxError(
                f"threshold {self.k}-of({len(self.parts)} parts) is "
                f"unsatisfiable; k must be between 1 and the part count")

    def principals(self) -> frozenset[str]:
        return frozenset().union(*(p.principals() for p in self.parts))

    def value(self, lookup: Callable[[str], str],
              values: ComplianceValueSet) -> str:
        return values.kth_largest(
            [p.value(lookup, values) for p in self.parts], self.k)


class _LicenseeParser:
    """Recursive-descent parser for licensee expressions."""

    def __init__(self, tokens: list[Token],
                 constants: dict[str, str] | None = None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._constants = constants or {}

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect_op(self, op: str) -> None:
        tok = self._next()
        if not tok.is_op(op):
            raise KeyNoteSyntaxError(f"expected {op!r}, got {tok.value!r}",
                                     tok.line, tok.column)

    def parse(self) -> LicenseeExpr:
        expr = self._or_expr()
        tok = self._peek()
        if tok.type is not TokenType.EOF:
            raise KeyNoteSyntaxError(
                f"unexpected trailing token {tok.value!r}", tok.line, tok.column)
        return expr

    def _or_expr(self) -> LicenseeExpr:
        parts = [self._and_expr()]
        while self._peek().is_op("||"):
            self._next()
            parts.append(self._and_expr())
        return parts[0] if len(parts) == 1 else AnyOf(tuple(parts))

    def _and_expr(self) -> LicenseeExpr:
        parts = [self._primary()]
        while self._peek().is_op("&&"):
            self._next()
            parts.append(self._primary())
        return parts[0] if len(parts) == 1 else AllOf(tuple(parts))

    def _primary(self) -> LicenseeExpr:
        tok = self._next()
        if tok.type is TokenType.STRING:
            return Principal(tok.value)
        if tok.type is TokenType.IDENT:
            # A local constant standing for a key.
            if tok.value in self._constants:
                return Principal(self._constants[tok.value])
            return Principal(tok.value)
        if tok.type is TokenType.NUMBER:
            # Threshold: NUMBER '-' 'of' '(' list ')'
            self._expect_op("-")
            of = self._next()
            if of.type is not TokenType.IDENT or of.value != "of":
                raise KeyNoteSyntaxError("expected 'of' after threshold count",
                                         of.line, of.column)
            self._expect_op("(")
            parts = [self._or_expr()]
            while self._peek().is_op(","):
                self._next()
                parts.append(self._or_expr())
            self._expect_op(")")
            try:
                k = int(tok.value)
            except ValueError:
                raise KeyNoteSyntaxError(
                    f"threshold count must be an integer, got {tok.value!r}",
                    tok.line, tok.column) from None
            return Threshold(k, tuple(parts))
        if tok.is_op("("):
            inner = self._or_expr()
            self._expect_op(")")
            return inner
        raise KeyNoteSyntaxError(f"unexpected token {tok.value!r} in licensees",
                                 tok.line, tok.column)


def parse_licensees(text: str,
                    constants: dict[str, str] | None = None) -> LicenseeExpr:
    """Parse a Licensees field body.

    :param constants: Local-Constants substitution table (name -> key text).
    :raises KeyNoteSyntaxError: on malformed input.
    """
    return _LicenseeParser(tokenize(text), constants).parse()


def licensees_to_text(expr: LicenseeExpr) -> str:
    """Serialise a licensee expression back to field text."""
    if isinstance(expr, Principal):
        return f'"{expr.key}"'
    if isinstance(expr, AllOf):
        return "(" + " && ".join(licensees_to_text(p) for p in expr.parts) + ")"
    if isinstance(expr, AnyOf):
        return "(" + " || ".join(licensees_to_text(p) for p in expr.parts) + ")"
    if isinstance(expr, Threshold):
        inner = ", ".join(licensees_to_text(p) for p in expr.parts)
        return f"{expr.k}-of({inner})"
    raise TypeError(f"not a licensee expression: {expr!r}")

"""Session-style KeyNote API.

Mirrors the C toolkit's ``kn_init`` / ``kn_add_assertion`` / ``kn_do_query``
interface the paper's applications call: a session accumulates policy
assertions and credentials, then answers queries.  Decisions are optionally
recorded to an :class:`~repro.util.events.AuditLog` — the "TM queries" arrow
of Figure 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.crypto.keystore import Keystore
from repro.errors import CredentialError
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.credential import Credential
from repro.keynote.parser import parse_credentials
from repro.keynote.values import DEFAULT_VALUE_SET, ComplianceValueSet
from repro.util.clock import SimulatedClock
from repro.util.events import AuditLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.store.durable import DurableStore


@dataclass(frozen=True)
class QueryResult:
    """The outcome of one trust-management query."""

    compliance_value: str
    authorized: bool
    attributes: Mapping[str, str]
    authorizers: tuple[str, ...]

    def __bool__(self) -> bool:
        return self.authorized


class KeyNoteSession:
    """A long-lived KeyNote evaluation context.

    >>> from repro.crypto import Keystore
    >>> ks = Keystore(); _ = ks.create("Kbob")
    >>> session = KeyNoteSession(keystore=ks)
    >>> _ = session.add_policy('Authorizer: POLICY\\nLicensees: "Kbob"\\n'
    ...                        'Conditions: app_domain=="db";')
    >>> bool(session.query({"app_domain": "db"}, authorizers=["Kbob"]))
    True
    """

    def __init__(self, keystore: Keystore | None = None,
                 values: ComplianceValueSet = DEFAULT_VALUE_SET,
                 audit: AuditLog | None = None,
                 clock: SimulatedClock | None = None,
                 verify_signatures: bool = True,
                 obs: "Observability | None" = None,
                 clock_skew: float = 0.0,
                 expiry_grace: float | None = None,
                 store: "DurableStore | None" = None) -> None:
        if clock_skew < 0:
            raise CredentialError(
                f"clock_skew cannot be negative, got {clock_skew}")
        if expiry_grace is not None and expiry_grace < 0:
            raise CredentialError(
                f"expiry_grace cannot be negative, got {expiry_grace}")
        self.keystore = keystore
        self.values = values
        self.audit = audit
        self.clock = clock or (obs.clock if obs is not None
                               else SimulatedClock())
        self.verify_signatures = verify_signatures
        self.obs = obs
        #: assumed bound on how far any client clock drifts from ours
        self.clock_skew = clock_skew
        #: extra simulated seconds a credential stays usable past
        #: ``expires_at`` (default 2 × ``clock_skew``: the worst-case
        #: round-trip drift between a fast issuer and a slow verifier)
        self.expiry_grace = (expiry_grace if expiry_grace is not None
                             else 2.0 * clock_skew)
        #: optional durable store — assertion-set mutations (add, revoke,
        #: expiry sweeps) are written ahead to it before they touch the
        #: session, so a crashed node recovers exactly its acknowledged
        #: trust state (:mod:`repro.store.durable` replays the records)
        self.store = store
        self._policies: list[Credential] = []
        self._credentials: list[Credential] = []
        self._checker: ComplianceChecker | None = None
        #: credential -> structured expiry instant (simulated seconds)
        self._expires_at: dict[Credential, float] = {}

    def _journal(self, kind: str, **payload) -> None:
        if self.store is not None:
            self.store.append(kind, **payload)

    # -- assertion management ------------------------------------------------

    def add_policy(self, source: str | Credential) -> Credential:
        """Add a local policy assertion.

        :raises CredentialError: if the assertion is not a POLICY assertion.
        """
        credential = self._coerce(source)
        if not credential.is_policy:
            raise CredentialError(
                "add_policy requires an 'Authorizer: POLICY' assertion")
        self._journal("keynote.policy", text=credential.to_text())
        self._policies.append(credential)
        self._absorb(credential)
        return credential

    def add_credential(self, source: str | Credential,
                       expires_at: float | None = None) -> Credential:
        """Add a signed credential supplied by a requester or a PKI.

        :param expires_at: optional structured expiry instant (simulated
            seconds).  Unlike a ``_cur_time < T`` condition — which flips a
            credential's verdict the instant any query's clock crosses T —
            a structured expiry is only enforced by :meth:`sweep_expired`,
            and only once the instant is at least :attr:`expiry_grace`
            seconds in the past.  Between ``expires_at`` and the sweep the
            credential keeps answering exactly as before, so two clients
            whose clocks disagree by up to the configured skew cannot
            observe a PASS/FAIL flap for the same request.
        :raises CredentialError: if a POLICY assertion is smuggled in, or
            ``expires_at`` is not a finite number.
        """
        credential = self._coerce(source)
        if credential.is_policy:
            raise CredentialError(
                "POLICY assertions must be added with add_policy")
        if expires_at is not None:
            if not (isinstance(expires_at, (int, float))
                    and math.isfinite(expires_at)):
                raise CredentialError(
                    f"expires_at must be a finite number, got {expires_at!r}")
        self._journal("keynote.credential", text=credential.to_text(),
                      expires_at=(float(expires_at)
                                  if expires_at is not None else None))
        if expires_at is not None:
            self._expires_at[credential] = float(expires_at)
        self._credentials.append(credential)
        self._absorb(credential)
        return credential

    def revoke_credential(self, credential: Credential) -> bool:
        """Remove a previously added credential.

        Bumps the live checker's generation, flushing its decision cache —
        the next query cannot be served a stale ALLOW that relied on the
        revoked credential.
        """
        if credential not in self._credentials:
            return False
        self._journal("keynote.revoke", text=credential.to_text())
        self._credentials.remove(credential)
        self._expires_at.pop(credential, None)
        if self._checker is not None:
            self._checker.revoke_assertion(credential)
        return True

    def sweep_expired(self) -> list[Credential]:
        """Revoke every credential whose expiry is safely in the past.

        A credential with ``expires_at = T`` is removed once
        ``now >= T + expiry_grace``.  Enforcing expiry only at sweeps (each
        revocation bumps the checker generation, flushing decision caches)
        keeps the session deterministic under clock skew: a verdict changes
        at a sweep boundary, never because one query's clock happened to
        read a few seconds ahead of another's.  Returns the credentials
        revoked, and audits each as ``keynote.expire``.
        """
        now = self.clock.now()
        expired = [credential for credential, instant
                   in self._expires_at.items()
                   if now >= instant + self.expiry_grace]
        for credential in expired:
            instant = self._expires_at[credential]
            self.revoke_credential(credential)
            if self.obs is not None:
                self.obs.metrics.counter("health.credential.expired").inc()
            if self.audit is not None:
                self.audit.record(
                    now, "keynote.expire",
                    subject=credential.authorizer or "?",
                    outcome="revoked", expires_at=instant,
                    grace=self.expiry_grace)
        return expired

    def expiring(self) -> dict[Credential, float]:
        """The structured-expiry registry (credential -> instant)."""
        return dict(self._expires_at)

    def _absorb(self, credential: Credential) -> None:
        """Feed a new assertion to the live checker incrementally (its
        generation bump flushes cached decisions) instead of discarding it
        for a full rebuild."""
        if self._checker is not None:
            self._checker.add_assertion(credential)

    def add_credentials(self, text: str) -> list[Credential]:
        """Parse and add several credentials from one blob."""
        added = [self.add_credential(c) for c in parse_credentials(text)]
        return added

    @staticmethod
    def _coerce(source: str | Credential) -> Credential:
        if isinstance(source, Credential):
            return source
        return Credential.from_text(source)

    @property
    def policies(self) -> list[Credential]:
        """The policy assertions added so far."""
        return list(self._policies)

    @property
    def credentials(self) -> list[Credential]:
        """The signed credentials added so far."""
        return list(self._credentials)

    def clear_credentials(self) -> None:
        """Drop signed credentials (policies stay)."""
        self._credentials.clear()
        self._expires_at.clear()
        self._checker = None

    def state_fingerprint(self) -> tuple[int, int, int]:
        """A value that changes whenever the assertion set may have changed.

        Callers caching decisions derived from this session (e.g. the
        authorisation stack's mediation cache) compare fingerprints instead
        of subscribing to invalidation events.
        """
        return (len(self._policies), len(self._credentials),
                self._checker.generation if self._checker is not None else -1)

    def decision_fingerprint(self, attributes: Mapping[str, str],
                             authorizers: Iterable[str],
                             ) -> "tuple[object, str | None]":
        """The decision key a :meth:`query` with these arguments would use
        and the checker's currently cached value for it (None when absent).

        ``_cur_time`` is injected exactly as :meth:`query` does, so the
        key matches what the query actually computed (the checker's
        attribute projection drops ``_cur_time`` unless some assertion
        references it).  A session whose checker is not built — cold after
        recovery, or after :meth:`clear_credentials` — reports a sentinel
        key and no value, so no externally cached decision can validate
        against it.  The authorisation stack scopes its per-entry cache
        fingerprints to this instead of :meth:`state_fingerprint`, letting
        warm mediation decisions survive unrelated assertion churn.
        """
        if self._checker is None:
            return ("cold",), None
        if "_cur_time" not in attributes:
            attributes = {**attributes, "_cur_time": repr(self.clock.now())}
        return self._checker.cached_decision(attributes, tuple(authorizers),
                                             self.values)

    def checker_cache_info(self) -> "dict[str, int] | None":
        """Decision-cache statistics of the live checker, or None while the
        checker is cold (never forces a build — status probes must not
        side-effect the session)."""
        if self._checker is None:
            return None
        return self._checker.cache_info()

    # -- queries -----------------------------------------------------------------

    @property
    def checker(self) -> ComplianceChecker:
        """The live compliance checker (built lazily on first access).

        The instance persists across queries so its decision cache and
        precompiled assertions are reused; :meth:`add_policy` /
        :meth:`add_credential` / :meth:`revoke_credential` feed it
        incrementally.
        """
        return self._checker_instance()

    def _checker_instance(self) -> ComplianceChecker:
        if self._checker is None:
            self._checker = ComplianceChecker(
                assertions=self._policies + self._credentials,
                keystore=self.keystore,
                verify_signatures=self.verify_signatures,
                metrics=self.obs.metrics if self.obs is not None else None)
        return self._checker

    def query(self, attributes: Mapping[str, str],
              authorizers: Iterable[str],
              extra_credentials: Iterable[Credential] = (),
              threshold: str | None = None) -> QueryResult:
        """Evaluate a request.

        :param attributes: action attribute set.
        :param authorizers: key(s) making the request.
        :param extra_credentials: per-request credentials presented alongside
            the request (not retained in the session).
        :param threshold: minimum compliance value counted as authorised
            (defaults to the value set's maximum).
        """
        extras = list(extra_credentials)
        if extras:
            checker = ComplianceChecker(
                assertions=self._policies + self._credentials + extras,
                keystore=self.keystore,
                verify_signatures=self.verify_signatures,
                metrics=self.obs.metrics if self.obs is not None else None)
        else:
            checker = self._checker_instance()
        authorizer_tuple = tuple(authorizers)
        # The current simulated time is always available to conditions as
        # `_cur_time`, so credentials can carry expiry tests like
        # `_cur_time < 1000` without any revocation machinery (the KeyNote
        # idiom for time-limited delegation).
        if "_cur_time" not in attributes:
            attributes = {**attributes, "_cur_time": repr(self.clock.now())}
        if self.obs is not None:
            with self.obs.tracer.span("keynote.query",
                                      authorizers=",".join(authorizer_tuple)
                                      ) as span:
                value = checker.query(attributes, authorizer_tuple,
                                      self.values)
                span.set(compliance_value=value)
        else:
            value = checker.query(attributes, authorizer_tuple, self.values)
        target = threshold if threshold is not None else self.values.maximum
        result = QueryResult(
            compliance_value=value,
            authorized=self.values.at_least(value, target),
            attributes=dict(attributes),
            authorizers=authorizer_tuple,
        )
        if self.audit is not None:
            self.audit.record(
                self.clock.now(), "keynote.query",
                subject=",".join(authorizer_tuple),
                outcome="allow" if result.authorized else "deny",
                compliance_value=value,
                attributes=dict(attributes))
        return result

    def query_many(self, requests: Iterable[tuple[Mapping[str, str],
                                                  Iterable[str]]],
                   ) -> list[str]:
        """Batch evaluation through
        :meth:`ComplianceChecker.query_many
        <repro.keynote.compliance.ComplianceChecker.query_many>`: one
        compliance value per ``(attributes, authorizers)`` pair, with
        condition programs shared across the batch.  ``_cur_time`` is
        injected exactly as :meth:`query` does; audit records are not
        emitted for batch queries.
        """
        now = repr(self.clock.now())
        prepared = [
            (attrs if "_cur_time" in attrs else {**attrs, "_cur_time": now},
             tuple(auths))
            for attrs, auths in requests]
        return self._checker_instance().query_many(prepared, self.values)

"""KeyNote credentials: assertions binding authorisation to keys.

Two kinds (RFC 2704):

- **Policy assertions** — ``Authorizer: POLICY``; unsigned; they are the
  local root of trust (Figure 2 / Figure 5 of the paper).
- **Signed credentials** — the authorizer is a public key and the credential
  carries a signature over its canonical bytes (Figures 4, 6, 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.keys import PrivateKey, PublicKey, Signature
from repro.crypto.keystore import SIGNATURE_CACHE, Keystore
from repro.errors import CredentialError, KeyNoteSyntaxError
from repro.keynote.ast import ConditionsProgram
from repro.keynote.licensees import LicenseeExpr, licensees_to_text, parse_licensees
from repro.keynote.parser import (
    parse_conditions,
    parse_local_constants,
    split_fields,
)

POLICY_PRINCIPAL = "POLICY"
KEYNOTE_VERSION = "2"


@dataclass(frozen=True)
class Credential:
    """A parsed KeyNote assertion.

    ``authorizer`` and the licensee principals are either symbolic names
    (``"Kbob"``) or encoded public keys; symbolic names are resolved through a
    :class:`~repro.crypto.keystore.Keystore` at signing/verification time.
    """

    authorizer: str
    licensees: LicenseeExpr
    conditions: ConditionsProgram
    conditions_text: str
    licensees_text: str
    comment: str = ""
    local_constants: dict[str, str] = field(default_factory=dict, compare=False)
    signature: str = ""

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, authorizer: str, licensees: str, conditions: str,
              comment: str = "",
              local_constants: dict[str, str] | None = None) -> "Credential":
        """Build an (unsigned) credential from field bodies.

        :raises KeyNoteSyntaxError: if licensees or conditions are malformed.
        """
        constants = dict(local_constants or {})
        return cls(
            authorizer=authorizer,
            licensees=parse_licensees(licensees, constants),
            conditions=parse_conditions(conditions, constants),
            conditions_text=" ".join(conditions.split()),
            licensees_text=" ".join(licensees.split()),
            comment=comment,
            local_constants=constants,
        )

    @classmethod
    def from_text(cls, text: str) -> "Credential":
        """Parse the textual credential form.

        :raises KeyNoteSyntaxError: on malformed input.
        """
        fields = split_fields(text)
        if "authorizer" not in fields:
            raise KeyNoteSyntaxError("credential has no Authorizer field")
        if "licensees" not in fields:
            raise KeyNoteSyntaxError("credential has no Licensees field")
        version = fields.get("keynote-version", KEYNOTE_VERSION).strip().strip('"')
        if version != KEYNOTE_VERSION:
            raise KeyNoteSyntaxError(f"unsupported KeyNote version {version!r}")
        constants = parse_local_constants(fields["local-constants"]) \
            if "local-constants" in fields else {}
        authorizer = fields["authorizer"].strip()
        if authorizer.startswith('"') and authorizer.endswith('"'):
            authorizer = authorizer[1:-1]
        if authorizer in constants:
            authorizer = constants[authorizer]
        conditions_text = fields.get("conditions", "true").rstrip()
        if conditions_text.endswith(";"):
            conditions_text = conditions_text[:-1]
        if not conditions_text.strip():
            conditions_text = "true"
        credential = cls.build(
            authorizer=authorizer,
            licensees=fields["licensees"],
            conditions=conditions_text,
            comment=fields.get("comment", ""),
            local_constants=constants,
        )
        signature = fields.get("signature", "").strip().strip('"')
        if signature and signature != "...":
            credential = replace(credential, signature=signature)
        return credential

    # -- properties ----------------------------------------------------------

    @property
    def is_policy(self) -> bool:
        """True for local policy assertions (``Authorizer: POLICY``)."""
        return self.authorizer.upper() == POLICY_PRINCIPAL

    def principals(self) -> frozenset[str]:
        """All principals named in the Licensees field."""
        return self.licensees.principals()

    # -- serialisation ---------------------------------------------------------

    def to_text(self, include_signature: bool = True) -> str:
        """Serialise to the RFC-2704 textual form."""
        lines = [f"KeyNote-Version: {KEYNOTE_VERSION}"]
        if self.comment:
            lines.append(f"Comment: {self.comment}")
        if self.local_constants:
            bindings = " ".join(f'{k} = "{v}"'
                                for k, v in sorted(self.local_constants.items()))
            lines.append(f"Local-Constants: {bindings}")
        authorizer = (POLICY_PRINCIPAL if self.is_policy
                      else f'"{self.authorizer}"')
        lines.append(f"Authorizer: {authorizer}")
        lines.append(f"Licensees: {licensees_to_text(self.licensees)}")
        lines.append(f"Conditions: {self.conditions_text};")
        if include_signature and self.signature:
            lines.append(f'Signature: "{self.signature}"')
        return "\n".join(lines) + "\n"

    def canonical_bytes(self) -> bytes:
        """The bytes covered by the signature: every field except Signature,
        with symbolic principals left as-is (the signature binds the text the
        authorizer actually uttered).

        The rendering is memoised: the instance is frozen, so the canonical
        form cannot change, and the hot authorisation path (signature cache
        lookups) asks for it repeatedly.
        """
        cached = self.__dict__.get("_canonical_bytes")
        if cached is None:
            cached = self.to_text(include_signature=False).encode("utf-8")
            object.__setattr__(self, "_canonical_bytes", cached)
        return cached

    # -- signing ----------------------------------------------------------------

    def sign(self, private_key: PrivateKey) -> "Credential":
        """Return a signed copy of this credential.

        :raises CredentialError: when signing a POLICY assertion (policy
            assertions are locally trusted and never signed, RFC 2704 s4.6.6).
        """
        if self.is_policy:
            raise CredentialError("policy assertions are not signed")
        signature = private_key.sign(self.canonical_bytes())
        return replace(self, signature=signature.encode())

    def signed_by(self, keystore: Keystore) -> "Credential":
        """Sign using the keystore entry for this credential's authorizer.

        :raises UnknownKeyError: if the authorizer is not in the keystore.
        """
        return self.sign(keystore.pair(keystore_name(self.authorizer, keystore)).private)

    def verify(self, keystore: Keystore | None = None,
               cache=None) -> bool:
        """Verify the signature.

        Policy assertions are vacuously valid.  For signed credentials the
        authorizer must be an encoded key, or resolvable through the
        keystore.  The Schnorr verification itself goes through the
        process-wide :data:`~repro.crypto.keystore.SIGNATURE_CACHE` (or the
        ``cache`` argument), so a credential's bytes are verified once, not
        once per compliance-checker build.
        """
        if self.is_policy:
            return True
        if not self.signature:
            return False
        try:
            public = _resolve_public(self.authorizer, keystore)
            signature = Signature.decode(self.signature)
        except Exception:
            return False
        verifier = cache if cache is not None else SIGNATURE_CACHE
        return verifier.verify(public, self.canonical_bytes(), signature)

    def verify_or_raise(self, keystore: Keystore | None = None) -> None:
        """Like :meth:`verify` but raising.

        :raises CredentialError: if the credential is unsigned or invalid.
        """
        if self.is_policy:
            return
        if not self.signature:
            raise CredentialError(
                f"credential by {self.authorizer!r} is unsigned")
        if not self.verify(keystore):
            raise CredentialError(
                f"signature on credential by {self.authorizer!r} is invalid")

    def __str__(self) -> str:
        return self.to_text()


def keystore_name(principal: str, keystore: Keystore) -> str:
    """Map a principal (symbolic or encoded) to its keystore name."""
    if PublicKey.looks_like_key(principal):
        return keystore.name_of(principal)
    return principal


def _resolve_public(principal: str, keystore: Keystore | None) -> PublicKey:
    """Resolve a principal string to a public key."""
    if PublicKey.looks_like_key(principal):
        return PublicKey.decode(principal)
    if keystore is None:
        raise CredentialError(
            f"cannot resolve symbolic principal {principal!r} without a keystore")
    return keystore.public(principal)

"""Identity-based authorisation — the baseline Section 3 argues against.

"Conventional secure applications verify that certificates have not been
revoked, and are signed by a recognised and trustworthy source.  The names
are then extracted from the certificates and a database is queried to
determine if the requested action is authorised.  This is cumbersome and
aspects, such as the database lookup, are outside of the scope of the
certificate system.  Furthermore, there is the problem of determining the
correct identity of an individual: there may be more than one John Smith in a
particular organisation."

This package implements that conventional pipeline so the reproduction can
*compare* it with trust management: X.509-style identity certificates issued
by CAs, a revocation list, name extraction, and a server-side authorisation
database keyed by names.  The ambiguous-name failure mode (two John Smiths)
is reproducible in tests, and the benchmark suite compares the decision
pipelines.
"""

from repro.identity.authz import AuthorisationDatabase, IdentityAuthoriser
from repro.identity.certs import CertificateAuthority, IdentityCertificate

__all__ = [
    "AuthorisationDatabase",
    "CertificateAuthority",
    "IdentityAuthoriser",
    "IdentityCertificate",
]

"""X.509-style identity certificates: binding *names* to public keys.

Deliberately minimal — just enough of the X.509 model (issuer CA, subject
distinguished name, validity, revocation by serial) to run the conventional
authorisation pipeline the paper contrasts with trust management.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto.keys import PrivateKey, PublicKey, Signature
from repro.errors import CredentialError


@dataclass(frozen=True)
class IdentityCertificate:
    """An identity certificate: CA ``issuer`` binds ``subject_name`` to
    ``subject_key``."""

    serial: int
    issuer: str
    subject_name: str
    subject_key: str  # encoded public key
    not_before: float = 0.0
    not_after: float = float("inf")
    signature: str = ""

    def canonical_bytes(self) -> bytes:
        return (f"cert|{self.serial}|{self.issuer}|{self.subject_name}|"
                f"{self.subject_key}|{self.not_before}|{self.not_after}"
                ).encode("utf-8")

    def sign(self, ca_private: PrivateKey) -> "IdentityCertificate":
        """Return a CA-signed copy."""
        return replace(self, signature=ca_private.sign(
            self.canonical_bytes()).encode())

    def verify(self, ca_public: PublicKey) -> bool:
        """Verify the CA's signature."""
        if not self.signature:
            return False
        try:
            return ca_public.verify(self.canonical_bytes(),
                                    Signature.decode(self.signature))
        except Exception:
            return False

    def valid_at(self, timestamp: float) -> bool:
        """True inside the validity window."""
        return self.not_before <= timestamp <= self.not_after


class CertificateAuthority:
    """A CA issuing and revoking identity certificates."""

    def __init__(self, name: str, key_seed: str | None = None) -> None:
        from repro.crypto.keys import KeyPair

        self.name = name
        self._pair = KeyPair.generate(key_seed or f"ca:{name}")
        self._serial = 0
        self._revoked: set[int] = set()
        self.issued: list[IdentityCertificate] = []

    @property
    def public_key(self) -> PublicKey:
        """The CA's verification key."""
        return self._pair.public

    def issue(self, subject_name: str, subject_key: str,
              not_before: float = 0.0,
              not_after: float = float("inf")) -> IdentityCertificate:
        """Issue a certificate binding ``subject_name`` to ``subject_key``.

        Note the X.509 hazard the paper highlights: nothing stops two
        different people from holding certificates with the *same* subject
        name.
        """
        self._serial += 1
        cert = IdentityCertificate(
            serial=self._serial, issuer=self.name,
            subject_name=subject_name, subject_key=subject_key,
            not_before=not_before, not_after=not_after,
        ).sign(self._pair.private)
        self.issued.append(cert)
        return cert

    def revoke(self, serial: int) -> None:
        """Add a serial to the revocation list."""
        self._revoked.add(serial)

    def is_revoked(self, serial: int) -> bool:
        """CRL check."""
        return serial in self._revoked

    def validate(self, cert: IdentityCertificate, at_time: float = 0.0) -> None:
        """Full conventional validation: signature, validity, CRL.

        :raises CredentialError: on any failure.
        """
        if cert.issuer != self.name:
            raise CredentialError(f"certificate issued by {cert.issuer!r}, "
                                  f"not {self.name!r}")
        if not cert.verify(self.public_key):
            raise CredentialError("bad CA signature")
        if not cert.valid_at(at_time):
            raise CredentialError("certificate outside validity window")
        if self.is_revoked(cert.serial):
            raise CredentialError("certificate revoked")

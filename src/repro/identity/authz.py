"""The conventional authorisation pipeline over identity certificates.

certificate -> validate -> extract *name* -> look the name up in a
server-side authorisation database.  The database is exactly the coupling
trust management removes: it lives with the application, must be kept in
sync, and is keyed by human names — hence the two-John-Smiths ambiguity the
paper cites from [10].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CredentialError
from repro.identity.certs import CertificateAuthority, IdentityCertificate


class AuthorisationDatabase:
    """name -> {(object_type, operation)} — the server-side lookup table."""

    def __init__(self) -> None:
        self._rights: dict[str, set[tuple[str, str]]] = {}

    def grant(self, name: str, object_type: str, operation: str) -> None:
        """Record that ``name`` may perform ``operation``."""
        self._rights.setdefault(name, set()).add((object_type, operation))

    def revoke(self, name: str, object_type: str, operation: str) -> bool:
        """Remove a right; True if it was present."""
        rights = self._rights.get(name, set())
        try:
            rights.remove((object_type, operation))
            return True
        except KeyError:
            return False

    def lookup(self, name: str, object_type: str, operation: str) -> bool:
        """The database query the paper calls 'outside the scope of the
        certificate system'."""
        return (object_type, operation) in self._rights.get(name, set())

    def names(self) -> set[str]:
        """All names with at least one right."""
        return set(self._rights)


@dataclass(frozen=True)
class IdentityDecision:
    """Outcome plus the hazard flags the paper warns about."""

    allowed: bool
    subject_name: str
    ambiguous: bool  # same name bound to a different key by the same CA

    def __bool__(self) -> bool:
        return self.allowed


class IdentityAuthoriser:
    """Runs the conventional pipeline end to end."""

    def __init__(self, ca: CertificateAuthority,
                 database: AuthorisationDatabase) -> None:
        self.ca = ca
        self.database = database

    def authorise(self, cert: IdentityCertificate, object_type: str,
                  operation: str, at_time: float = 0.0) -> IdentityDecision:
        """Validate the certificate, extract the name, query the database.

        :raises CredentialError: if certificate validation fails (expired,
            revoked, bad signature) — the pipeline can't even reach the
            database then.
        """
        self.ca.validate(cert, at_time)
        name = cert.subject_name
        # The John-Smith hazard: does this CA bind the same name to another
        # key?  The decision below cannot tell the two holders apart.
        ambiguous = any(
            other.subject_name == name and other.subject_key != cert.subject_key
            and not self.ca.is_revoked(other.serial)
            for other in self.ca.issued)
        allowed = self.database.lookup(name, object_type, operation)
        return IdentityDecision(allowed=allowed, subject_name=name,
                                ambiguous=ambiguous)

    def authorise_quietly(self, cert: IdentityCertificate, object_type: str,
                          operation: str,
                          at_time: float = 0.0) -> IdentityDecision:
        """Like :meth:`authorise`, mapping validation failure to a deny."""
        try:
            return self.authorise(cert, object_type, operation, at_time)
        except CredentialError:
            return IdentityDecision(allowed=False,
                                    subject_name=cert.subject_name,
                                    ambiguous=False)

"""Reproduction of *A Framework for Heterogeneous Middleware Security*
(Foley, Quillinan, O'Connor, Mulcahy, Morrison — IPPS 2004).

Secure WebCom coordinates middleware components across CORBA, EJB and
COM+/.NET, using the KeyNote trust-management system (with SPKI/SDSI as an
alternative) to give heterogeneous middleware a single, interoperable view of
RBAC authorisation.  This package rebuilds the whole system in Python:

- :mod:`repro.crypto` — Schnorr signatures and the PKI,
- :mod:`repro.rbac` — the Section-2 extended RBAC model,
- :mod:`repro.keynote` — the RFC-2704 trust-management engine,
- :mod:`repro.spki` — SPKI/SDSI certificates and chain reduction,
- :mod:`repro.os_sec` — simulated Unix and Windows security (L0),
- :mod:`repro.middleware` — CORBA / EJB / COM+ simulators (L1),
- :mod:`repro.translate` — the bidirectional policy translations,
- :mod:`repro.webcom` — condensed graphs, the metacomputer, Secure WebCom,
  KeyCOM, stacked authorisation and the IDE analysis,
- :mod:`repro.core` — the framework facade and the paper's scenarios.

Quickstart::

    from repro import HeterogeneousSecurityFramework, salaries_policy

    framework = HeterogeneousSecurityFramework()
    framework.configure(salaries_policy())
    assert framework.check_access_by_key(
        "Kbob", "Finance", "Manager", "SalariesDB", "read")
"""

from repro.core.framework import HeterogeneousSecurityFramework
from repro.core.scenarios import build_figure9_network, salaries_policy
from repro.crypto import KeyPair, Keystore
from repro.keynote import Credential, KeyNoteSession
from repro.rbac import RBACPolicy
from repro.webcom import (
    AuthorisationStack,
    CondensedGraph,
    GraphEngine,
    SecureWebComEnvironment,
    SimulatedNetwork,
    WebComClient,
    WebComIDE,
    WebComMaster,
)

__version__ = "1.0.0"

__all__ = [
    "AuthorisationStack",
    "CondensedGraph",
    "Credential",
    "GraphEngine",
    "HeterogeneousSecurityFramework",
    "KeyNoteSession",
    "KeyPair",
    "Keystore",
    "RBACPolicy",
    "SecureWebComEnvironment",
    "SimulatedNetwork",
    "WebComClient",
    "WebComIDE",
    "WebComMaster",
    "build_figure9_network",
    "salaries_policy",
    "__version__",
]
